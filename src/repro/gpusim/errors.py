"""Exception types raised by the GPU simulator."""


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class LaunchConfigError(GpuSimError):
    """A kernel launch violates a hard device limit.

    Raised when a launch requests more threads per block, shared memory per
    block, or registers per thread than the device can provide.  Real CUDA
    would fail the launch with ``cudaErrorInvalidConfiguration``; we raise
    eagerly so tests catch impossible configurations.
    """


class ResourceExhaustedError(GpuSimError):
    """A launch is legal per-block but achieves zero occupancy.

    This mirrors a kernel whose combined resource demands prevent even one
    block from becoming resident on an SM.
    """


class TransientFault(GpuSimError):
    """A retryable failure of one kernel launch.

    Unlike :class:`LaunchConfigError` (a programming error that no retry
    can fix), a transient fault models the flaky failure modes an online
    serving fleet actually sees — a driver hiccup, a temporarily
    exhausted workspace pool — where re-issuing the same launch usually
    succeeds.  The serving runtime's retry policy catches exactly this
    type.
    """


class LaunchFailure(TransientFault):
    """A kernel launch that failed to start (``cudaErrorLaunchFailure``)."""


class TransientOom(TransientFault):
    """A launch that could not allocate its workspace this time around.

    Models ``cudaErrorMemoryAllocation`` under fragmentation or transient
    pressure from co-located work; the allocation is expected to succeed
    on retry once the pool drains.
    """
