"""Exception types raised by the GPU simulator."""


class GpuSimError(Exception):
    """Base class for all simulator errors."""


class LaunchConfigError(GpuSimError):
    """A kernel launch violates a hard device limit.

    Raised when a launch requests more threads per block, shared memory per
    block, or registers per thread than the device can provide.  Real CUDA
    would fail the launch with ``cudaErrorInvalidConfiguration``; we raise
    eagerly so tests catch impossible configurations.
    """


class ResourceExhaustedError(GpuSimError):
    """A launch is legal per-block but achieves zero occupancy.

    This mirrors a kernel whose combined resource demands prevent even one
    block from becoming resident on an SM.
    """
