"""What-if analysis: how robust are the conclusions to device parameters?

The simulator's constants (launch overhead, DRAM bandwidth, L2 bandwidth,
tensor-core peak) carry uncertainty.  :func:`sensitivity_sweep` perturbs
one device parameter across a range, re-evaluates a user-supplied metric
(typically "ByteTransformer's gain over framework X"), and reports how
the conclusion moves — the standard robustness check for model-based
performance studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.gpusim.device import A100_SPEC, DeviceSpec

#: device fields that are meaningful to perturb
SWEEPABLE_FIELDS = (
    "kernel_launch_overhead_us",
    "dram_bandwidth_gbs",
    "l2_bandwidth_gbs",
    "tensor_fp16_tflops",
    "fp32_tflops",
    "num_sms",
)


@dataclass(frozen=True)
class SensitivityPoint:
    scale: float
    value: float
    metric: float


@dataclass(frozen=True)
class SensitivityResult:
    field: str
    baseline_metric: float
    points: tuple[SensitivityPoint, ...]

    @property
    def metric_range(self) -> tuple[float, float]:
        metrics = [p.metric for p in self.points]
        return min(metrics), max(metrics)

    def conclusion_stable(self, predicate: Callable[[float], bool]) -> bool:
        """Does ``predicate(metric)`` hold at every swept point?"""
        return all(predicate(p.metric) for p in self.points)

    def max_relative_change(self) -> float:
        if self.baseline_metric == 0:
            raise ValueError("baseline metric is zero")
        lo, hi = self.metric_range
        return max(
            abs(lo - self.baseline_metric),
            abs(hi - self.baseline_metric),
        ) / abs(self.baseline_metric)


def value_sensitivity_sweep(
    name: str,
    base_value: float,
    metric_of_value: Callable[[float], float],
    *,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    integral: bool = False,
) -> SensitivityResult:
    """Scale one scalar input and re-evaluate ``metric_of_value``.

    The generic core behind :func:`sensitivity_sweep` (device constants)
    and the policy-knob sweeps in :mod:`repro.observe.knobs`: the swept
    quantity is just a number, and ``metric_of_value`` knows how to turn
    a perturbed value into a metric.  ``integral`` rounds each perturbed
    value to an integer (floored at 1) before evaluating, matching how
    integer device fields and knobs like a token budget behave.
    """
    if not scales:
        raise ValueError("need at least one scale point")
    baseline_metric = metric_of_value(base_value)
    points = []
    for scale in scales:
        if scale <= 0:
            raise ValueError(f"scales must be positive, got {scale}")
        value = base_value * scale
        if integral:
            value = max(1, int(round(value)))
        points.append(
            SensitivityPoint(
                scale=scale, value=float(value), metric=metric_of_value(value)
            )
        )
    return SensitivityResult(
        field=name,
        baseline_metric=baseline_metric,
        points=tuple(points),
    )


def sensitivity_sweep(
    field: str,
    metric: Callable[[DeviceSpec], float],
    *,
    base: DeviceSpec = A100_SPEC,
    scales: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
) -> SensitivityResult:
    """Scale one device field and re-evaluate ``metric`` at each point.

    ``metric`` receives the perturbed :class:`DeviceSpec` and returns a
    scalar (e.g. a speedup ratio computed by running two estimates on a
    context bound to that device).
    """
    if field not in SWEEPABLE_FIELDS:
        raise ValueError(
            f"{field!r} is not sweepable; choose from {SWEEPABLE_FIELDS}"
        )
    base_value = getattr(base, field)
    integral = isinstance(base_value, int)

    def metric_of_value(value: float) -> float:
        if integral:
            value = int(value)
        return metric(base.with_overrides(**{field: value}))

    return value_sensitivity_sweep(
        field,
        base_value,
        metric_of_value,
        scales=scales,
        integral=integral,
    )


def format_sweep(result: SensitivityResult) -> str:
    """Render a sensitivity sweep as a text table."""
    lines = [
        f"== sensitivity: {result.field} "
        f"(baseline metric {result.baseline_metric:.3f}) ==",
        f"{'scale':>8}{'value':>14}{'metric':>10}",
    ]
    for p in result.points:
        lines.append(f"{p.scale:>8.2f}{p.value:>14.1f}{p.metric:>10.3f}")
    lo, hi = result.metric_range
    lines.append(f"metric range: [{lo:.3f}, {hi:.3f}]")
    return "\n".join(lines)
