"""Chrome-trace export for execution contexts and telemetry spans.

Serialises timelines into the Trace Event Format understood by
``chrome://tracing`` and Perfetto.  Two shapes:

* :func:`to_chrome_trace` — one complete event per kernel launch of a
  single :class:`~repro.gpusim.stream.ExecutionContext`, with its
  category, grid and work counters as arguments; optionally a layer of
  telemetry spans stacked above the kernel row.
* :func:`telemetry_chrome_trace` — a whole serving replay: the
  request-root spans as async (``b``/``e``) events keyed by request id,
  the stage spans (dispatch/attempt/graph/packing) as nested complete
  events on the "stages" thread, and every attempt's kernel records,
  offset to the global simulated clock, on the "kernels" thread below —
  so for any request id the trace shows its admission, the megabatch it
  rode, the graph replay that priced it and any retries it survived,
  nested above the kernels that served it.

Events are emitted timestamp-sorted per thread (complete events
additionally longest-first at equal timestamps) so viewers reconstruct
the nesting exactly as the tracer recorded it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.gpusim.stream import ExecutionContext

#: thread ids of the two timeline rows (spans render above kernels)
SPAN_TID = 0
KERNEL_TID = 1


def _kernel_event(record, tid: int, offset_us: float = 0.0) -> dict:
    launch = record.launch
    return {
        "name": launch.name,
        "cat": launch.category,
        "ph": "X",  # complete event
        "pid": 0,
        "tid": tid,
        "ts": offset_us + record.start_us,
        "dur": record.time_us,
        "args": {
            "grid": launch.grid,
            "block_threads": launch.block_threads,
            "gflops": round(launch.flops / 1e9, 4),
            "dram_mb": round(launch.dram_bytes / 1e6, 4),
            "hot_mb": round(launch.hot_bytes / 1e6, 4),
            "compute_unit": launch.compute_unit.value,
        },
    }


def _span_args(span) -> dict:
    args = dict(span.attrs)
    if span.request_id is not None:
        args["request_id"] = span.request_id
    if span.batch_id is not None:
        args["batch_id"] = span.batch_id
    return args


def _span_events(spans: Iterable) -> list[dict]:
    """Trace events for tracer spans (duck-typed: see
    :class:`repro.telemetry.spans.Span`).  Request-category spans become
    async begin/end pairs (they overlap freely across requests); stage
    spans become complete events on the span thread; zero-duration spans
    become instants."""
    events: list[dict] = []
    for span in spans:
        if span.end_us is None:
            continue  # never closed: not representable as a complete event
        args = _span_args(span)
        if span.category == "request":
            ident = (
                str(span.request_id)
                if span.request_id is not None
                else str(span.span_id)
            )
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "b",
                    "id": ident,
                    "pid": 0,
                    "ts": span.start_us,
                    "args": args,
                }
            )
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "e",
                    "id": ident,
                    "pid": 0,
                    "ts": span.end_us,
                    "args": {},
                }
            )
        elif span.is_instant:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": SPAN_TID,
                    "ts": span.start_us,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": 0,
                    "tid": SPAN_TID,
                    "ts": span.start_us,
                    "dur": span.duration_us,
                    "args": args,
                }
            )
    return events


def _sorted_events(events: list[dict]) -> list[dict]:
    """Timestamp-sort (stable), longest-first at equal timestamps so an
    enclosing complete event precedes the children it contains."""
    return sorted(events, key=lambda e: (e["ts"], -e.get("dur", 0.0)))


def _thread_meta(tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": name},
    }


def to_chrome_trace(
    ctx: ExecutionContext,
    process_name: str = "gpusim",
    *,
    spans: Sequence = (),
) -> dict:
    """Build a Trace-Event-Format dict from a context's records.

    With ``spans`` (telemetry tracer spans on the same timeline), the
    kernel events move to their own thread row below the span row, so
    the request/stage layer stacks visually above the kernel timeline.
    """
    kernel_tid = KERNEL_TID if spans else 0
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": f"{process_name} ({ctx.device.name})"},
        },
    ]
    if spans:
        events.append(_thread_meta(SPAN_TID, "spans"))
    events.append(_thread_meta(kernel_tid, "stream 0"))
    timeline = [
        _kernel_event(record, kernel_tid) for record in ctx.records
    ]
    timeline.extend(_span_events(spans))
    events.extend(_sorted_events(timeline))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


#: Trace-Event reserved colour names per attribution bucket, so the
#: critical lane reads at a glance (penalty edges in reds)
_BUCKET_CNAME = {
    "queue": "grey",
    "pack": "thread_state_runnable",
    "gemm": "good",
    "attention": "vsync_highlight_color",
    "other": "generic_work",
    "collective": "yellow",
    "retry-penalty": "terrible",
    "ladder-penalty": "bad",
}


def _critical_path_events(path, tid: int) -> list[dict]:
    """One complete event per critical-path edge (duck-typed
    :class:`repro.observe.critical_path.RequestPath`)."""
    events = []
    for edge in path.edges:
        dominant = max(
            edge.buckets, key=edge.buckets.get, default="other"
        ) if edge.buckets else "other"
        event = {
            "name": edge.name,
            "cat": "critical-path",
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": edge.start_us,
            "dur": edge.duration_us,
            "args": {
                "request_id": path.request_id,
                "bucket": dominant,
                "slack_us": round(edge.slack_us, 3),
                **{
                    k: round(v, 3)
                    for k, v in edge.buckets.items()
                    if v
                },
            },
        }
        cname = _BUCKET_CNAME.get(dominant)
        if cname:
            event["cname"] = cname
        events.append(event)
    return events


def telemetry_chrome_trace(
    telemetry,
    process_name: str = "serving",
    device_name: str | None = None,
    *,
    critical_path=None,
) -> dict:
    """One Chrome/Perfetto trace for a whole observed serving replay.

    ``telemetry`` duck-types :class:`repro.telemetry.context.Telemetry`:
    ``tracer.spans`` supply the request/stage layer and
    ``kernel_segments`` supply per-attempt kernel records offset onto
    the global simulated clock.

    A sharded replay fans out: each device's kernels render on their own
    ``kernels d<N>`` lane (segments carry the executing replica in
    ``KernelSegment.device``) and collective launches — recognised by
    their ``"collective"`` category — land on one shared
    ``interconnect`` lane between the device timelines, so all-reduces
    show up as spans bridging the per-device streams.  A single-device
    replay without collectives emits exactly the legacy two-lane layout,
    byte for byte.

    ``critical_path`` (a
    :class:`~repro.observe.critical_path.RequestPath`, typically the
    report's :meth:`~repro.observe.critical_path.CriticalPathReport.
    critical_request`) adds one highlighted ``critical path`` lane below
    the kernel rows: one complete event per path edge, coloured by its
    dominant attribution bucket.  ``None`` (the default) emits the
    legacy layout byte for byte.
    """
    label = process_name if not device_name else f"{process_name} ({device_name})"
    segments = telemetry.kernel_segments
    devices = sorted({getattr(seg, "device", 0) for seg in segments})
    if not devices:
        devices = [0]
    has_collective = any(
        record.launch.category == "collective"
        for seg in segments
        for record in seg.records
    )
    sharded = len(devices) > 1 or has_collective
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": label},
        },
        _thread_meta(SPAN_TID, "stages"),
    ]
    if sharded:
        kernel_tid = {
            dev: KERNEL_TID + i for i, dev in enumerate(devices)
        }
        for dev in devices:
            events.append(
                _thread_meta(kernel_tid[dev], f"kernels d{dev}")
            )
        interconnect_tid = KERNEL_TID + len(devices)
        events.append(_thread_meta(interconnect_tid, "interconnect"))
    else:
        kernel_tid = {devices[0]: KERNEL_TID}
        interconnect_tid = KERNEL_TID
        events.append(_thread_meta(KERNEL_TID, "kernels"))
    timeline = _span_events(telemetry.tracer.spans)
    if critical_path is not None:
        crit_tid = (
            interconnect_tid + 1 if sharded else KERNEL_TID + 1
        )
        events.append(_thread_meta(crit_tid, "critical path"))
        timeline.extend(
            _critical_path_events(critical_path, crit_tid)
        )
    for segment in telemetry.kernel_segments:
        tid = kernel_tid[getattr(segment, "device", 0)]
        timeline.extend(
            _kernel_event(
                record,
                interconnect_tid
                if record.launch.category == "collective"
                else tid,
                segment.offset_us,
            )
            for record in segment.records
        )
    events.extend(_sorted_events(timeline))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    ctx: ExecutionContext,
    path: str | Path,
    process_name: str = "gpusim",
    *,
    spans: Sequence = (),
) -> Path:
    """Write the context's timeline as a chrome://tracing JSON file."""
    out = Path(path)
    out.write_text(
        json.dumps(to_chrome_trace(ctx, process_name, spans=spans), indent=1)
    )
    return out


def write_telemetry_trace(
    telemetry,
    path: str | Path,
    process_name: str = "serving",
    device_name: str | None = None,
    *,
    critical_path=None,
) -> Path:
    """Write a whole replay's merged span + kernel trace."""
    out = Path(path)
    out.write_text(
        json.dumps(
            telemetry_chrome_trace(
                telemetry,
                process_name,
                device_name,
                critical_path=critical_path,
            ),
            indent=1,
        )
    )
    return out
