"""Chrome-trace export for execution contexts.

Serialises a context's timeline into the Trace Event Format understood by
``chrome://tracing`` and Perfetto, one complete event per kernel launch
with its category, grid and work counters as arguments — handy for
eyeballing where a pipeline's time goes and spotting launch-overhead
dominated regions.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpusim.stream import ExecutionContext


def to_chrome_trace(ctx: ExecutionContext, process_name: str = "gpusim") -> dict:
    """Build a Trace-Event-Format dict from a context's records."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": f"{process_name} ({ctx.device.name})"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "stream 0"},
        },
    ]
    for record in ctx.records:
        launch = record.launch
        events.append(
            {
                "name": launch.name,
                "cat": launch.category,
                "ph": "X",  # complete event
                "pid": 0,
                "tid": 0,
                "ts": record.start_us,
                "dur": record.time_us,
                "args": {
                    "grid": launch.grid,
                    "block_threads": launch.block_threads,
                    "gflops": round(launch.flops / 1e9, 4),
                    "dram_mb": round(launch.dram_bytes / 1e6, 4),
                    "hot_mb": round(launch.hot_bytes / 1e6, 4),
                    "compute_unit": launch.compute_unit.value,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    ctx: ExecutionContext, path: str | Path, process_name: str = "gpusim"
) -> Path:
    """Write the context's timeline as a chrome://tracing JSON file."""
    out = Path(path)
    out.write_text(json.dumps(to_chrome_trace(ctx, process_name), indent=1))
    return out
