"""DRAM traffic accounting helpers.

The simulated device stores activations in FP16 (as ByteTransformer does);
NumPy computes in FP32 for numerical headroom.  All traffic estimates in
:mod:`repro.kernels` therefore price tensors at
:data:`BYTES_PER_ELEMENT` bytes per element unless stated otherwise.
"""

from __future__ import annotations

import math
from typing import Iterable

#: storage width of activations/weights on the simulated device (FP16)
BYTES_PER_ELEMENT = 2
#: storage width of FP32 tensors (e.g. softmax statistics vectors)
BYTES_PER_FP32 = 4


def tensor_bytes(*shape: int, element_size: int = BYTES_PER_ELEMENT) -> float:
    """Bytes occupied by a dense tensor of the given shape."""
    if any(dim < 0 for dim in shape):
        raise ValueError(f"negative dimension in shape {shape}")
    return float(math.prod(shape)) * element_size


def traffic(
    reads: Iterable[float] = (), writes: Iterable[float] = ()
) -> float:
    """Total DRAM traffic from per-tensor read and write byte counts."""
    return float(sum(reads)) + float(sum(writes))
