"""Wave-quantised roofline timing for kernel launches.

The latency of one launch is modelled as::

    time = launch_overhead
         + extra_overhead
         + max(compute_time, memory_time) / utilisation

where ``utilisation`` accounts for two effects real kernels suffer:

* *wave quantisation* — a grid of ``B`` blocks with ``C`` concurrently
  resident blocks executes in ``ceil(B / C)`` waves; the last wave is
  partially filled, so average device utilisation is ``B / (waves * C)``;
* *bandwidth ramp* — DRAM bandwidth only saturates once enough blocks are
  in flight; small grids see proportionally less bandwidth.

Compute throughput is the device peak of the launch's functional unit
scaled by the launch's ``compute_efficiency`` (kernels know their own
achievable fraction — e.g. a skinny GEMM cannot keep tensor cores fed).
"""

from __future__ import annotations

import math

from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.occupancy import blocks_per_sm

_US_PER_S = 1e6


def _peak_tflops(unit: ComputeUnit, device: DeviceSpec) -> float:
    if unit is ComputeUnit.FP32:
        return device.fp32_tflops
    if unit is ComputeUnit.FP16:
        return device.fp16_tflops
    if unit is ComputeUnit.TENSOR_FP16:
        return device.tensor_fp16_tflops
    raise ValueError(f"unknown compute unit {unit!r}")


def compute_time_us(launch: KernelLaunch, device: DeviceSpec) -> float:
    """Time to execute the launch's FLOPs at its sustained throughput."""
    if launch.flops == 0:
        return 0.0
    peak = _peak_tflops(launch.compute_unit, device) * 1e12
    return launch.flops / (peak * launch.compute_efficiency) * _US_PER_S


def memory_time_us(
    launch: KernelLaunch, device: DeviceSpec, active_blocks: float
) -> float:
    """Time to move the launch's DRAM and hot (L2-candidate) traffic.

    ``active_blocks`` is the average number of blocks in flight; bandwidth
    ramps linearly with the number of in-flight *threads* (memory-level
    parallelism is per-warp) until
    :attr:`DeviceSpec.dram_saturation_threads`.  Hot bytes are served from
    L2 when the hot working set fits (0.7x capacity headroom for other
    tenants); otherwise they spill to DRAM pricing.
    """
    dram_bytes = launch.dram_bytes
    hot_time = 0.0
    if launch.hot_bytes > 0:
        if launch.hot_bytes <= 0.7 * device.l2_bytes:
            hot_time = (
                launch.hot_bytes / (device.l2_bandwidth_gbs * 1e9) * _US_PER_S
            )
        else:
            dram_bytes += launch.hot_bytes
    if dram_bytes == 0:
        return hot_time
    active_threads = active_blocks * launch.block_threads
    ramp = min(1.0, active_threads / device.dram_saturation_threads)
    # even a single block streams at a useful fraction of peak (one SM's
    # worth of memory pipelines), so floor the ramp.
    ramp = max(ramp, 1.0 / device.num_sms)
    bandwidth = device.effective_dram_gbs * 1e9 * ramp
    return dram_bytes / bandwidth * _US_PER_S + hot_time


def compute_saturation_blocks(launch: KernelLaunch, device: DeviceSpec) -> int:
    """Resident blocks needed to saturate the device's compute throughput.

    One SM's functional units saturate at roughly 256 threads of
    math-dense work, so small blocks need several residents per SM while
    a 256+-thread block saturates its SM alone.
    """
    per_sm = max(1, math.ceil(256 / launch.block_threads))
    return device.num_sms * per_sm


def expected_utilisation(launch: KernelLaunch, device: DeviceSpec) -> float:
    """Average fraction of device compute throughput this grid sustains.

    Combines wave quantisation (a partially-filled last wave idles SMs)
    with the compute-saturation point: once enough blocks are in flight
    to saturate the SMs, extra resident blocks do not add throughput —
    and a grid smaller than the saturation point only uses its share.
    """
    occ = blocks_per_sm(launch, device)
    concurrent = occ.blocks_per_sm * device.num_sms
    waves = math.ceil(launch.grid / concurrent)
    active = launch.grid / waves
    saturation = min(concurrent, compute_saturation_blocks(launch, device))
    return min(1.0, active / saturation)


def kernel_time_us(launch: KernelLaunch, device: DeviceSpec) -> float:
    """Total modelled latency of one kernel launch, microseconds."""
    occ = blocks_per_sm(launch, device)
    concurrent = occ.blocks_per_sm * device.num_sms
    waves = math.ceil(launch.grid / concurrent)
    # average blocks in flight over the kernel's lifetime
    active = launch.grid / waves

    t_compute = compute_time_us(launch, device)
    if t_compute > 0:
        t_compute /= expected_utilisation(launch, device)
    t_memory = memory_time_us(launch, device, active)

    return (
        device.kernel_launch_overhead_us
        + launch.extra_overhead_us
        + max(t_compute, t_memory)
    )
