"""Execution contexts: where kernels record their launches.

Numerical kernels accept an optional context; when given one, they call
:meth:`ExecutionContext.launch` with their cost descriptor.  The context
prices the launch against its device and accumulates a timeline.  A
:class:`NullContext` can be used when only the numerics are wanted.

A module-level *current context* (managed with :func:`use_context`) lets
deeply nested code record launches without threading the context through
every call signature; explicit passing always takes precedence.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.gpusim.device import A100_SPEC, DeviceSpec
from repro.gpusim.errors import LaunchConfigError
from repro.gpusim.interconnect import ClusterSpec, collective_time_us
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.timing import kernel_time_us

#: per-launch interceptor: ``(launch, index) -> latency multiplier``.
#: ``index`` is the position the launch would take in ``records``.  The
#: hook may raise :class:`~repro.gpusim.errors.TransientFault` to make
#: the launch fail (the record is then *not* appended, so the context's
#: timeline stays consistent up to the fault).  Returning 1.0 leaves the
#: launch untouched; a larger factor models a latency spike.
LaunchHook = Callable[[KernelLaunch, int], float]


@dataclass(frozen=True)
class KernelRecord:
    """One priced kernel launch on a context's timeline."""

    launch: KernelLaunch
    time_us: float
    start_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.time_us


class ExecutionContext:
    """Accumulates kernel launches and their modelled latencies.

    The context is serial (a single CUDA stream): kernels execute in the
    order they are recorded and total elapsed time is the sum of kernel
    latencies.  That matches the inference-serving setting in the paper,
    where one request's encoder runs as a dependent kernel chain.
    """

    def __init__(
        self,
        device: DeviceSpec = A100_SPEC,
        cluster: ClusterSpec | None = None,
    ) -> None:
        self.device = device
        #: the interconnect this stream's device belongs to; ``None``
        #: for a single-device context.  Collective launches require it
        #: — they are priced by the cluster's link model.
        self.cluster = cluster
        self.records: list[KernelRecord] = []
        self._elapsed_us = 0.0
        #: optional fault-injection hook (see :data:`LaunchHook`); the
        #: default ``None`` keeps the launch path byte-identical to a
        #: hook-free context
        self.launch_hook: LaunchHook | None = None

    def _price(self, launch: KernelLaunch) -> float:
        """Base modelled time: device roofline, or the cluster link
        model for collectives (see :mod:`repro.gpusim.interconnect`)."""
        if launch.is_collective:
            if self.cluster is None:
                raise LaunchConfigError(
                    f"collective launch {launch.name!r} on a context "
                    "without a cluster; pass cluster= to ExecutionContext"
                )
            return collective_time_us(launch, self.cluster)
        return kernel_time_us(launch, self.device)

    def launch(self, launch: KernelLaunch) -> KernelRecord:
        """Price ``launch`` on this context's device and append it.

        When a :attr:`launch_hook` is installed it runs first and may
        raise a transient fault (aborting the launch before anything is
        recorded) or stretch the modelled latency.
        """
        time_us = self._price(launch)
        if self.launch_hook is not None:
            time_us *= self.launch_hook(launch, len(self.records))
        record = KernelRecord(
            launch=launch, time_us=time_us, start_us=self._elapsed_us
        )
        self.records.append(record)
        self._elapsed_us += time_us
        return record

    def replay_launch(
        self, launch: KernelLaunch, base_time_us: float
    ) -> KernelRecord:
        """Append a launch whose base price is already known.

        This is the graph-replay fast path: identical to :meth:`launch`
        except the :func:`~repro.gpusim.timing.kernel_time_us` pricing is
        skipped — the captured ``base_time_us`` *is* that price, so the
        appended record is bit-identical to an eager launch.  The
        :attr:`launch_hook` still runs (faults and latency spikes must
        fire on replayed launches exactly as on eager ones).
        """
        time_us = base_time_us
        if self.launch_hook is not None:
            time_us *= self.launch_hook(launch, len(self.records))
        record = KernelRecord(
            launch=launch, time_us=time_us, start_us=self._elapsed_us
        )
        self.records.append(record)
        self._elapsed_us += time_us
        return record

    def elapsed_us(self) -> float:
        """Total modelled time of all recorded launches."""
        return self._elapsed_us

    def kernel_count(self) -> int:
        return len(self.records)

    def total_flops(self) -> float:
        return sum(r.launch.flops for r in self.records)

    def total_dram_bytes(self) -> float:
        return sum(r.launch.dram_bytes for r in self.records)

    def reset(self) -> None:
        self.records.clear()
        self._elapsed_us = 0.0

    def fork(self) -> "ExecutionContext":
        """A fresh context on the same device (for measuring a sub-region)."""
        return ExecutionContext(self.device, cluster=self.cluster)

    def merge(self, other: "ExecutionContext") -> None:
        """Append another context's records, shifting their timestamps."""
        base = self._elapsed_us
        for record in other.records:
            self.records.append(
                KernelRecord(
                    launch=record.launch,
                    time_us=record.time_us,
                    start_us=base + record.start_us,
                )
            )
        self._elapsed_us += other._elapsed_us


class NullContext(ExecutionContext):
    """Context that prices nothing — for numerics-only runs."""

    def __init__(self) -> None:
        super().__init__(A100_SPEC)

    def launch(self, launch: KernelLaunch) -> KernelRecord:  # noqa: D102
        return KernelRecord(launch=launch, time_us=0.0, start_us=0.0)

    def replay_launch(  # noqa: D102
        self, launch: KernelLaunch, base_time_us: float
    ) -> KernelRecord:
        return KernelRecord(launch=launch, time_us=0.0, start_us=0.0)


_current: list[ExecutionContext] = []


def current_context() -> ExecutionContext | None:
    """The innermost active context, or ``None``."""
    return _current[-1] if _current else None


@contextlib.contextmanager
def use_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Make ``ctx`` the current context within the ``with`` block."""
    _current.append(ctx)
    try:
        yield ctx
    finally:
        popped = _current.pop()
        assert popped is ctx, "use_context stack corrupted"


def resolve_context(ctx: ExecutionContext | None) -> ExecutionContext:
    """Explicit context, else the current one, else a NullContext."""
    if ctx is not None:
        return ctx
    active = current_context()
    if active is not None:
        return active
    return NullContext()
