"""Execution-graph capture & replay — the CUDA Graphs analog.

For a fixed ``(config, preset, lengths-signature)`` the kernel-launch
stream of a forward pass is fully deterministic: the same descriptors in
the same order with the same modelled times.  Yet the eager path re-runs
Python dispatch, descriptor construction and occupancy/roofline pricing
on every call.  A :class:`LaunchGraph` freezes one captured stream —
``(KernelLaunch, modelled time)`` pairs in dependency order — and
:meth:`LaunchGraph.replay` re-emits it into any context on the same
device, skipping all per-kernel recomputation while producing a
**bit-identical** record stream (same launches, same ``time_us``, same
``start_us`` accumulation) and therefore an identical ``modelled_us``.

Fault composition (the PR 2 launch hook) is first-class: replay feeds
every launch through the target context's :data:`~repro.gpusim.stream.LaunchHook`
exactly as eager execution would, so a seeded
:class:`~repro.serving.faults.FaultPlan` injects the *same* fault
sequence over a replayed stream as over an eager one.  A fault aborts
only the affected call — the graph itself is immutable, so a mid-replay
``TransientFault`` can never corrupt the cache.  Capture, conversely,
must always happen on a hook-free context (see :func:`capture`): a
hooked capture would bake latency spikes into the cached times.

:class:`GraphCache` is the LRU keyed store with the hit/miss/eviction
counters that :mod:`repro.gpusim.profiler` surfaces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.gpusim.device import DeviceSpec
from repro.gpusim.interconnect import ClusterSpec
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.stream import ExecutionContext
from repro.telemetry import current_telemetry


@dataclass(frozen=True)
class LaunchGraph:
    """One captured kernel-launch stream: descriptors + modelled times.

    Immutable by construction (frozen dataclass over tuples): replaying
    can never mutate the captured stream, which is what guarantees a
    fault during replay only affects that call.
    """

    device: DeviceSpec
    launches: tuple[KernelLaunch, ...]
    times_us: tuple[float, ...]
    #: the interconnect topology the stream was captured on (``None``
    #: for single-device captures).  Replay refuses a different
    #: topology: collective prices are a function of the cluster, so a
    #: cross-topology replay would smuggle one fabric's timings onto
    #: another.
    cluster: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if len(self.launches) != len(self.times_us):
            raise ValueError(
                f"{len(self.launches)} launches but "
                f"{len(self.times_us)} times"
            )

    @classmethod
    def from_context(cls, ctx: ExecutionContext) -> "LaunchGraph":
        """Freeze ``ctx``'s recorded timeline into a replayable graph."""
        return cls(
            device=ctx.device,
            launches=tuple(r.launch for r in ctx.records),
            times_us=tuple(r.time_us for r in ctx.records),
            cluster=ctx.cluster,
        )

    def __len__(self) -> int:
        return len(self.launches)

    @property
    def modelled_us(self) -> float:
        """Fault-free total time of the stream (incremental sum, so it
        equals ``elapsed_us`` of a hook-free replay bit for bit)."""
        total = 0.0
        for t in self.times_us:
            total += t
        return total

    def replay(self, ctx: ExecutionContext) -> float:
        """Re-emit the captured stream into ``ctx``; returns the delta
        modelled time.

        Each launch goes through ``ctx``'s launch hook (if installed)
        exactly as an eager launch would — the hook may raise a
        :class:`~repro.gpusim.errors.TransientFault`, aborting the
        replay with the context's timeline consistent up to the fault,
        or stretch individual latencies.  The captured base times are
        the ones :func:`~repro.gpusim.timing.kernel_time_us` would
        recompute, so the replayed records are bit-identical to eager
        execution.
        """
        if ctx.device != self.device:
            raise ValueError(
                f"graph captured on {self.device.name!r} cannot replay "
                f"on {ctx.device.name!r}"
            )
        if ctx.cluster != self.cluster:
            mine = self.cluster.name if self.cluster else "single-device"
            theirs = ctx.cluster.name if ctx.cluster else "single-device"
            raise ValueError(
                f"graph captured on topology {mine!r} cannot replay on "
                f"{theirs!r}"
            )
        before = ctx.elapsed_us()
        replay_launch = ctx.replay_launch
        for launch, time_us in zip(self.launches, self.times_us):
            replay_launch(launch, time_us)
        return ctx.elapsed_us() - before


def capture(
    device: DeviceSpec,
    fn: Callable[[ExecutionContext], Any],
    cluster: ClusterSpec | None = None,
) -> tuple[LaunchGraph, Any]:
    """Run ``fn`` against a fresh hook-free context and freeze its stream.

    Returns ``(graph, fn's return value)``.  The capture context never
    has a launch hook: captured times are clean base times, and a fault
    plan installed on the caller's context keeps its ordinal counter
    untouched until the stream is actually replayed.  ``cluster`` gives
    the capture context an interconnect (required when ``fn`` launches
    collectives) and stamps the graph's topology guard.
    """
    ctx = ExecutionContext(device, cluster=cluster)
    result = fn(ctx)
    return LaunchGraph.from_context(ctx), result


class GraphCache:
    """LRU cache of :class:`LaunchGraph` keyed by the call signature.

    Keys are caller-built hashable tuples — typically
    ``(device, config, preset, mha-path, max_seq_len, lengths-bytes)``;
    anything that changes the launch stream must be in the key, which is
    exactly the invalidation rule: a new lengths signature, a different
    preset or a forced attention path is a different key, and a fault
    only aborts one replay without touching the stored graph.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: graphs captured (eager passes that got frozen) / replayed,
        #: split per key kind — see :meth:`kind_counts`
        self.captures = 0
        self.replays = 0
        self._kind_counts: dict[str, dict[str, int]] = {}
        self._entries: OrderedDict[Hashable, LaunchGraph] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.captures = 0
        self.replays = 0
        self._kind_counts = {}

    @staticmethod
    def _kind_of(key: Hashable) -> str:
        """Key kind for the eager/replayed split: the leading string tag
        of tagged keys (``"estimate"``, ``"tile"``, ``"decode"`` for the
        mixed prefill/decode round keys), else ``"model"``."""
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return "model"

    def _bump(self, key: Hashable, counter: str) -> None:
        kind = self._kind_counts.setdefault(
            self._kind_of(key), {"captures": 0, "replays": 0}
        )
        kind[counter] += 1

    def kind_counts(self) -> dict[str, dict[str, int]]:
        """Eager-capture vs replay counts per key kind.

        ``{"tile": {"captures": 3, "replays": 240}, ...}`` — the serving
        observability for shape quantization: a healthy continuous
        deployment shows a handful of ``tile`` captures (one per live
        tile) against a large replay count, while a per-dispatch batcher
        scatters captures across unique length signatures.  Decode
        serving reports the same shape under the ``decode`` kind (one
        capture per quantized round shape).
        """
        return {k: dict(v) for k, v in self._kind_counts.items()}

    def get(self, key: Hashable) -> LaunchGraph | None:
        """The cached graph for ``key``, or ``None`` (counted as a miss)."""
        graph = self._entries.get(key)
        if graph is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self.replays += 1
        self._bump(key, "replays")
        return graph

    def put(self, key: Hashable, graph: LaunchGraph) -> LaunchGraph:
        """Insert ``graph`` under ``key``, evicting the LRU entry if full.

        A ``put`` is counted as a capture: both call sites freeze a
        freshly-run eager stream immediately before storing it.
        """
        self._entries[key] = graph
        self._entries.move_to_end(key)
        self.captures += 1
        self._bump(key, "captures")
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return graph

    def replay_or_capture(
        self,
        key: Hashable,
        ctx: ExecutionContext,
        fn: Callable[[ExecutionContext], Any],
    ) -> float:
        """Replay ``key``'s graph into ``ctx``, capturing it first on a miss.

        On a miss ``fn`` runs against a fresh hook-free context (clean
        capture), the graph is cached, and only then is the stream
        replayed through ``ctx`` — so hooks observe exactly one pass over
        the launch sequence, the same as eager execution.  Returns the
        delta modelled time in ``ctx``.

        When a :class:`~repro.telemetry.Telemetry` is installed (and the
        caller is its owner thread), a miss records a ``graph.capture``
        instant and every replay is wrapped in a ``graph.replay`` span
        spanning the replayed modelled time — observation only, so the
        cached graphs and the replayed stream are bit-identical with
        telemetry on or off.
        """
        tel = current_telemetry()
        if tel is not None and not tel.owns_current_thread():
            tel = None
        kind = self._kind_of(key)
        graph = self.get(key)
        if graph is None:
            if tel is not None:
                tel.tracer.instant(
                    "graph.capture", category="graph", key_kind=kind
                )
            graph, _ = capture(ctx.device, fn, cluster=ctx.cluster)
            self.put(key, graph)
        if tel is None:
            return graph.replay(ctx)
        span = tel.tracer.begin(
            "graph.replay",
            category="graph",
            key_kind=kind,
            launches=len(graph),
        )
        try:
            delta = graph.replay(ctx)
        except BaseException:
            # a mid-replay fault: close the span at the cursor so the
            # enclosing attempt span can still end cleanly
            tel.tracer.end(fault=True)
            raise
        tel.tracer.end(end_us=span.start_us + delta, modelled_us=delta)
        return delta
