"""Per-category aggregation of a context's timeline.

Reproduces the paper's profiling methodology (§III-B, Figure 3): kernels
are tagged with a *category* (``gemm0`` … ``gemm3``, ``attention``,
``layernorm0``, ``layernorm1``, ``activation``, …) and the profiler sums
time, FLOPs, traffic and launch counts per category, then renders the
breakdown as a text table.

:class:`CacheStats` is the observability companion for the runtime's
caches (the packing-metadata cache and the launch-graph cache): a
uniform hit/miss/eviction snapshot that ``repro bench`` and
``repro serve-chaos`` print next to the kernel profile.  It reads any
object exposing ``hits``/``misses``/``evictions``/``__len__`` duck-typed,
so the profiler stays import-cycle-free of the cache implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.interconnect import COLLECTIVE_CATEGORY
from repro.gpusim.stream import ExecutionContext


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time hit/miss/eviction snapshot of one runtime cache."""

    name: str
    hits: int
    misses: int
    evictions: int
    size: int
    #: graph caches only: eager passes frozen into graphs / graph replays
    #: (0 for caches without a capture/replay notion, e.g. packing)
    captures: int = 0
    replays: int = 0
    #: per key kind, ``{"tile": {"captures": 3, "replays": 240}, ...}``
    kind_counts: dict = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def kind(self, name: str) -> dict:
        """Capture/replay counters of one key kind (e.g. ``"decode"``).

        Returns ``{"captures": 0, "replays": 0}`` for kinds the cache
        never saw, so callers can print uniform columns.
        """
        counts = self.kind_counts.get(name, {})
        return {
            "captures": int(counts.get("captures", 0)),
            "replays": int(counts.get("replays", 0)),
        }

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 for a never-queried cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    @classmethod
    def from_cache(cls, name: str, cache: object) -> "CacheStats":
        """Snapshot any cache exposing hits/misses/evictions/len.

        Graph caches additionally expose ``captures``/``replays`` and a
        per-kind split (:meth:`~repro.gpusim.graph.GraphCache.kind_counts`);
        those land in the snapshot too, defaulting to zero/empty for
        plain lookup caches.
        """
        kind_counts = getattr(cache, "kind_counts", None)
        return cls(
            name=name,
            hits=int(getattr(cache, "hits", 0)),
            misses=int(getattr(cache, "misses", 0)),
            evictions=int(getattr(cache, "evictions", 0)),
            size=len(cache),  # type: ignore[arg-type]
            captures=int(getattr(cache, "captures", 0)),
            replays=int(getattr(cache, "replays", 0)),
            kind_counts=kind_counts() if callable(kind_counts) else {},
        )


def format_cache_stats(
    stats: list[CacheStats] | tuple[CacheStats, ...],
    title: str = "caches",
) -> str:
    """Render cache counters as a fixed-width text table.

    The capture/replay columns show ``-`` for caches that have no
    capture notion (``captures == replays == 0`` and no per-kind split).
    """
    lines = [
        f"== {title} ==",
        f"{'cache':<16}{'hits':>8}{'misses':>8}{'evict':>7}"
        f"{'size':>6}{'capt':>6}{'replay':>8}{'hit rate':>10}",
    ]
    for s in stats:
        graphy = s.captures or s.replays or s.kind_counts
        capt = f"{s.captures:d}" if graphy else "-"
        replay = f"{s.replays:d}" if graphy else "-"
        lines.append(
            f"{s.name:<16}{s.hits:>8d}{s.misses:>8d}{s.evictions:>7d}"
            f"{s.size:>6d}{capt:>6}{replay:>8}{s.hit_rate:>9.1%}"
        )
    return "\n".join(lines)


@dataclass
class CategoryProfile:
    """Aggregated statistics for one kernel category."""

    category: str
    time_us: float = 0.0
    flops: float = 0.0
    dram_bytes: float = 0.0
    launches: int = 0

    def add(self, time_us: float, flops: float, dram_bytes: float) -> None:
        self.time_us += time_us
        self.flops += flops
        self.dram_bytes += dram_bytes
        self.launches += 1


@dataclass
class ProfileReport:
    """Breakdown of a context's timeline by kernel category."""

    categories: dict[str, CategoryProfile] = field(default_factory=dict)
    total_us: float = 0.0
    #: per-device breakdown, populated by :meth:`from_segments`; empty
    #: for single-context profiles (:meth:`from_context`)
    device_categories: dict[int, dict[str, CategoryProfile]] = field(
        default_factory=dict
    )

    def _add_record(self, record, device: int | None = None) -> None:
        cat = record.launch.category
        profile = self.categories.setdefault(cat, CategoryProfile(cat))
        profile.add(
            record.time_us, record.launch.flops, record.launch.dram_bytes
        )
        self.total_us += record.time_us
        if device is not None:
            per_dev = self.device_categories.setdefault(device, {})
            per_dev.setdefault(cat, CategoryProfile(cat)).add(
                record.time_us, record.launch.flops, record.launch.dram_bytes
            )

    @classmethod
    def from_context(cls, ctx: ExecutionContext) -> "ProfileReport":
        report = cls()
        for record in ctx.records:
            report._add_record(record)
        return report

    @classmethod
    def from_segments(cls, segments) -> "ProfileReport":
        """Aggregate a telemetry run's kernel segments, per device.

        ``segments`` duck-types
        :class:`~repro.telemetry.context.KernelSegment` (``records`` +
        ``device``); the global category totals match concatenating the
        segments into one flat context, and the per-device split feeds
        the subtotal rows of :meth:`to_table`.
        """
        report = cls()
        for segment in segments:
            device = int(getattr(segment, "device", 0))
            for record in segment.records:
                report._add_record(record, device=device)
        return report

    def fraction(self, category: str) -> float:
        """Share of total time spent in ``category`` (0 if absent)."""
        if self.total_us == 0:
            return 0.0
        profile = self.categories.get(category)
        return profile.time_us / self.total_us if profile else 0.0

    def fractions(self) -> dict[str, float]:
        return {name: self.fraction(name) for name in self.categories}

    @property
    def comm_fraction(self) -> float:
        """Share of total time spent in interconnect collectives.

        The communication side of the comm/compute crossover: on a
        sharded timeline this is exactly the all-reduce/all-gather/p2p
        share, 0.0 on any single-device timeline.
        """
        return self.fraction(COLLECTIVE_CATEGORY)

    def sorted_categories(self) -> list[CategoryProfile]:
        return sorted(
            self.categories.values(), key=lambda c: c.time_us, reverse=True
        )

    def to_table(self, title: str = "profile") -> str:
        """Render the breakdown as a fixed-width text table.

        The category column widens to the longest name present, so a
        timeline mixing ``collective`` with the long decode categories
        (``decode_attention``) still lines up; every numeric column is
        exactly as wide as its header.  When the report carries a
        per-device split (:meth:`from_segments` on a sharded run) one
        subtotal row per device follows the categories.
        """
        width = max(
            [18] + [len(name) + 2 for name in self.categories]
        )
        lines = [
            f"== {title} (total {self.total_us:10.1f} us) ==",
            f"{'category':<{width}}{'time_us':>12}{'share':>9}"
            f"{'launches':>10}{'GFLOP':>10}{'MB':>10}",
        ]

        def row(label: str, profile: CategoryProfile, share: float) -> str:
            return (
                f"{label:<{width}}"
                f"{profile.time_us:>12.1f}"
                f"{share:>9.1%}"
                f"{profile.launches:>10d}"
                f"{profile.flops / 1e9:>10.2f}"
                f"{profile.dram_bytes / 1e6:>10.2f}"
            )

        for profile in self.sorted_categories():
            lines.append(
                row(
                    profile.category,
                    profile,
                    self.fraction(profile.category),
                )
            )
        if len(self.device_categories) > 1:
            for device in sorted(self.device_categories):
                subtotal = CategoryProfile(f"device {device}")
                for profile in self.device_categories[device].values():
                    subtotal.time_us += profile.time_us
                    subtotal.flops += profile.flops
                    subtotal.dram_bytes += profile.dram_bytes
                    subtotal.launches += profile.launches
                share = (
                    subtotal.time_us / self.total_us if self.total_us else 0.0
                )
                lines.append(row(f"-- device {device}", subtotal, share))
        return "\n".join(lines)
