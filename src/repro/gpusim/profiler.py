"""Per-category aggregation of a context's timeline.

Reproduces the paper's profiling methodology (§III-B, Figure 3): kernels
are tagged with a *category* (``gemm0`` … ``gemm3``, ``attention``,
``layernorm0``, ``layernorm1``, ``activation``, …) and the profiler sums
time, FLOPs, traffic and launch counts per category, then renders the
breakdown as a text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.stream import ExecutionContext


@dataclass
class CategoryProfile:
    """Aggregated statistics for one kernel category."""

    category: str
    time_us: float = 0.0
    flops: float = 0.0
    dram_bytes: float = 0.0
    launches: int = 0

    def add(self, time_us: float, flops: float, dram_bytes: float) -> None:
        self.time_us += time_us
        self.flops += flops
        self.dram_bytes += dram_bytes
        self.launches += 1


@dataclass
class ProfileReport:
    """Breakdown of a context's timeline by kernel category."""

    categories: dict[str, CategoryProfile] = field(default_factory=dict)
    total_us: float = 0.0

    @classmethod
    def from_context(cls, ctx: ExecutionContext) -> "ProfileReport":
        report = cls()
        for record in ctx.records:
            cat = record.launch.category
            profile = report.categories.setdefault(cat, CategoryProfile(cat))
            profile.add(
                record.time_us, record.launch.flops, record.launch.dram_bytes
            )
            report.total_us += record.time_us
        return report

    def fraction(self, category: str) -> float:
        """Share of total time spent in ``category`` (0 if absent)."""
        if self.total_us == 0:
            return 0.0
        profile = self.categories.get(category)
        return profile.time_us / self.total_us if profile else 0.0

    def fractions(self) -> dict[str, float]:
        return {name: self.fraction(name) for name in self.categories}

    def sorted_categories(self) -> list[CategoryProfile]:
        return sorted(
            self.categories.values(), key=lambda c: c.time_us, reverse=True
        )

    def to_table(self, title: str = "profile") -> str:
        """Render the breakdown as a fixed-width text table."""
        lines = [
            f"== {title} (total {self.total_us:10.1f} us) ==",
            f"{'category':<18}{'time_us':>12}{'share':>9}"
            f"{'launches':>10}{'GFLOP':>10}{'MB':>10}",
        ]
        for profile in self.sorted_categories():
            lines.append(
                f"{profile.category:<18}"
                f"{profile.time_us:>12.1f}"
                f"{self.fraction(profile.category):>8.1%}"
                f"{profile.launches:>10d}"
                f"{profile.flops / 1e9:>10.2f}"
                f"{profile.dram_bytes / 1e6:>10.2f}"
            )
        return "\n".join(lines)
