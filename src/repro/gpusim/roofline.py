"""Roofline classification of recorded kernels.

For each launch on a context's timeline, decide what bounds it — tensor-
core/CUDA-core **compute**, DRAM/L2 **memory**, or fixed **launch**
overhead — and aggregate shares per category.  This is the §III-B
profiling methodology made explicit: the paper's optimisation order
(fuse the memory-bound tail first, then attack the attention quadratic)
falls straight out of this classification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.stream import ExecutionContext, KernelRecord
from repro.gpusim.timing import (
    compute_time_us,
    expected_utilisation,
    memory_time_us,
)
from repro.gpusim.occupancy import blocks_per_sm

import math


class Bound(enum.Enum):
    """What limits a kernel: compute, memory, or launch overhead."""
    COMPUTE = "compute"
    MEMORY = "memory"
    LAUNCH = "launch"


@dataclass(frozen=True)
class KernelRoofline:
    """One kernel's position against the roofline."""

    name: str
    category: str
    time_us: float
    compute_us: float
    memory_us: float
    overhead_us: float
    bound: Bound

    @property
    def overhead_share(self) -> float:
        return self.overhead_us / self.time_us if self.time_us else 0.0


def classify_record(
    record: KernelRecord, device: DeviceSpec
) -> KernelRoofline:
    """Decompose one record into compute/memory/overhead terms."""
    launch = record.launch
    t_compute = compute_time_us(launch, device)
    if t_compute > 0:
        t_compute /= expected_utilisation(launch, device)
    occ = blocks_per_sm(launch, device)
    concurrent = occ.blocks_per_sm * device.num_sms
    waves = math.ceil(launch.grid / concurrent)
    active = launch.grid / waves
    t_memory = memory_time_us(launch, device, active)
    overhead = device.kernel_launch_overhead_us + launch.extra_overhead_us

    work = max(t_compute, t_memory)
    if overhead >= work:
        bound = Bound.LAUNCH
    elif t_compute >= t_memory:
        bound = Bound.COMPUTE
    else:
        bound = Bound.MEMORY
    return KernelRoofline(
        name=launch.name,
        category=launch.category,
        time_us=record.time_us,
        compute_us=t_compute,
        memory_us=t_memory,
        overhead_us=overhead,
        bound=bound,
    )


@dataclass(frozen=True)
class RooflineReport:
    kernels: tuple[KernelRoofline, ...]

    def share(self, bound: Bound) -> float:
        """Fraction of total time spent in kernels with this bound."""
        total = sum(k.time_us for k in self.kernels)
        if total == 0:
            return 0.0
        return sum(k.time_us for k in self.kernels if k.bound is bound) / total

    def count(self, bound: Bound) -> int:
        return sum(1 for k in self.kernels if k.bound is bound)

    def to_table(self, top: int = 12) -> str:
        lines = [
            "== roofline classification ==",
            f"compute-bound {self.share(Bound.COMPUTE):6.1%} "
            f"({self.count(Bound.COMPUTE)} kernels)   "
            f"memory-bound {self.share(Bound.MEMORY):6.1%} "
            f"({self.count(Bound.MEMORY)} kernels)   "
            f"launch-bound {self.share(Bound.LAUNCH):6.1%} "
            f"({self.count(Bound.LAUNCH)} kernels)",
            f"{'kernel':<34}{'time_us':>10}{'compute':>10}{'memory':>10}"
            f"{'ovhd':>8}{'bound':>9}",
        ]
        by_time = sorted(self.kernels, key=lambda k: k.time_us, reverse=True)
        for k in by_time[:top]:
            lines.append(
                f"{k.name:<34}{k.time_us:>10.1f}{k.compute_us:>10.1f}"
                f"{k.memory_us:>10.1f}{k.overhead_us:>8.1f}"
                f"{k.bound.value:>9}"
            )
        return "\n".join(lines)


def roofline_report(ctx: ExecutionContext) -> RooflineReport:
    """Classify every kernel on the context's timeline."""
    return RooflineReport(
        kernels=tuple(
            classify_record(record, ctx.device) for record in ctx.records
        )
    )
