"""Kernel launch cost descriptors.

A :class:`KernelLaunch` is everything the timing model needs to know about
one kernel: the launch configuration (grid, block, shared memory,
registers), the useful work (FLOPs on a functional unit, DRAM traffic) and
any modelled fixed overheads beyond the launch itself (for example the
grouped-GEMM scheduler visits of §III-E.2 in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ComputeUnit(enum.Enum):
    """Functional unit a kernel's FLOPs execute on."""

    FP32 = "fp32"
    FP16 = "fp16"
    TENSOR_FP16 = "tensor_fp16"


@dataclass(frozen=True)
class KernelLaunch:
    """Cost descriptor for one simulated kernel launch.

    Parameters
    ----------
    name:
        Kernel identifier, e.g. ``"fused_add_bias_layernorm"``.
    category:
        Aggregation bucket used by the profiler — maps onto the paper's
        breakdown buckets (``gemm0`` … ``gemm3``, ``attention``,
        ``layernorm0``, …).
    grid:
        Total number of thread blocks.
    block_threads:
        Threads per block.
    flops:
        Useful floating point operations performed by the whole grid.
    dram_bytes:
        Bytes moved to/from DRAM by the whole grid (reads + writes), after
        assuming perfect L1/shared-memory reuse *within* a block.  This is
        the quantity kernel fusion reduces.
    hot_bytes:
        Bytes read from a tensor the *previous* kernel just wrote.  If the
        working set still fits in L2 these reads are served at L2
        bandwidth instead of DRAM bandwidth (decided at timing, per
        device); otherwise they are priced as DRAM traffic.  This is why
        fusing two small kernels saves less than raw DRAM math suggests.
    compute_unit:
        Functional unit executing ``flops``.
    compute_efficiency:
        Fraction of the unit's peak this kernel sustains when fully
        occupied (GEMM-shape dependent; elementwise kernels rarely matter
        because they are bandwidth bound).
    shared_mem_per_block / regs_per_thread:
        Occupancy inputs.
    extra_overhead_us:
        Modelled fixed cost not covered by work or launch overhead, e.g.
        scheduler-visit time in grouped GEMM.
    tags:
        Free-form metadata for tests and reports.
    comm_bytes / comm_devices / comm_algo:
        Collective-communication descriptor (see
        :mod:`repro.gpusim.interconnect`).  A launch with
        ``comm_devices >= 2`` is a *collective*: it is priced by the
        execution context's cluster link model instead of the device
        roofline, but flows through streams, graphs, hooks and traces
        exactly like a compute kernel.  ``comm_bytes`` is the payload,
        ``comm_algo`` the transfer schedule (``"ring"``, ``"tree"``,
        ``"ring-ag"``, ``"p2p"``).
    """

    name: str
    category: str
    grid: int
    block_threads: int
    flops: float = 0.0
    dram_bytes: float = 0.0
    hot_bytes: float = 0.0
    compute_unit: ComputeUnit = ComputeUnit.FP32
    compute_efficiency: float = 0.85
    shared_mem_per_block: int = 0
    regs_per_thread: int = 64
    extra_overhead_us: float = 0.0
    tags: tuple[str, ...] = field(default=())
    comm_bytes: float = 0.0
    comm_devices: int = 0
    comm_algo: str = ""

    def __post_init__(self) -> None:
        if self.grid <= 0:
            raise ValueError(f"grid must be positive, got {self.grid}")
        if self.block_threads <= 0:
            raise ValueError(
                f"block_threads must be positive, got {self.block_threads}"
            )
        if self.flops < 0 or self.dram_bytes < 0 or self.hot_bytes < 0:
            raise ValueError("flops and byte counts must be non-negative")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(
                f"compute_efficiency must be in (0, 1], got "
                f"{self.compute_efficiency}"
            )
        if self.shared_mem_per_block < 0 or self.regs_per_thread < 0:
            raise ValueError("resource usage must be non-negative")
        if self.extra_overhead_us < 0:
            raise ValueError("extra_overhead_us must be non-negative")
        if self.comm_bytes < 0:
            raise ValueError("comm_bytes must be non-negative")
        if self.comm_devices < 0:
            raise ValueError("comm_devices must be non-negative")
        if self.comm_devices >= 2 and not self.comm_algo:
            raise ValueError(
                f"collective launch {self.name!r} needs a comm_algo"
            )

    @property
    def is_collective(self) -> bool:
        """Whether this launch is priced by the interconnect model."""
        return self.comm_devices >= 2

    @property
    def total_threads(self) -> int:
        return self.grid * self.block_threads

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per DRAM byte; ``inf`` for traffic-free launches."""
        if self.dram_bytes == 0:
            return float("inf")
        return self.flops / self.dram_bytes
