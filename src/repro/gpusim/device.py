"""Device specifications for the simulator.

A :class:`DeviceSpec` is an immutable bag of the architectural parameters
the timing model consumes.  The presets are taken from public vendor
datasheets and microbenchmark literature; the *efficiency* knobs (fraction
of peak actually achievable by well-tuned kernels) follow commonly reported
measurements rather than marketing peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a simulated GPU.

    Throughputs are peak numbers; the timing model multiplies them by
    per-kernel efficiency factors.  Memory sizes are bytes.
    """

    name: str
    num_sms: int
    clock_ghz: float
    #: peak FP32 CUDA-core throughput, TFLOP/s
    fp32_tflops: float
    #: peak FP16 CUDA-core throughput, TFLOP/s
    fp16_tflops: float
    #: peak FP16 tensor-core throughput, TFLOP/s
    tensor_fp16_tflops: float
    #: peak DRAM bandwidth, GB/s
    dram_bandwidth_gbs: float
    #: fraction of peak DRAM bandwidth a streaming kernel achieves
    dram_efficiency: float
    l2_bytes: int
    #: sustained L2 bandwidth, GB/s — serves *hot* reads of tensors the
    #: previous kernel just wrote (see KernelLaunch.hot_bytes)
    l2_bandwidth_gbs: float
    #: shared memory available per SM (unified with L1 carve-out)
    shared_mem_per_sm: int
    #: maximum shared memory a single block may request
    max_shared_mem_per_block: int
    registers_per_sm: int
    max_regs_per_thread: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int
    #: fixed host-side cost of one kernel launch, microseconds
    kernel_launch_overhead_us: float
    #: number of resident threads needed to saturate DRAM bandwidth
    #: (memory-level parallelism is per-warp, not per-block)
    dram_saturation_threads: int

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.warp_size <= 0:
            raise ValueError(f"warp_size must be positive, got {self.warp_size}")
        if not (0.0 < self.dram_efficiency <= 1.0):
            raise ValueError(
                f"dram_efficiency must be in (0, 1], got {self.dram_efficiency}"
            )
        for field in (
            "clock_ghz",
            "fp32_tflops",
            "fp16_tflops",
            "tensor_fp16_tflops",
            "dram_bandwidth_gbs",
            "kernel_launch_overhead_us",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    @property
    def max_concurrent_blocks(self) -> int:
        """Upper bound on simultaneously resident blocks across the device."""
        return self.num_sms * self.max_blocks_per_sm

    @property
    def effective_dram_gbs(self) -> float:
        """DRAM bandwidth achievable by a saturating streaming kernel."""
        return self.dram_bandwidth_gbs * self.dram_efficiency

    def with_overrides(self, **kwargs: object) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: NVIDIA A100-SXM4-40GB — the device used in the paper's evaluation.
A100_SPEC = DeviceSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    clock_ghz=1.41,
    fp32_tflops=19.5,
    fp16_tflops=78.0,
    tensor_fp16_tflops=312.0,
    dram_bandwidth_gbs=1555.0,
    dram_efficiency=0.85,
    l2_bytes=40 * 1024 * 1024,
    l2_bandwidth_gbs=4500.0,
    shared_mem_per_sm=164 * 1024,
    max_shared_mem_per_block=163 * 1024,
    registers_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    warp_size=32,
    kernel_launch_overhead_us=4.0,
    dram_saturation_threads=108 * 512,
)

#: NVIDIA V100-SXM2-32GB — previous generation, for sensitivity studies.
V100_SPEC = DeviceSpec(
    name="V100-SXM2-32GB",
    num_sms=80,
    clock_ghz=1.53,
    fp32_tflops=15.7,
    fp16_tflops=31.4,
    tensor_fp16_tflops=125.0,
    dram_bandwidth_gbs=900.0,
    dram_efficiency=0.82,
    l2_bytes=6 * 1024 * 1024,
    l2_bandwidth_gbs=2200.0,
    shared_mem_per_sm=96 * 1024,
    max_shared_mem_per_block=96 * 1024,
    registers_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    warp_size=32,
    kernel_launch_overhead_us=4.5,
    dram_saturation_threads=80 * 512,
)

#: NVIDIA A10 — an inference-class part, for sensitivity studies.
A10_SPEC = DeviceSpec(
    name="A10",
    num_sms=72,
    clock_ghz=1.70,
    fp32_tflops=31.2,
    fp16_tflops=31.2,
    tensor_fp16_tflops=125.0,
    dram_bandwidth_gbs=600.0,
    dram_efficiency=0.82,
    l2_bytes=6 * 1024 * 1024,
    l2_bandwidth_gbs=1800.0,
    shared_mem_per_sm=100 * 1024,
    max_shared_mem_per_block=99 * 1024,
    registers_per_sm=65536,
    max_regs_per_thread=255,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_size=32,
    kernel_launch_overhead_us=4.0,
    dram_saturation_threads=72 * 384,
)
