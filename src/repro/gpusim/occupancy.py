"""Occupancy model: resident blocks per SM for a launch configuration.

Follows the CUDA occupancy calculator's structure: the number of blocks
that fit on one SM is the minimum over four independent limits (block
slots, thread slots, register file, shared memory), with register and
shared-memory allocations rounded up to hardware granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.errors import LaunchConfigError, ResourceExhaustedError
from repro.gpusim.kernel import KernelLaunch

#: register allocation granularity per warp (Ampere: 256 registers)
_REG_ALLOC_UNIT = 256
#: shared memory allocation granularity (Ampere: 128 bytes)
_SMEM_ALLOC_UNIT = 128


def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one launch."""

    blocks_per_sm: int
    limiting_factor: str
    warps_per_sm: int
    occupancy: float

    @property
    def is_full(self) -> bool:
        return self.occupancy >= 0.99


def blocks_per_sm(launch: KernelLaunch, device: DeviceSpec) -> OccupancyResult:
    """Compute resident blocks per SM for ``launch`` on ``device``.

    Raises
    ------
    LaunchConfigError
        if the launch exceeds a hard per-block device limit.
    ResourceExhaustedError
        if the launch is legal but zero blocks fit on an SM (cannot happen
        for legal launches on real hardware, kept as a defensive check).
    """
    if launch.block_threads > device.max_threads_per_block:
        raise LaunchConfigError(
            f"{launch.name}: {launch.block_threads} threads/block exceeds "
            f"device limit {device.max_threads_per_block}"
        )
    if launch.shared_mem_per_block > device.max_shared_mem_per_block:
        raise LaunchConfigError(
            f"{launch.name}: {launch.shared_mem_per_block} B shared memory "
            f"exceeds device limit {device.max_shared_mem_per_block} B"
        )
    if launch.regs_per_thread > device.max_regs_per_thread:
        raise LaunchConfigError(
            f"{launch.name}: {launch.regs_per_thread} registers/thread "
            f"exceeds device limit {device.max_regs_per_thread}"
        )

    warps_per_block = -(-launch.block_threads // device.warp_size)

    limits: dict[str, int] = {}
    limits["block_slots"] = device.max_blocks_per_sm
    limits["thread_slots"] = device.max_threads_per_sm // (
        warps_per_block * device.warp_size
    )

    regs_per_warp = _round_up(
        launch.regs_per_thread * device.warp_size, _REG_ALLOC_UNIT
    )
    regs_per_block = regs_per_warp * warps_per_block
    limits["registers"] = (
        device.registers_per_sm // regs_per_block if regs_per_block else limits["block_slots"]
    )

    if launch.shared_mem_per_block > 0:
        smem_per_block = _round_up(launch.shared_mem_per_block, _SMEM_ALLOC_UNIT)
        limits["shared_memory"] = device.shared_mem_per_sm // smem_per_block
    else:
        limits["shared_memory"] = limits["block_slots"]

    limiting_factor = min(limits, key=lambda key: limits[key])
    blocks = limits[limiting_factor]
    if blocks <= 0:
        raise ResourceExhaustedError(
            f"{launch.name}: zero occupancy (limited by {limiting_factor})"
        )

    warps_resident = blocks * warps_per_block
    max_warps = device.max_threads_per_sm // device.warp_size
    return OccupancyResult(
        blocks_per_sm=blocks,
        limiting_factor=limiting_factor,
        warps_per_sm=warps_resident,
        occupancy=min(1.0, warps_resident / max_warps),
    )
