"""The priced interconnect: links, clusters and collective kernels.

One simulated A100 became a cluster.  A :class:`LinkSpec` models the
device-to-device fabric (NVLink or PCIe: per-direction bandwidth, hop
latency, and how much of that bandwidth survives when both directions
are in flight at once); a :class:`ClusterSpec` binds N copies of one
:class:`~repro.gpusim.device.DeviceSpec` together over one link model.

Collectives are *kernels*: :func:`all_reduce_launch` & friends build
ordinary :class:`~repro.gpusim.kernel.KernelLaunch` descriptors (with
the ``comm_*`` fields set) that flow through
:meth:`~repro.gpusim.stream.ExecutionContext.launch` like any GEMM —
they appear in launch streams, captured graphs, Chrome traces and the
profiler, and the context's launch hook fires on them, so seeded chaos
can strike communication exactly as it strikes compute.  Pricing lives
in :func:`collective_time_us`, the interconnect twin of
:func:`~repro.gpusim.timing.kernel_time_us`:

* **ring** all-reduce — ``2·(N-1)`` steps, each moving ``B/N`` bytes
  with both directions of every link busy (the bidirectional
  efficiency applies).  Bandwidth-optimal: the per-device traffic is
  ``2·B·(N-1)/N`` no matter how large the ring grows.
* **tree** all-reduce — a reduce then a broadcast along a binary tree:
  ``2·ceil(log2 N)`` hops each moving the *full* payload one direction.
  Latency-optimal: hop count grows with ``log N``, not ``N``.

Small payloads therefore prefer the tree (few latency terms), large
payloads the ring (the ``B/N`` chunks amortise the extra hops) — the
``"auto"`` algorithm picks whichever the link model prices cheaper,
and the crossover payload is a pure function of the cluster, asserted
stable by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.gpusim.device import A100_SPEC, DeviceSpec
from repro.gpusim.errors import LaunchConfigError
from repro.gpusim.kernel import KernelLaunch

#: kernel category every collective launch carries; the profiler, the
#: Chrome exporter's interconnect lane and the bench comm/compute split
#: all key off it
COLLECTIVE_CATEGORY = "collective"

#: the collective algorithms :func:`all_reduce_launch` accepts
ALL_REDUCE_ALGOS = ("auto", "ring", "tree")


@dataclass(frozen=True)
class LinkSpec:
    """One device-to-device link of the cluster fabric.

    ``bandwidth_gbs`` is the *per-direction* bandwidth of one link;
    ``latency_us`` the fixed cost of one hop (software stack + wire).
    ``bidirectional_efficiency`` is the fraction of per-direction
    bandwidth each direction sustains when both are loaded at once —
    NVLink is close to full duplex, PCIe contends on shared lanes and
    root-complex arbitration.
    """

    name: str
    bandwidth_gbs: float
    latency_us: float
    bidirectional_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise ValueError(
                f"bandwidth_gbs must be positive, got {self.bandwidth_gbs}"
            )
        if self.latency_us < 0:
            raise ValueError(
                f"latency_us must be non-negative, got {self.latency_us}"
            )
        if not 0.0 < self.bidirectional_efficiency <= 1.0:
            raise ValueError(
                "bidirectional_efficiency must be in (0, 1], got "
                f"{self.bidirectional_efficiency}"
            )

    @property
    def duplex_bandwidth_gbs(self) -> float:
        """Per-direction bandwidth sustained under bidirectional load."""
        return self.bandwidth_gbs * self.bidirectional_efficiency


#: A100-SXM NVLink 3 fabric: 12 links x 25 GB/s per direction through
#: NVSwitch, near-full duplex, ~2 us software+switch hop latency.
NVLINK3_LINK = LinkSpec(
    name="nvlink3",
    bandwidth_gbs=300.0,
    latency_us=1.8,
    bidirectional_efficiency=0.95,
)

#: PCIe 4.0 x16 host fabric: ~25 GB/s effective per direction, shared
#: lanes contend hard bidirectionally, and each hop crosses the root
#: complex.
PCIE4_LINK = LinkSpec(
    name="pcie4",
    bandwidth_gbs=25.0,
    latency_us=4.0,
    bidirectional_efficiency=0.7,
)


@dataclass(frozen=True)
class ClusterSpec:
    """N identical devices joined by one link model.

    Hashable and immutable for the same reason :class:`DeviceSpec` is:
    cluster identity participates in graph-cache keys and in the
    :meth:`~repro.gpusim.graph.LaunchGraph.replay` topology guard — a
    stream captured on one topology must never replay on another.
    """

    name: str
    device: DeviceSpec
    num_devices: int
    link: LinkSpec

    def __post_init__(self) -> None:
        if self.num_devices < 2:
            raise ValueError(
                f"a cluster needs >= 2 devices, got {self.num_devices}"
            )

    def with_devices(self, num_devices: int) -> "ClusterSpec":
        """The same fabric at a different device count."""
        return replace(
            self,
            num_devices=num_devices,
            name=f"{self.device.name}x{num_devices}-{self.link.name}",
        )


def make_cluster(
    num_devices: int,
    device: DeviceSpec = A100_SPEC,
    link: LinkSpec = NVLINK3_LINK,
    name: str | None = None,
) -> ClusterSpec:
    """Build a homogeneous cluster spec (the common case)."""
    return ClusterSpec(
        name=(
            name
            if name is not None
            else f"{device.name}x{num_devices}-{link.name}"
        ),
        device=device,
        num_devices=num_devices,
        link=link,
    )


# ----------------------------------------------------------------------
# pricing — the interconnect twin of timing.kernel_time_us

def ring_all_reduce_us(nbytes: float, devices: int, link: LinkSpec) -> float:
    """Ring all-reduce: reduce-scatter + all-gather, 2(N-1) chunk steps.

    Every step moves ``B/N`` bytes per device with both link directions
    in flight (each device sends to its successor while receiving from
    its predecessor), so the duplex bandwidth applies.
    """
    steps = 2 * (devices - 1)
    chunk = nbytes / devices
    per_step = link.latency_us + chunk / (link.duplex_bandwidth_gbs * 1e3)
    return steps * per_step


def tree_all_reduce_us(nbytes: float, devices: int, link: LinkSpec) -> float:
    """Tree all-reduce: binary-tree reduce then broadcast.

    ``2·ceil(log2 N)`` hops each move the full payload one direction —
    few latency terms, no payload amortisation.
    """
    hops = 2 * math.ceil(math.log2(devices))
    per_hop = link.latency_us + nbytes / (link.bandwidth_gbs * 1e3)
    return hops * per_hop


def all_gather_us(nbytes: float, devices: int, link: LinkSpec) -> float:
    """Ring all-gather of a ``nbytes`` total result: (N-1) chunk steps."""
    steps = devices - 1
    chunk = nbytes / devices
    per_step = link.latency_us + chunk / (link.duplex_bandwidth_gbs * 1e3)
    return steps * per_step


def p2p_us(nbytes: float, devices: int, link: LinkSpec) -> float:
    """Root-serialised point-to-point scatter/gather.

    The root exchanges ``B/N`` bytes with each of the other ``N-1``
    devices one after another over its own links (one direction loaded,
    so full per-direction bandwidth).
    """
    steps = devices - 1
    chunk = nbytes / devices
    per_step = link.latency_us + chunk / (link.bandwidth_gbs * 1e3)
    return steps * per_step


def collective_time_us(launch: KernelLaunch, cluster: ClusterSpec) -> float:
    """Total modelled latency of one collective launch, microseconds.

    The interconnect counterpart of
    :func:`~repro.gpusim.timing.kernel_time_us`: the device's kernel
    launch overhead (a collective is still a launched kernel) plus the
    link-model transfer time of the launch's algorithm, plus any
    ``extra_overhead_us`` the descriptor carries.
    """
    devices = launch.comm_devices
    if devices < 2:
        raise LaunchConfigError(
            f"launch {launch.name!r} is not a collective "
            f"(comm_devices={devices})"
        )
    if devices > cluster.num_devices:
        raise LaunchConfigError(
            f"collective {launch.name!r} spans {devices} devices but the "
            f"cluster {cluster.name!r} has {cluster.num_devices}"
        )
    link = cluster.link
    nbytes = launch.comm_bytes
    algo = launch.comm_algo
    if algo == "ring":
        transfer = ring_all_reduce_us(nbytes, devices, link)
    elif algo == "tree":
        transfer = tree_all_reduce_us(nbytes, devices, link)
    elif algo == "ring-ag":
        transfer = all_gather_us(nbytes, devices, link)
    elif algo == "p2p":
        transfer = p2p_us(nbytes, devices, link)
    else:
        raise LaunchConfigError(
            f"collective {launch.name!r} has unknown algorithm {algo!r}"
        )
    return (
        cluster.device.kernel_launch_overhead_us
        + launch.extra_overhead_us
        + transfer
    )


# ----------------------------------------------------------------------
# launch builders — collectives as ordinary KernelLaunch descriptors

def _collective_launch(
    name: str, nbytes: float, devices: int, algo: str
) -> KernelLaunch:
    if devices < 2:
        raise ValueError(
            f"a collective needs >= 2 devices, got {devices}"
        )
    if nbytes < 0:
        raise ValueError(f"comm_bytes must be non-negative, got {nbytes}")
    return KernelLaunch(
        name=name,
        category=COLLECTIVE_CATEGORY,
        grid=devices,
        block_threads=256,
        comm_bytes=float(nbytes),
        comm_devices=int(devices),
        comm_algo=algo,
    )


def choose_all_reduce_algo(
    nbytes: float, devices: int, link: LinkSpec
) -> str:
    """The cheaper of ring and tree for this payload on this link.

    A pure function of ``(nbytes, devices, link)`` — the choice is
    deterministic and therefore graph-replay safe.  Ties go to the ring
    (the bandwidth-optimal default).
    """
    ring = ring_all_reduce_us(nbytes, devices, link)
    tree = tree_all_reduce_us(nbytes, devices, link)
    return "tree" if tree < ring else "ring"


def all_reduce_launch(
    nbytes: float,
    cluster: ClusterSpec,
    *,
    devices: int | None = None,
    algo: str = "auto",
    name: str | None = None,
) -> KernelLaunch:
    """An all-reduce over ``devices`` (default: the whole cluster).

    ``algo="auto"`` resolves to ring or tree at build time via
    :func:`choose_all_reduce_algo`, so the descriptor that lands in a
    captured graph names the concrete algorithm it was priced as.
    """
    if algo not in ALL_REDUCE_ALGOS:
        raise ValueError(
            f"algo must be one of {ALL_REDUCE_ALGOS}, got {algo!r}"
        )
    group = devices if devices is not None else cluster.num_devices
    if algo == "auto":
        algo = choose_all_reduce_algo(nbytes, group, cluster.link)
    return _collective_launch(
        name if name is not None else f"allreduce_{algo}",
        nbytes,
        group,
        algo,
    )


def all_gather_launch(
    nbytes: float,
    cluster: ClusterSpec,
    *,
    devices: int | None = None,
    name: str | None = None,
) -> KernelLaunch:
    """A ring all-gather producing ``nbytes`` total on every device."""
    group = devices if devices is not None else cluster.num_devices
    return _collective_launch(
        name if name is not None else "allgather_ring",
        nbytes,
        group,
        "ring-ag",
    )


def scatter_launch(
    nbytes: float,
    cluster: ClusterSpec,
    *,
    devices: int | None = None,
    name: str | None = None,
) -> KernelLaunch:
    """A root-to-all point-to-point scatter of ``nbytes`` total."""
    group = devices if devices is not None else cluster.num_devices
    return _collective_launch(
        name if name is not None else "scatter_p2p", nbytes, group, "p2p"
    )


def gather_launch(
    nbytes: float,
    cluster: ClusterSpec,
    *,
    devices: int | None = None,
    name: str | None = None,
) -> KernelLaunch:
    """An all-to-root point-to-point gather of ``nbytes`` total."""
    group = devices if devices is not None else cluster.num_devices
    return _collective_launch(
        name if name is not None else "gather_p2p", nbytes, group, "p2p"
    )


def crossover_bytes(
    devices: int, link: LinkSpec, hi: float = 1 << 34
) -> float:
    """The payload where ring and tree all-reduce cost the same.

    Below it the tree's few latency hops win; above it the ring's
    ``B/N`` chunks win.  Solved in closed form from the two linear cost
    models (both are ``a + b·B``); returns ``inf`` when the ring never
    overtakes (N = 2, where ring and tree have identical hop counts and
    the ring moves less data) and 0.0 when the tree never wins.
    """
    if devices < 2:
        raise ValueError(f"devices must be >= 2, got {devices}")
    lat_ring = 2 * (devices - 1) * link.latency_us
    lat_tree = 2 * math.ceil(math.log2(devices)) * link.latency_us
    slope_ring = (
        2 * (devices - 1) / devices / (link.duplex_bandwidth_gbs * 1e3)
    )
    slope_tree = (
        2 * math.ceil(math.log2(devices)) / (link.bandwidth_gbs * 1e3)
    )
    if slope_ring >= slope_tree:
        # the ring never becomes cheaper with payload
        return 0.0 if lat_tree <= lat_ring else float("inf")
    if lat_tree >= lat_ring:
        return 0.0
    cross = (lat_ring - lat_tree) / (slope_tree - slope_ring)
    return min(cross, hi)
