"""Analytical GPU execution simulator.

This package is the substrate that replaces the NVIDIA A100 used in the
paper.  Every numerical kernel in :mod:`repro.kernels` both computes its
result with NumPy *and* records a :class:`~repro.gpusim.kernel.KernelLaunch`
cost descriptor into an :class:`~repro.gpusim.stream.ExecutionContext`.
The simulator turns each descriptor into a latency estimate using a
wave-quantised roofline model:

* occupancy (resident blocks per SM) is derived from the launch's thread
  count, register usage and shared-memory usage against the device limits;
* the kernel's work (FLOPs on the chosen functional unit, DRAM bytes) is
  spread over the resident blocks in waves; latency is the max of the
  compute-limited and the bandwidth-limited time, degraded by partial-wave
  utilisation;
* a fixed per-launch overhead models the CUDA driver/runtime launch cost,
  which is what kernel *fusion* eliminates.

The model intentionally captures only first-order effects — those are the
effects the paper's optimisations target (fewer launches, less DRAM
traffic, no padded FLOPs, higher occupancy) — so relative speedups and
crossovers are meaningful even though absolute microseconds are not.
"""

from repro.gpusim.device import A10_SPEC, A100_SPEC, V100_SPEC, DeviceSpec
from repro.gpusim.errors import (
    GpuSimError,
    LaunchConfigError,
    LaunchFailure,
    ResourceExhaustedError,
    TransientFault,
    TransientOom,
)
from repro.gpusim.graph import GraphCache, LaunchGraph, capture
from repro.gpusim.interconnect import (
    COLLECTIVE_CATEGORY,
    NVLINK3_LINK,
    PCIE4_LINK,
    ClusterSpec,
    LinkSpec,
    all_gather_launch,
    all_reduce_launch,
    choose_all_reduce_algo,
    collective_time_us,
    crossover_bytes,
    gather_launch,
    make_cluster,
    scatter_launch,
)
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.occupancy import OccupancyResult, blocks_per_sm
from repro.gpusim.profiler import (
    CacheStats,
    CategoryProfile,
    ProfileReport,
    format_cache_stats,
)
from repro.gpusim.stream import (
    ExecutionContext,
    KernelRecord,
    LaunchHook,
    NullContext,
    current_context,
    use_context,
)
from repro.gpusim.timing import kernel_time_us

__all__ = [
    "GpuSimError",
    "LaunchConfigError",
    "LaunchFailure",
    "ResourceExhaustedError",
    "TransientFault",
    "TransientOom",
    "LaunchHook",
    "A100_SPEC",
    "A10_SPEC",
    "V100_SPEC",
    "DeviceSpec",
    "ComputeUnit",
    "KernelLaunch",
    "COLLECTIVE_CATEGORY",
    "NVLINK3_LINK",
    "PCIE4_LINK",
    "ClusterSpec",
    "LinkSpec",
    "all_gather_launch",
    "all_reduce_launch",
    "choose_all_reduce_algo",
    "collective_time_us",
    "crossover_bytes",
    "gather_launch",
    "make_cluster",
    "scatter_launch",
    "OccupancyResult",
    "blocks_per_sm",
    "CacheStats",
    "CategoryProfile",
    "GraphCache",
    "LaunchGraph",
    "ProfileReport",
    "capture",
    "format_cache_stats",
    "ExecutionContext",
    "KernelRecord",
    "NullContext",
    "current_context",
    "use_context",
    "kernel_time_us",
]
