"""Standard PyTorch-style MHA — the slow baseline of Figures 11/12.

Models ``torch.nn.MultiheadAttention`` as deployed in FP32 eager mode (the
framework default the paper benchmarks against): a long chain of small
kernels, each round-tripping the *padded* tensors — including the
quadratic ``seq_len x seq_len`` score matrix — through DRAM in FP32.

Kernel chain per call (8 launches):

1. add QKV bias (one pass over the padded ``[B*S, 3H]`` tensor);
2-4. three reshape/transpose copies materialising contiguous Q, K, V;
5. batched GEMM ``Q @ K^T`` on FP32 CUDA cores (no tensor cores);
6. additive mask kernel (read + write the full score tensor);
7. softmax kernel (read + write the full score tensor);
8. batched GEMM ``P @ V`` + a final transpose copy.

The scale ``1/sqrt(d)`` is applied in a separate pass over Q, as eager
PyTorch does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.softmax import MASK_VALUE, softmax_reference

#: sustained fraction of FP32 peak for cuBLAS SGEMM at these shapes
_FP32_GEMM_EFF = 0.80
_ROWS_PER_BLOCK = 4


def _fp32_elementwise(
    name: str, rows: int, cols: int, passes: float, category: str
) -> KernelLaunch:
    return KernelLaunch(
        name=name,
        category=category,
        grid=max(1, math.ceil(rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=float(rows) * cols,
        dram_bytes=(passes - 1.0) * rows * cols * BYTES_PER_FP32,
        hot_bytes=rows * cols * BYTES_PER_FP32,
        compute_unit=ComputeUnit.FP32,
        compute_efficiency=0.5,
        regs_per_thread=24,
    )


def _fp32_batched_gemm(
    name: str, batch_count: int, m: int, n: int, k: int, category: str
) -> KernelLaunch:
    tiles = math.ceil(m / 64) * math.ceil(n / 64)
    return KernelLaunch(
        name=name,
        category=category,
        grid=batch_count * tiles,
        block_threads=128,
        flops=2.0 * batch_count * m * n * k,
        dram_bytes=batch_count * m * n * BYTES_PER_FP32,
        hot_bytes=batch_count * (m * k + k * n) * BYTES_PER_FP32,
        compute_unit=ComputeUnit.FP32,
        compute_efficiency=_FP32_GEMM_EFF * (k / (k + 48.0)),
        shared_mem_per_block=2 * (64 + 64) * 16 * 4,
        regs_per_thread=96,
    )


def standard_mha_launches(
    batch: int,
    seq_len: int,
    num_heads: int,
    hidden: int,
    category: str = "attention",
) -> list[KernelLaunch]:
    """The full kernel chain eager PyTorch MHA launches, in order."""
    rows = batch * seq_len
    three_hidden = 3 * hidden
    head_size = hidden // num_heads
    score_rows = batch * num_heads * seq_len
    return [
        _fp32_elementwise("pt_add_bias", rows, three_hidden, 2.0, category),
        _fp32_elementwise("pt_transpose_q", rows, hidden, 2.0, category),
        _fp32_elementwise("pt_transpose_k", rows, hidden, 2.0, category),
        _fp32_elementwise("pt_transpose_v", rows, hidden, 2.0, category),
        _fp32_elementwise("pt_scale_q", rows, hidden, 2.0, category),
        _fp32_batched_gemm(
            "pt_bmm_qk", batch * num_heads, seq_len, seq_len, head_size,
            category,
        ),
        _fp32_elementwise("pt_add_mask", score_rows, seq_len, 2.0, category),
        _fp32_elementwise("pt_softmax", score_rows, seq_len, 2.0, category),
        _fp32_batched_gemm(
            "pt_bmm_pv", batch * num_heads, seq_len, head_size, seq_len,
            category,
        ),
        _fp32_elementwise("pt_transpose_out", rows, hidden, 2.0, category),
    ]


def standard_mha(
    qkv: np.ndarray,
    qkv_bias: np.ndarray,
    batch: int,
    seq_len: int,
    num_heads: int,
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """PyTorch-eager MHA over a padded ``[B*S, 3H]`` QKV tensor.

    Returns the padded ``[B*S, H]`` attention output (heads merged).
    Numerically identical to every other variant on valid rows; the
    difference is the kernel chain it records — which comes verbatim from
    :func:`standard_mha_launches` so the shape-only estimator stays in
    lock-step with this numeric path.
    """
    rows, three_hidden = qkv.shape
    if rows != batch * seq_len:
        raise ValueError(f"{rows} rows != batch {batch} * seq {seq_len}")
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    if mask.shape != (batch, seq_len):
        raise ValueError(f"mask shape {mask.shape} != ({batch}, {seq_len})")
    hidden = three_hidden // 3
    head_size = hidden // num_heads
    context = resolve_context(ctx)

    for launch in standard_mha_launches(
        batch, seq_len, num_heads, hidden, category
    ):
        context.launch(launch)

    biased = qkv + qkv_bias
    q, k, v = (
        biased[:, i * hidden : (i + 1) * hidden]
        .reshape(batch, seq_len, num_heads, head_size)
        .transpose(0, 2, 1, 3)
        .copy()
        for i in range(3)
    )
    q = q / math.sqrt(head_size)
    scores = q @ np.swapaxes(k, -1, -2)
    scores = scores + (1.0 - mask[:, None, None, :]) * MASK_VALUE
    probs = softmax_reference(scores)
    attn = probs @ v
    return attn.transpose(0, 2, 1, 3).reshape(rows, hidden).copy()
