"""Variable-length FlashAttention — the road not taken in the paper.

The paper dismisses FlashAttention for variable-length inputs because its
published kernel assumed identical shapes (§II-B).  Later releases added
exactly what ByteTransformer's zero-padding algorithm provides: a
``cu_seqlens`` offset vector indexing a *packed* QKV tensor, one CTA per
(sequence, head, row-tile) over valid rows only.  This module implements
that retrospective variant so the two padding-free designs can be
compared on equal footing:

* like the paper's **short** kernel, it never materialises the score
  matrix in DRAM (online softmax in registers/shared memory);
* unlike the short kernel, it scales to any length (the K/V tiles are
  streamed, not held resident), so it needs no short/long dispatch and
  no grouped-GEMM statistics round-trip.

Numerics reuse the tested online-softmax recurrence; the cost descriptor
differs from the paper's grouped FMHA in exactly one structural way: zero
intermediate-matrix traffic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attention.flash import online_softmax_attention
from repro.core.padding import PackedSeqs
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT, BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context

#: query-row tile per CTA
VARLEN_TILE_Q = 64
#: sustained efficiency of the paged decode-attention kernel's math — it
#: is a batch of skinny GEMVs, bandwidth-bound on KV block reads, same
#: calibration point as the packed decode kernel in
#: :mod:`repro.decoder.generation`
DECODE_GEMV_EFFICIENCY = 0.05
#: sustained efficiency of a 2022-era (FlashAttention-1) kernel, kept at
#: the same calibration point as the other hand-written fused kernels
FA1_EFFICIENCY = 0.10
#: sustained efficiency FlashAttention-2-class kernels later reached on
#: these shapes (~110 TFLOPS) — used to show the design's headroom
FA2_EFFICIENCY = 0.35


def flash_varlen_launch(
    seq_lens: np.ndarray,
    num_heads: int,
    head_size: int,
    *,
    category: str = "attention",
    efficiency: float = FA1_EFFICIENCY,
) -> KernelLaunch:
    """Cost descriptor: valid-only FLOPs, packed QKV traffic, no scores."""
    lens = [int(v) for v in seq_lens]
    hidden = num_heads * head_size
    tokens = sum(lens)
    grid = sum(
        num_heads * math.ceil(length / VARLEN_TILE_Q) for length in lens
    )
    flops = sum(
        num_heads * (4.0 * length * length * head_size + 8.0 * length * length)
        for length in lens
    )
    return KernelLaunch(
        name="flash_varlen_mha",
        category=category,
        grid=max(1, grid),
        block_threads=128,
        flops=flops,
        dram_bytes=tokens * hidden * BYTES_PER_ELEMENT
        + (len(lens) + 1) * BYTES_PER_FP32,
        hot_bytes=3.0 * tokens * hidden * BYTES_PER_ELEMENT,
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=efficiency,
        shared_mem_per_block=4 * VARLEN_TILE_Q * (head_size + 8)
        * BYTES_PER_ELEMENT,
        regs_per_thread=128,
    )


def flash_varlen_decode_launch(
    context_lens: np.ndarray,
    num_heads: int,
    head_size: int,
    *,
    block_tokens: int,
    category: str = "decode_attention",
    efficiency: float = DECODE_GEMV_EFFICIENCY,
) -> KernelLaunch:
    """Cost descriptor: batched varlen decode attention over paged KV.

    One query row per sequence, each attending to its own ragged context
    read *through a block table*: K/V traffic is block-granular (every
    touched block streams whole, so each context rounds up to a multiple
    of ``block_tokens`` — the read amplification a paged cache pays for
    O(1) allocation), plus the int32 block-table indirection itself.
    FLOPs count only valid context rows, like every packed kernel here.
    The grid is one CTA per (sequence, head, KV block tile) — the
    ``flash_varlen`` launch shape with the KV axis tiled at the block
    size instead of the query axis.
    """
    if block_tokens <= 0:
        raise ValueError(f"block_tokens must be positive, got {block_tokens}")
    lens = [int(v) for v in context_lens]
    if any(length <= 0 for length in lens):
        raise ValueError(f"context lengths must be positive, got {lens}")
    batch = len(lens)
    hidden = num_heads * head_size
    valid = sum(lens)
    blocks = sum(-(-length // block_tokens) for length in lens)
    grid = num_heads * blocks
    # per valid context row and head: qk dot (2d) + pv accumulate (2d),
    # plus the online-softmax rescale per score
    flops = 4.0 * valid * hidden + 8.0 * valid * num_heads
    cache_bytes = 2.0 * blocks * block_tokens * hidden * BYTES_PER_ELEMENT
    table_bytes = blocks * BYTES_PER_FP32
    io_rows = 2.0 * batch * hidden * BYTES_PER_ELEMENT  # q in, out row out
    return KernelLaunch(
        name="paged_decode_attention",
        category=category,
        grid=max(1, grid),
        block_threads=128,
        flops=flops,
        dram_bytes=cache_bytes + table_bytes + io_rows,
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=efficiency,
        shared_mem_per_block=2 * block_tokens * head_size * BYTES_PER_ELEMENT,
        regs_per_thread=64,
    )


def flash_varlen_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """Packed varlen FlashAttention: ``[T, 3H]`` in, ``[T, H]`` out."""
    tokens, three_hidden = qkv_packed.shape
    if tokens != packing.total_tokens:
        raise ValueError(
            f"{tokens} packed rows != packing total {packing.total_tokens}"
        )
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    scale = 1.0 / math.sqrt(head_size)

    biased = qkv_packed + qkv_bias
    q_all = biased[:, :hidden]
    k_all = biased[:, hidden : 2 * hidden]
    v_all = biased[:, 2 * hidden :]

    out = np.empty((tokens, hidden), dtype=qkv_packed.dtype)
    for b in range(packing.batch):
        rows = packing.rows_of(b)
        for h in range(num_heads):
            cols = slice(h * head_size, (h + 1) * head_size)
            out[rows, cols] = online_softmax_attention(
                q_all[rows, cols], k_all[rows, cols], v_all[rows, cols],
                scale,
            )

    resolve_context(ctx).launch(
        flash_varlen_launch(
            packing.seq_lens, num_heads, head_size, category=category
        )
    )
    return out
