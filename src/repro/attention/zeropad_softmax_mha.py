"""cuBLAS MHA with the zero-padding algorithm applied to softmax.

The ``cuBLAS + zero padding`` variant of Figures 11/12 and the MHA used by
pipeline (c) before fused MHA exists: batched GEMM still requires
identical shapes (so the tensor is *unpadded* into the padded layout on
the way in and re-packed on the way out, both fused with the bias/
transpose footprints), but the softmax between the two GEMMs indexes the
score tensor through the prefix-sum offsets and only touches valid
tokens (§III-D, Figure 2 (c)).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.padding import PackedSeqs
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.batched_gemm import batched_gemm
from repro.kernels.softmax import zeropad_softmax
from repro.kernels.transpose import (
    add_bias_unpack_split_heads_qkv,
    pack_merge_heads,
)


def zeropad_softmax_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Batched-GEMM MHA with padding-free softmax.

    Takes the *packed* ``[T, 3H]`` QKV tensor, returns the *packed*
    ``[T, H]`` attention output.  Unpack→MHA→pack round trip included
    (fused with bias/transpose as the paper does).  ``out`` receives a
    copy of the result when given (the padded intermediates themselves
    stay allocating — their shapes depend on the padded layout).
    """
    tokens, three_hidden = qkv_packed.shape
    if tokens != packing.total_tokens:
        raise ValueError(
            f"{tokens} packed rows != packing total {packing.total_tokens}"
        )
    hidden = three_hidden // 3
    head_size = hidden // num_heads
    context = resolve_context(ctx)

    q, k, v = add_bias_unpack_split_heads_qkv(
        qkv_packed,
        qkv_bias,
        packing.gather_idx,
        packing.batch,
        packing.max_seq_len,
        num_heads,
        ctx=context,
        category=category,
    )

    scores = batched_gemm(
        q / math.sqrt(head_size),
        k,
        transpose_b=True,
        ctx=context,
        name="cublas_bmm_qk",
        category=category,
    )

    probs = zeropad_softmax(
        scores, list(packing.seq_lens), ctx=context, category=category
    )

    attn = batched_gemm(
        probs, v, ctx=context, name="cublas_bmm_pv", category=category
    )
    merged = pack_merge_heads(
        attn, packing.gather_idx, ctx=context, category=category
    )
    if out is None:
        return merged
    np.copyto(out, merged)
    return out
