"""Unpadded fused MHA for long sequences — grouped-GEMM FMHA (§III-E.2).

Three launches, regardless of batch and sequence composition:

1. **grouped GEMM** ``P_i = Q_i K_i^T`` over all ``batch x head`` attention
   units (variable ``len_i x len_i`` shapes — batched GEMM cannot do
   this).  The softmax *partial* reduction (per-row max and exp-sum over
   each 128-wide CTA tile, Figure 8) is fused into the epilogue; the bias
   add and ``1/sqrt(d)`` scale are fused into the operand loads.
2. a **lightweight full-reduction kernel** combining the partial
   statistics (measured at ~2% of fused-MHA time in the paper);
3. **grouped GEMM** ``O_i = softmax(P_i) V_i`` with the element-wise
   ``exp(x - max)/sum`` transform fused into the mainloop right after each
   A-fragment load (Algorithm III.2), so the transform's memory latency
   hides behind tensor-core math.

The intermediate matrix is written once and read once (vs four padded
passes for the unfused chain), and every FLOP is on a valid token.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attention.bucketed import (
    _bucket_qkv,
    _bucket_qkv_into,
    acquire_bucket_scratch,
    build_buckets,
    release_bucket_scratch,
)
from repro.core.engine import is_vectorized
from repro.core.memory_planner import LiveArena
from repro.core.padding import PackedSeqs
from repro.core.parallel import inplace_executor
from repro.gpusim.memory import BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.grouped_gemm import (
    GemmProblem,
    SchedulerKind,
    grouped_gemm_launch,
)
from repro.kernels.reduction import (
    EPILOGUE_TILE_N,
    apply_softmax_transform,
    full_reduction_kernel,
    full_reduction_launch,
    partial_softmax_stats,
    partial_stats_flops,
    partial_stats_store_bytes,
)

#: sustained base efficiency of the FMHA grouped GEMMs (~25 TFLOPS on
#: attention shapes).  Far below plain CUTLASS grouped GEMM: head_size-64
#: reduction depth, the softmax partial reduction in the epilogue and the
#: element-wise transform in the mainloop all steal issue slots from the
#: tensor-core pipeline.  Calibrated so fused-vs-(cuBLAS+zero-padding)
#: lands near the paper's ~1.8x on long sequences.
FMHA_GROUPED_EFFICIENCY = 0.23


def fused_long_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
    out: np.ndarray | None = None,
    scratch: LiveArena | None = None,
) -> np.ndarray:
    """Grouped-GEMM fused MHA on a packed ``[T, 3H]`` QKV tensor.

    Returns the packed ``[T, H]`` attention output.  Works for any
    sequence length; it is the dispatch target for ``max_seq_len`` beyond
    the short kernel's resource limit.  ``out``/``scratch`` route the
    output and the vectorized path's per-bucket intermediates through
    caller storage (see :func:`repro.attention.bucketed.bucketed_sdpa`).
    """
    tokens, three_hidden = qkv_packed.shape
    if tokens != packing.total_tokens:
        raise ValueError(
            f"{tokens} packed rows != packing total {packing.total_tokens}"
        )
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    context = resolve_context(ctx)
    scale = 1.0 / math.sqrt(head_size)

    seq_lens = [int(length) for length in packing.seq_lens]

    # the three cost descriptors depend only on the shape vector; both
    # engines emit them byte-identically, in the same unit order
    units: list[tuple[int, int]] = [
        (b, h) for b in range(packing.batch) for h in range(num_heads)
    ]
    problems = [
        GemmProblem(m=seq_lens[b], n=seq_lens[b], k=head_size)
        for b, _ in units
    ]
    problems_pv = [
        GemmProblem(m=seq_lens[b], n=head_size, k=seq_lens[b])
        for b, _ in units
    ]
    epilogue_bytes = partial_stats_store_bytes(seq_lens, num_heads)
    epilogue_flops = partial_stats_flops(seq_lens, num_heads)

    if is_vectorized():
        # ---- launch 1: grouped GEMM Q K^T with partial-reduction epilogue
        context.launch(
            grouped_gemm_launch(
                problems,
                context.device,
                scheduler=scheduler,
                name="fmha_grouped_qk",
                category=category,
                extra_bytes=epilogue_bytes,
                extra_flops=epilogue_flops,
                base_efficiency=FMHA_GROUPED_EFFICIENCY,
            )
        )
        # ---- launch 2: lightweight full reduction over the partials ----
        # the batched host path reduces each row in one pass, which equals
        # the two-phase partial/full reduction exactly (same math, fp64);
        # the modelled kernel is still the per-unit full reduction
        unit_lens = [seq_lens[b] for b, _ in units]
        context.launch(
            full_reduction_launch(unit_lens, heads=1, category=category)
        )
        out = _bucketed_fused_long(
            qkv_packed, qkv_bias, packing, num_heads, head_size, scale,
            out=out, scratch=scratch,
        )
        # ---- launch 3: grouped GEMM P V with mainloop softmax transform
        # per-unit epilogue sums are integers, so the closed forms below
        # equal the looped float accumulation exactly
        sq_total = sum(length * length for length in seq_lens)
        transform_flops = 2.0 * num_heads * sq_total
        stats_bytes = 2.0 * num_heads * sum(seq_lens) * BYTES_PER_FP32
        context.launch(
            grouped_gemm_launch(
                problems_pv,
                context.device,
                scheduler=scheduler,
                name="fmha_grouped_pv",
                category=category,
                extra_bytes=stats_bytes,
                extra_flops=transform_flops,
                base_efficiency=FMHA_GROUPED_EFFICIENCY,
            )
        )
        return out

    # bias add is fused into the grouped GEMMs' operand loads
    biased = qkv_packed + qkv_bias
    q_all = biased[:, :hidden]
    k_all = biased[:, hidden : 2 * hidden]
    v_all = biased[:, 2 * hidden :]

    # ---- launch 1: grouped GEMM Q K^T with partial-reduction epilogue ----
    scores: list[np.ndarray] = []
    partials: list[tuple[np.ndarray, np.ndarray]] = []
    for b, h in units:
        rows = packing.rows_of(b)
        cols = slice(h * head_size, (h + 1) * head_size)
        p = (q_all[rows, cols] @ k_all[rows, cols].T) * scale
        scores.append(p)
        partials.append(partial_softmax_stats(p))

    context.launch(
        grouped_gemm_launch(
            problems,
            context.device,
            scheduler=scheduler,
            name="fmha_grouped_qk",
            category=category,
            extra_bytes=epilogue_bytes,
            extra_flops=epilogue_flops,
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )

    # ---- launch 2: lightweight full reduction over the partials ----
    stats = full_reduction_kernel(partials, ctx=context, category=category)

    # ---- launch 3: grouped GEMM P V with mainloop softmax transform ----
    if out is None:
        out = np.empty((tokens, hidden), dtype=qkv_packed.dtype)
    transform_flops = 0.0
    stats_bytes = 0.0
    for (b, h), p, (row_max, row_sum) in zip(units, scores, stats):
        rows = packing.rows_of(b)
        cols = slice(h * head_size, (h + 1) * head_size)
        probs = apply_softmax_transform(p, row_max, row_sum)
        out[rows, cols] = probs @ v_all[rows, cols]
        transform_flops += 2.0 * p.size
        stats_bytes += 2.0 * row_max.size * BYTES_PER_FP32

    context.launch(
        grouped_gemm_launch(
            problems_pv,
            context.device,
            scheduler=scheduler,
            name="fmha_grouped_pv",
            category=category,
            extra_bytes=stats_bytes,
            extra_flops=transform_flops,
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    return out


def _bucketed_fused_long(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    head_size: int,
    scale: float,
    *,
    out: np.ndarray | None = None,
    scratch: LiveArena | None = None,
) -> np.ndarray:
    """Batched numerics of the grouped-GEMM FMHA, one bucket at a time.

    The reference path runs its softmax transform and P·V product through
    the float64 partial-statistics arrays; this path mirrors that dtype
    flow (fp32 scores, fp64 transform + P·V) so the two engines agree to
    fp64 rounding, not merely 1e-6.  Buckets run on the current
    :class:`~repro.core.parallel.BucketExecutor`.  ``scratch`` is honoured
    only for float64 inputs: the allocating path *upcasts* fp32 scores
    through the fp64 statistics broadcast, which an in-place transform
    cannot reproduce.  (The partial-stats arrays stay small and
    allocating either way.)
    """
    tokens = packing.total_tokens
    hidden = num_heads * head_size
    if out is None:
        out = np.empty((tokens, hidden), dtype=qkv_packed.dtype)
    buckets = build_buckets(packing)
    bufs = (
        acquire_bucket_scratch(
            scratch, buckets, num_heads, head_size, qkv_packed.dtype
        )
        if scratch is not None and qkv_packed.dtype == np.float64
        else None
    )

    def run_bucket(i: int) -> None:
        bucket = buckets[i]
        bsz, length = bucket.rows.shape
        if bufs is None:
            q, kt, v = _bucket_qkv(
                qkv_packed, qkv_bias, bucket, num_heads, head_size
            )
            scores = np.matmul(q, kt)
        else:
            q, kt, v = _bucket_qkv_into(
                qkv_packed, qkv_bias, bucket, num_heads, head_size, bufs[i]
            )
            scores = np.matmul(q, kt, out=bufs[i]["scores"])
        scores *= scale
        if bucket.valid is not None:
            np.copyto(
                scores,
                np.float32(-1e30),
                where=~bucket.valid[:, None, None, :],
            )
        # batched two-phase reduction (Figure 8): per-128-column-tile
        # partial max / exp-sum in fp32, combined with fp64 rescaling —
        # the same op sequence (and dtypes) as partial_softmax_stats +
        # full_reduce_stats run per unit, so the engines agree bitwise
        blocks = math.ceil(length / EPILOGUE_TILE_N)
        pmax = np.empty(scores.shape[:-1] + (blocks,))
        psum = np.empty_like(pmax)
        for blk in range(blocks):
            chunk = scores[
                ..., blk * EPILOGUE_TILE_N : (blk + 1) * EPILOGUE_TILE_N
            ]
            cmax = chunk.max(axis=-1)
            pmax[..., blk] = cmax
            psum[..., blk] = np.exp(chunk - cmax[..., None]).sum(axis=-1)
        row_max = pmax.max(axis=-1)
        rescale = np.exp(pmax - row_max[..., None])
        row_sum = (psum * rescale).sum(axis=-1)
        if bufs is None:
            probs = np.exp(scores - row_max[..., None]) / row_sum[..., None]
            attn = np.matmul(probs, v.astype(np.float64))
            merged: np.ndarray = attn.transpose(0, 2, 1, 3).reshape(
                bsz * length, hidden
            )
        else:
            # the same transform as the stepwise ufunc chain (scores are
            # already fp64 here, so no upcast is lost) and the same BLAS
            # product — v is fp64, so ``v.astype(np.float64)`` was a copy
            np.subtract(scores, row_max[..., None], out=scores)
            np.exp(scores, out=scores)
            np.divide(scores, row_sum[..., None], out=scores)
            attn = np.matmul(scores, v, out=bufs[i]["ctx"])
            merged = bufs[i]["merged"]
            np.copyto(
                merged.reshape(bsz, length, num_heads, head_size),
                attn.transpose(0, 2, 1, 3),
            )
        if bucket.valid is None:
            out[bucket.rows.ravel()] = merged
        else:
            flat_valid = bucket.valid.ravel()
            out[bucket.rows.ravel()[flat_valid]] = merged[flat_valid]

    inplace_executor().map(run_bucket, range(len(buckets)))
    if bufs is not None:
        release_bucket_scratch(scratch, len(buckets))
    return out
