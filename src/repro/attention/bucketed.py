"""Length-bucketed batched execution of packed attention units.

The looped reference engine walks attention one ``(batch, head)`` unit at
a time; on a host CPU that means thousands of small BLAS calls and
temporary slices per forward.  This module groups sequences whose lengths
fall in the same bucket and runs **one** ``[B', h, s, d]`` batched matmul
+ (masked) softmax per bucket, scattering the results back through the
:class:`~repro.core.padding.PackedSeqs` offsets.

Bucketing strategy
------------------
``bucket_step=1`` (the default) makes every *distinct length* its own
bucket: no intra-bucket padding exists, no masking is needed, and each
2-D sub-problem sees exactly the same operand bytes as the looped
reference — the batched result is bit-identical, not merely close.
``bucket_step>1`` rounds lengths up to the next multiple (TurboTransformers
-style quantized buckets): fewer, larger launches at the price of padded
FLOPs, with invalid key columns masked to ``-1e30`` before the softmax so
padding contributes exactly ``0.0`` probability in fp32.

Host-only transformation: callers keep emitting the exact same
:class:`~repro.gpusim.kernel.KernelLaunch` descriptors; the modelled GPU
cost is untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.memory_planner import BUCKET_SCRATCH_SUFFIXES, LiveArena
from repro.core.padding import PackedSeqs
from repro.core.parallel import inplace_executor

#: default bucket quantization; 1 == one bucket per distinct length
DEFAULT_BUCKET_STEP = 1

#: additive mask for padded key columns inside a quantized bucket.  Large
#: enough that ``exp(x - row_max)`` underflows to exactly 0.0 in fp32
#: (unlike the modelling-side ``MASK_VALUE = -1e4``, which only *damps*).
_BUCKET_MASK_VALUE = np.float32(-1e30)


def group_by_length(seq_lens: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """``[(length, sentence_indices)]`` for each distinct length, ascending."""
    lens = np.asarray(seq_lens)
    order = np.argsort(lens, kind="stable")
    boundaries = np.flatnonzero(np.diff(lens[order])) + 1
    return [
        (int(lens[g[0]]), g) for g in np.split(order, boundaries)
    ]


@dataclass(frozen=True)
class LengthBucket:
    """One batch of attention units sharing a (padded) sequence length.

    Attributes
    ----------
    length:
        Bucket sequence length ``s`` (== every member's length when the
        bucket is exact).
    seq_idx:
        ``[B']`` sentence indices collected into this bucket.
    lengths:
        ``[B']`` actual valid lengths of those sentences.
    rows:
        ``[B', s]`` packed-tensor row of each (sentence, position); padded
        positions are clipped to the sentence's last valid row so gathers
        stay in bounds (their values are masked away).
    valid:
        ``[B', s]`` bool validity, or ``None`` when the bucket is exact
        (no padding, no masking needed).
    """

    length: int
    seq_idx: np.ndarray
    lengths: np.ndarray
    rows: np.ndarray
    valid: np.ndarray | None


def build_buckets(
    packing: PackedSeqs, bucket_step: int = DEFAULT_BUCKET_STEP
) -> list[LengthBucket]:
    """Group the packing's sentences into length buckets."""
    if bucket_step < 1:
        raise ValueError(f"bucket_step must be >= 1, got {bucket_step}")
    lens = packing.seq_lens
    starts = packing.seq_offsets[:-1]
    if bucket_step == 1:
        keys = lens
    else:
        keys = ((lens + bucket_step - 1) // bucket_step) * bucket_step
    buckets = []
    for _, idx in group_by_length(keys):
        length = int(keys[idx[0]])
        blens = lens[idx]
        pos = np.arange(length, dtype=np.int64)
        rows = starts[idx][:, None] + np.minimum(
            pos[None, :], blens[:, None] - 1
        )
        if bool((blens == length).all()):
            valid = None
        else:
            valid = pos[None, :] < blens[:, None]
        buckets.append(
            LengthBucket(
                length=length,
                seq_idx=idx,
                lengths=blens,
                rows=rows,
                valid=valid,
            )
        )
    return buckets


def softmax_lastaxis_inplace(x: np.ndarray) -> np.ndarray:
    """Row softmax over the last axis, in place.

    Performs the exact operation sequence of
    :func:`repro.kernels.softmax.softmax_reference` (max-shift, exp,
    normalize) so results are bit-identical — just without allocating the
    three intermediate tensors.
    """
    row_max = x.max(axis=-1, keepdims=True)
    np.subtract(x, row_max, out=x)
    np.exp(x, out=x)
    denom = x.sum(axis=-1, keepdims=True)
    x /= denom
    return x


def acquire_bucket_scratch(
    scratch: LiveArena,
    buckets: list[LengthBucket],
    num_heads: int,
    head_size: int,
    dtype: np.dtype,
) -> list[dict[str, np.ndarray]]:
    """Pre-acquire every bucket's scratch buffers from the arena.

    All takes happen serially *before* any bucket work runs, so buckets
    may then execute on a worker pool without ever touching the (non
    thread-safe) arena.  Buffer names follow the canonical
    ``mha.{i}.{suffix}`` scheme :func:`~repro.core.memory_planner.plan_live_forward`
    plans with.
    """
    hidden = num_heads * head_size
    bufs = []
    for i, bucket in enumerate(buckets):
        bsz, length = bucket.rows.shape
        p = f"mha.{i}."
        unit = (bsz, num_heads, length, head_size)
        bufs.append(
            {
                "blk": scratch.take(p + "blk", (bsz * length, 3 * hidden), dtype),
                "q": scratch.take(p + "q", unit, dtype),
                "k": scratch.take(p + "k", unit, dtype),
                "v": scratch.take(p + "v", unit, dtype),
                "scores": scratch.take(
                    p + "scores", (bsz, num_heads, length, length), dtype
                ),
                "ctx": scratch.take(p + "ctx", unit, dtype),
                "merged": scratch.take(p + "merged", (bsz * length, hidden), dtype),
            }
        )
    return bufs


def release_bucket_scratch(scratch: LiveArena, num_buckets: int) -> None:
    """Release what :func:`acquire_bucket_scratch` took, in take order."""
    for i in range(num_buckets):
        for suffix in BUCKET_SCRATCH_SUFFIXES:
            scratch.release(f"mha.{i}.{suffix}")


def _bucket_qkv(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    bucket: LengthBucket,
    num_heads: int,
    head_size: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather one bucket's biased Q / K^T / V as batched BLAS operands.

    Returns ``q``/``v`` contiguous ``[B', h, s, d]`` and ``kt`` as the
    ``[B', h, d, s]`` *transposed view* of a contiguous K.  Each 2-D slice
    is then directly BLAS-able, and the transposed K view makes
    ``np.matmul`` issue the same no-trans x trans GEMM as the looped
    reference's ``q @ k.T`` — bit-identical accumulation, not just close.
    """
    bsz, length = bucket.rows.shape
    blk = qkv_packed[bucket.rows.ravel()]
    blk += qkv_bias  # blk is a fresh gather copy: in-place add is safe
    blk5 = blk.reshape(bsz, length, 3, num_heads, head_size)
    q = np.ascontiguousarray(blk5[:, :, 0].transpose(0, 2, 1, 3))
    k = np.ascontiguousarray(blk5[:, :, 1].transpose(0, 2, 1, 3))
    v = np.ascontiguousarray(blk5[:, :, 2].transpose(0, 2, 1, 3))
    return q, k.swapaxes(-1, -2), v


def _bucket_qkv_into(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    bucket: LengthBucket,
    num_heads: int,
    head_size: int,
    bufs: dict[str, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`_bucket_qkv` into pre-acquired scratch, bit for bit.

    ``np.take`` with ``out=`` selects the same rows as fancy indexing,
    the in-place bias add matches ``blk += qkv_bias``, and ``np.copyto``
    into a contiguous buffer performs the same element copy as
    ``np.ascontiguousarray`` — no value changes anywhere.
    """
    bsz, length = bucket.rows.shape
    blk = bufs["blk"]
    np.take(qkv_packed, bucket.rows.ravel(), axis=0, out=blk)
    np.add(blk, qkv_bias, out=blk)
    blk5 = blk.reshape(bsz, length, 3, num_heads, head_size)
    np.copyto(bufs["q"], blk5[:, :, 0].transpose(0, 2, 1, 3))
    np.copyto(bufs["k"], blk5[:, :, 1].transpose(0, 2, 1, 3))
    np.copyto(bufs["v"], blk5[:, :, 2].transpose(0, 2, 1, 3))
    return bufs["q"], bufs["k"].swapaxes(-1, -2), bufs["v"]


def bucketed_sdpa(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    scale: float | None = None,
    bucket_step: int = DEFAULT_BUCKET_STEP,
    out: np.ndarray | None = None,
    scratch: LiveArena | None = None,
) -> np.ndarray:
    """Scaled-dot-product attention over all packed units, bucket by bucket.

    Numerically equivalent to the looped per-``(b, h)`` reference: exact
    buckets (``bucket_step=1``) are bit-identical; quantized buckets agree
    to fp32 rounding.  Returns the packed ``[T, H]`` attention output.

    ``scratch`` routes every large per-bucket intermediate through the
    live arena (bit-identical ``out=`` rewrites of the same ops).
    Buckets run on the current :class:`~repro.core.parallel.BucketExecutor`
    — they share no data and scatter to disjoint output rows, so the
    fan-out is race-free; scratch is pre-acquired serially beforehand.
    """
    tokens, three_hidden = qkv_packed.shape
    hidden = three_hidden // 3
    head_size = hidden // num_heads
    if scale is None:
        scale = 1.0 / math.sqrt(head_size)
    if out is None:
        out = np.empty((tokens, hidden), dtype=qkv_packed.dtype)

    buckets = build_buckets(packing, bucket_step)
    bufs = (
        acquire_bucket_scratch(
            scratch, buckets, num_heads, head_size, qkv_packed.dtype
        )
        if scratch is not None
        else None
    )

    def run_bucket(i: int) -> None:
        bucket = buckets[i]
        bsz, length = bucket.rows.shape
        if bufs is None:
            q, kt, v = _bucket_qkv(
                qkv_packed, qkv_bias, bucket, num_heads, head_size
            )
            scores = np.matmul(q, kt)
        else:
            q, kt, v = _bucket_qkv_into(
                qkv_packed, qkv_bias, bucket, num_heads, head_size, bufs[i]
            )
            scores = np.matmul(q, kt, out=bufs[i]["scores"])
        scores *= scale
        if bucket.valid is not None:
            # only padded *key* columns poison real rows; padded query
            # rows compute garbage that is simply never scattered back
            np.copyto(
                scores,
                _BUCKET_MASK_VALUE,
                where=~bucket.valid[:, None, None, :],
            )
        probs = softmax_lastaxis_inplace(scores)
        if bufs is None:
            attn = np.matmul(probs, v)
            merged: np.ndarray = attn.transpose(0, 2, 1, 3).reshape(
                bsz * length, hidden
            )
        else:
            attn = np.matmul(probs, v, out=bufs[i]["ctx"])
            merged = bufs[i]["merged"]
            np.copyto(
                merged.reshape(bsz, length, num_heads, head_size),
                attn.transpose(0, 2, 1, 3),
            )
        if bucket.valid is None:
            out[bucket.rows.ravel()] = merged
        else:
            flat_valid = bucket.valid.ravel()
            out[bucket.rows.ravel()[flat_valid]] = merged[flat_valid]

    inplace_executor().map(run_bucket, range(len(buckets)))
    if scratch is not None:
        release_bucket_scratch(scratch, len(buckets))
    return out
