"""Unfused FP16 MHA on cuBLAS batched GEMM — the ``cuBLAS`` variant.

The first serious baseline of Figures 11/12: tensor-core batched GEMMs
with the ``1/sqrt(d)`` scale folded into the GEMM alpha, one fused
masked-softmax kernel, and fused bias+transpose kernels around the GEMMs.
Still *padded*: every batch computes at the maximal sequence length.

Kernel chain (5 launches): fused bias+QKV-split, bmm ``Q K^T``, masked
softmax, bmm ``P V``, head merge.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.batched_gemm import batched_gemm
from repro.kernels.softmax import masked_softmax
from repro.kernels.transpose import add_bias_split_heads_qkv, merge_heads


def unfused_cublas_mha(
    qkv: np.ndarray,
    qkv_bias: np.ndarray,
    batch: int,
    seq_len: int,
    num_heads: int,
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """cuBLAS batched-GEMM MHA over a padded ``[B*S, 3H]`` QKV tensor.

    Returns the padded ``[B*S, H]`` attention output.
    """
    rows, three_hidden = qkv.shape
    if rows != batch * seq_len:
        raise ValueError(f"{rows} rows != batch {batch} * seq {seq_len}")
    if mask.shape != (batch, seq_len):
        raise ValueError(f"mask shape {mask.shape} != ({batch}, {seq_len})")
    hidden = three_hidden // 3
    head_size = hidden // num_heads
    context = resolve_context(ctx)

    q, k, v = add_bias_split_heads_qkv(
        qkv, qkv_bias, batch, seq_len, num_heads, ctx=context, category=category
    )

    # scale folded into the GEMM alpha: no extra kernel, no extra cost
    scores = batched_gemm(
        q / math.sqrt(head_size),
        k,
        transpose_b=True,
        ctx=context,
        name="cublas_bmm_qk",
        category=category,
    )

    probs = masked_softmax(
        scores, mask[:, None, None, :], ctx=context, category=category
    )

    attn = batched_gemm(
        probs, v, ctx=context, name="cublas_bmm_pv", category=category
    )
    return merge_heads(attn, ctx=context, category=category)
