"""The attention zoo: every MHA implementation compared in the paper.

All variants are numerically equivalent on valid tokens (validated against
:func:`repro.core.reference.reference_mha`); they differ in kernel
structure, padded work and DRAM traffic — which is the paper's point.
"""

from repro.attention.dispatch import byte_mha
from repro.attention.flash import flash_mha_padded, online_softmax_attention
from repro.attention.flash_varlen import flash_varlen_launch, flash_varlen_mha
from repro.attention.fused_long import fused_long_mha
from repro.attention.fused_short import (
    DEFAULT_SPLIT_SEQ_LEN,
    SHORT_KERNEL_MAX_SEQ,
    fused_short_mha,
    short_kernel_shared_mem,
    supports,
)
from repro.attention.standard import standard_mha
from repro.attention.unfused_cublas import unfused_cublas_mha
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha

__all__ = [
    "byte_mha",
    "flash_mha_padded",
    "online_softmax_attention",
    "flash_varlen_launch",
    "flash_varlen_mha",
    "fused_long_mha",
    "DEFAULT_SPLIT_SEQ_LEN",
    "SHORT_KERNEL_MAX_SEQ",
    "fused_short_mha",
    "short_kernel_shared_mem",
    "supports",
    "standard_mha",
    "unfused_cublas_mha",
    "zeropad_softmax_mha",
]
