"""Unpadded fused MHA for short sequences (Algorithm III.1).

One kernel for the whole attention: each CTA owns a ``split_seq_len``-row
tile of one (batch, head) attention unit, loads its Q tile and the unit's
full K and V into shared memory (bias add fused with the loads), computes
``Q K^T`` with tensor-core WMMA into a shared-memory logits buffer,
performs softmax with the whole row resident in registers, then computes
``P V`` and streams the result to global memory.

Because CTAs are only created for *valid* rows (the grid is derived from
the prefix-sum offsets, not from ``max_seq_len``), no padded work exists
anywhere.  The intermediate matrix never touches DRAM — that is the 6x
over standard PyTorch MHA.

Shared-memory/register pressure bounds the kernel to short sequences
(~384); :mod:`repro.attention.fused_long` takes over beyond that.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attention.bucketed import bucketed_sdpa
from repro.core.engine import is_vectorized
from repro.core.memory_planner import LiveArena
from repro.core.padding import PackedSeqs
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT, BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.softmax import softmax_reference

#: shared-memory skew padding to avoid bank conflicts (halves), from the
#: paper's ``#define SKEW_HALF 8``
SKEW_HALF = 8
#: default CTA row-tile (the paper uses 32 or 48)
DEFAULT_SPLIT_SEQ_LEN = 32
#: largest max_seq_len the short kernel supports (register/smem bound)
SHORT_KERNEL_MAX_SEQ = 384
#: sustained WMMA efficiency of the hand-written kernel.  Calibrated to
#: the paper's measured speedups (fused ~1.3x over cuBLAS+zero-padding on
#: short sequences): ~19 TFLOPS effective — plausible for plain wmma
#: fragments with shared-memory phase barriers and no cp.async pipeline,
#: far below CUTLASS's ~220 TFLOPS on large GEMMs.
_WMMA_EFFICIENCY = 0.06


def short_kernel_shared_mem(max_seq_len: int, head_size: int, split_seq_len: int) -> int:
    """Bytes of shared memory Algorithm III.1 allocates per CTA.

    ``s_kv`` (re-used for K then V), ``s_query`` and ``s_logits``, all in
    halves with the skew padding.
    """
    skewed = head_size + SKEW_HALF
    s_kv = max_seq_len * skewed
    s_query = split_seq_len * skewed
    s_logits = split_seq_len * (max_seq_len + SKEW_HALF)
    return (s_kv + s_query + s_logits) * BYTES_PER_ELEMENT


def short_kernel_block_threads(max_seq_len: int, split_seq_len: int) -> int:
    """Threads per CTA: ``split_seq_len/16 * ceil(max_seq_len/16)`` warps,
    as the paper computes the warp count from the maximal sequence length,
    capped at the hardware's 1024-thread block limit."""
    warps = max(
        4, (split_seq_len // 16) * max(1, math.ceil(max_seq_len / 16))
    )
    return min(1024, warps * 32)


def short_kernel_registers(max_seq_len: int, block_threads: int) -> int:
    """Registers/thread for the softmax's register-resident logits row.

    The logits row is spread over a warp's lanes in halves, so pressure
    grows slowly with the sequence; the kernel is compiled with a launch
    bound that keeps at least one CTA resident, which caps the allocation
    at the register file divided by the block size.
    """
    wanted = 40 + max_seq_len // 16
    launch_bound = max(32, (65536 // block_threads // 8) * 8 - 8)
    return min(255, wanted, launch_bound)


def supports(
    max_seq_len: int,
    head_size: int,
    max_shared_mem_per_block: int = 163 * 1024,
) -> bool:
    """Whether the short kernel's resources fit this problem.

    ``max_shared_mem_per_block`` defaults to the A100's limit; pass the
    target device's limit so dispatch degrades correctly on smaller
    parts (a V100's 96 KiB cuts the supported length roughly in half).
    """
    if max_seq_len > SHORT_KERNEL_MAX_SEQ:
        return False
    smem = short_kernel_shared_mem(
        max_seq_len, head_size, DEFAULT_SPLIT_SEQ_LEN
    )
    return smem <= max_shared_mem_per_block


def fused_short_launch(
    seq_lens: np.ndarray,
    num_heads: int,
    head_size: int,
    *,
    split_seq_len: int = DEFAULT_SPLIT_SEQ_LEN,
    category: str = "attention",
    efficiency: float = _WMMA_EFFICIENCY,
    name: str = "fused_mha_short",
) -> KernelLaunch:
    """Cost descriptor of the short fused-MHA kernel for a length vector.

    ``efficiency`` allows modelling other vendors' fused-MHA kernels (e.g.
    the TensorRT plugin FasterTransformer uses) on the same structure.
    """
    lens = np.asarray(seq_lens, dtype=np.int64)
    max_len = int(lens.max())
    batch = lens.shape[0]
    hidden = num_heads * head_size
    tokens = int(lens.sum())

    # integer-exact reductions: identical to the per-length loop because
    # every addend is an integer representable in float64
    grid = int(num_heads * np.sum(-(-lens // split_seq_len)))
    sq = np.sum(lens * lens, dtype=np.int64)
    flops = float(num_heads) * (4.0 * float(sq) * head_size + 8.0 * float(sq))

    block_threads = short_kernel_block_threads(max_len, split_seq_len)
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=block_threads,
        flops=flops,
        dram_bytes=tokens * hidden * BYTES_PER_ELEMENT
        + 3 * hidden * BYTES_PER_ELEMENT
        + (batch + 1) * BYTES_PER_FP32,
        hot_bytes=3.0 * tokens * hidden * BYTES_PER_ELEMENT,
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=efficiency,
        shared_mem_per_block=short_kernel_shared_mem(
            max_len, head_size, split_seq_len
        ),
        regs_per_thread=short_kernel_registers(max_len, block_threads),
    )


def fused_short_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    split_seq_len: int = DEFAULT_SPLIT_SEQ_LEN,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
    out: np.ndarray | None = None,
    scratch: LiveArena | None = None,
) -> np.ndarray:
    """Single-kernel padding-free MHA for short sequences.

    Takes the packed ``[T, 3H]`` QKV tensor (bias *not* yet added — the
    kernel fuses the bias with its shared-memory loads), returns the
    packed ``[T, H]`` attention output.  ``out`` receives the result when
    given; ``scratch`` routes the vectorized engine's per-bucket
    intermediates through the live arena.
    """
    tokens, three_hidden = qkv_packed.shape
    if tokens != packing.total_tokens:
        raise ValueError(
            f"{tokens} packed rows != packing total {packing.total_tokens}"
        )
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    max_len = int(packing.seq_lens.max())
    if not supports(max_len, head_size):
        raise ValueError(
            f"short fused MHA does not support max_seq_len {max_len} "
            f"(limit {SHORT_KERNEL_MAX_SEQ})"
        )
    if split_seq_len <= 0:
        raise ValueError(f"split_seq_len must be positive, got {split_seq_len}")

    scale = 1.0 / math.sqrt(head_size)
    if is_vectorized():
        out = bucketed_sdpa(
            qkv_packed, qkv_bias, packing, num_heads, scale=scale,
            out=out, scratch=scratch,
        )
    else:
        biased = qkv_packed + qkv_bias
        q_all = biased[:, :hidden]
        k_all = biased[:, hidden : 2 * hidden]
        v_all = biased[:, 2 * hidden :]

        if out is None:
            out = np.empty((tokens, hidden), dtype=qkv_packed.dtype)
        for b in range(packing.batch):
            # the grid covers only valid rows: CTAs are created per
            # {head, valid-seq-tile, batch}, never from max_seq_len
            rows = packing.rows_of(b)
            for h in range(num_heads):
                cols = slice(h * head_size, (h + 1) * head_size)
                q = q_all[rows, cols]
                k = k_all[rows, cols]
                v = v_all[rows, cols]
                logits = (q @ k.T) * scale
                probs = softmax_reference(logits)
                out[rows, cols] = probs @ v

    # DRAM traffic (in the descriptor): packed Q, K, V read once (K/V tile
    # re-reads are served by L2 at these sizes), packed output written
    # once, plus the bias vectors and offsets
    resolve_context(ctx).launch(
        fused_short_launch(
            packing.seq_lens,
            num_heads,
            head_size,
            split_seq_len=split_seq_len,
            category=category,
        )
    )
    return out
