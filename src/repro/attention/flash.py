"""FlashAttention-style fused MHA (fixed-shape), for the related-work
comparison in §II-B.

FlashAttention fuses the whole attention into one kernel using *online
softmax*: K/V are streamed in column tiles while a running row-max and
row-sum rescale the accumulated output, so the quadratic matrix never
exists in DRAM.  Its published kernel assigns a whole attention unit to a
single CTA and **assumes identical input shapes**, so with variable-length
batches it computes at the padded ``max_seq_len`` — the wasted work the
paper's grouped-GEMM FMHA avoids.

The online-softmax recurrence is implemented faithfully (and property-
tested against direct softmax); the cost model reflects a single launch
with padded FLOPs and no intermediate-matrix traffic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT
from repro.gpusim.stream import ExecutionContext, resolve_context

#: K/V column-tile size streamed per mainloop iteration
DEFAULT_TILE_KV = 64
#: sustained tensor-core efficiency, kept comparable to the hand-written
#: fused kernels of this era (~30 TFLOPS effective on BERT-base shapes):
#: with efficiency on par, the *padded* FLOPs are what decide Figure
#: 11/12-style comparisons for variable-length batches
_FLASH_EFFICIENCY = 0.10


def online_softmax_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: float,
    tile_kv: int = DEFAULT_TILE_KV,
) -> np.ndarray:
    """One attention unit via the FlashAttention online-softmax recurrence.

    ``q``: ``[m, d]``, ``k``/``v``: ``[n, d]``.  K/V are consumed in
    ``tile_kv``-row chunks; the accumulator ``acc`` and statistics
    ``(row_max, row_sum)`` are rescaled when a chunk raises the max:

    ``acc <- acc * exp(old_max - new_max) + exp(S_tile - new_max) @ V_tile``
    """
    if q.ndim != 2 or k.ndim != 2 or v.ndim != 2:
        raise ValueError("online softmax expects 2-D q, k, v")
    if k.shape != v.shape or q.shape[1] != k.shape[1]:
        raise ValueError(
            f"shape mismatch: q {q.shape}, k {k.shape}, v {v.shape}"
        )
    m = q.shape[0]
    n = k.shape[0]
    acc = np.zeros((m, v.shape[1]))
    row_max = np.full(m, -np.inf)
    row_sum = np.zeros(m)

    for start in range(0, n, tile_kv):
        k_tile = k[start : start + tile_kv]
        v_tile = v[start : start + tile_kv]
        s = (q @ k_tile.T) * scale
        tile_max = s.max(axis=1)
        new_max = np.maximum(row_max, tile_max)
        correction = np.exp(row_max - new_max)
        p = np.exp(s - new_max[:, None])
        row_sum = row_sum * correction + p.sum(axis=1)
        acc = acc * correction[:, None] + p @ v_tile
        row_max = new_max
    return acc / row_sum[:, None]


def flash_mha_padded(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray,
    *,
    tile_kv: int = DEFAULT_TILE_KV,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """FlashAttention over a padded ``[B, heads, S, head_size]`` batch.

    One launch, one CTA per attention unit; FLOPs are padded (every unit
    computes ``S x S`` scores) even though the mask zeroes invalid keys.
    """
    if q.shape != k.shape or q.shape != v.shape or q.ndim != 4:
        raise ValueError(
            f"expected matching [B, H, S, d] tensors, got {q.shape}"
        )
    batch, heads, seq_len, head_size = q.shape
    if mask.shape != (batch, seq_len):
        raise ValueError(f"mask shape {mask.shape} != ({batch}, {seq_len})")
    scale = 1.0 / math.sqrt(head_size)

    out = np.zeros_like(q)
    for b in range(batch):
        length = int(mask[b].sum())
        for h in range(heads):
            # the kernel computes over the padded length; numerically we
            # restrict keys to the valid prefix (the additive mask would
            # zero the rest) but charge padded FLOPs below
            out[b, h, :length] = online_softmax_attention(
                q[b, h, :length], k[b, h, :length], v[b, h, :length],
                scale, tile_kv,
            )

    flops = 4.0 * batch * heads * seq_len * seq_len * head_size
    qkv_bytes = 3.0 * batch * heads * seq_len * head_size * BYTES_PER_ELEMENT
    resolve_context(ctx).launch(
        KernelLaunch(
            name="flash_mha",
            category=category,
            grid=batch * heads,
            block_threads=128,
            flops=flops,
            dram_bytes=qkv_bytes
            + batch * heads * seq_len * head_size * BYTES_PER_ELEMENT,
            compute_unit=ComputeUnit.TENSOR_FP16,
            compute_efficiency=_FLASH_EFFICIENCY,
            shared_mem_per_block=4 * tile_kv * (head_size + 8)
            * BYTES_PER_ELEMENT,
            regs_per_thread=128,
        )
    )
    return out
