"""Short/long dispatch for ByteTransformer's fused MHA.

The short kernel (Algorithm III.1) is fastest when its shared-memory and
register budget fits the maximal sequence length; beyond that the
grouped-GEMM kernel (§III-E.2) takes over.  This mirrors the "explicit
design for both short and long sequences" the paper concludes with.
"""

from __future__ import annotations

import numpy as np

from repro.attention.fused_long import fused_long_mha
from repro.attention.fused_short import fused_short_mha, supports
from repro.core.padding import PackedSeqs
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.grouped_gemm import SchedulerKind


def byte_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    short_max_seq: int = 384,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> np.ndarray:
    """ByteTransformer's fused MHA: pick the short or long kernel.

    Packed ``[T, 3H]`` in, packed ``[T, H]`` out; bias fused either way.
    """
    hidden = qkv_packed.shape[1] // 3
    head_size = hidden // num_heads
    max_len = int(packing.seq_lens.max())
    context = resolve_context(ctx)
    if max_len <= short_max_seq and supports(
        max_len, head_size, context.device.max_shared_mem_per_block
    ):
        return fused_short_mha(
            qkv_packed, qkv_bias, packing, num_heads, ctx=context,
            category=category,
        )
    return fused_long_mha(
        qkv_packed, qkv_bias, packing, num_heads,
        scheduler=scheduler, ctx=context, category=category,
    )
