"""Short/long dispatch for ByteTransformer's fused MHA.

The short kernel (Algorithm III.1) is fastest when its shared-memory and
register budget fits the maximal sequence length; beyond that the
grouped-GEMM kernel (§III-E.2) takes over.  This mirrors the "explicit
design for both short and long sequences" the paper concludes with.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.attention.fused_long import fused_long_mha
from repro.attention.fused_short import fused_short_mha, supports
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha
from repro.core.memory_planner import LiveArena
from repro.core.padding import PackedSeqs
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.grouped_gemm import SchedulerKind

#: attention implementations the dispatch layer can be forced onto, in
#: decreasing order of aggressiveness — the serving runtime's
#: degradation ladder walks this list when fused kernels keep faulting
MHA_PATHS = ("fused", "zeropad", "cublas")

_forced_path: str | None = None


def forced_mha_path() -> str | None:
    """The active dispatch override, or ``None`` for normal dispatch."""
    return _forced_path


@contextlib.contextmanager
def force_mha_path(path: str | None) -> Iterator[str | None]:
    """Force the MHA dispatch onto ``path`` within the ``with`` block.

    ``path`` is one of :data:`MHA_PATHS` (or ``None`` to restore normal
    short/long dispatch).  Both the numeric :func:`byte_mha` dispatch and
    the cost estimator honour the override — this is the hook the
    serving runtime's degradation ladder uses to step the engine off the
    aggressive fused kernels and back.
    """
    global _forced_path
    if path is not None and path not in MHA_PATHS:
        raise ValueError(f"unknown MHA path {path!r}; pick one of {MHA_PATHS}")
    previous = _forced_path
    _forced_path = path
    try:
        yield path
    finally:
        _forced_path = previous


def byte_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    short_max_seq: int = 384,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
    out: np.ndarray | None = None,
    scratch: LiveArena | None = None,
) -> np.ndarray:
    """ByteTransformer's fused MHA: pick the short or long kernel.

    Packed ``[T, 3H]`` in, packed ``[T, H]`` out; bias fused either way.
    ``out``/``scratch`` are forwarded to whichever path runs (the
    zeropad fallback honours ``out`` only — its padded intermediates are
    layout-dependent and stay allocating).
    """
    hidden = qkv_packed.shape[1] // 3
    head_size = hidden // num_heads
    max_len = int(packing.seq_lens.max())
    context = resolve_context(ctx)
    if _forced_path in ("zeropad", "cublas"):
        # Degraded dispatch: fall back to the conservative batched-GEMM
        # MHA.  The truly unfused cuBLAS kernel only exists in the padded
        # layout, so on the packed call path both degraded rungs land on
        # zeropad_softmax_mha — same function, no fused kernels involved.
        return zeropad_softmax_mha(
            qkv_packed, qkv_bias, packing, num_heads, ctx=context,
            category=category, out=out,
        )
    if max_len <= short_max_seq and supports(
        max_len, head_size, context.device.max_shared_mem_per_block
    ):
        return fused_short_mha(
            qkv_packed, qkv_bias, packing, num_heads, ctx=context,
            category=category, out=out, scratch=scratch,
        )
    return fused_long_mha(
        qkv_packed, qkv_bias, packing, num_heads,
        scheduler=scheduler, ctx=context, category=category,
        out=out, scratch=scratch,
    )
