"""Critical-path attribution over an observed serving replay.

The serving runtime already records everything needed to *explain* a
request's latency: the request-root span (arrival → settle), the
dispatch/attempt/retry span tree with correlation ids, and per-attempt
kernel segments offset onto the global simulated clock.  This module
walks that data and rebuilds, per request, the chain of edges the
request actually waited on:

``queue`` (arrival → first attempt) → ``attempt 0`` → [``backoff`` →
``attempt 1`` → …] → settle

Each attempt edge's modelled µs are attributed to buckets by kernel
category; a faulted attempt's partial time and the retry backoffs are
charged to ``retry-penalty``; an attempt served at a degraded ladder
rung splits into the top-rung baseline (by category, rescaled) plus a
``ladder-penalty`` remainder, using the ``service_top_us`` baseline the
runtime stamps on degraded attempt spans.  The per-edge *slack* is the
idle gap between an edge and its successor — time the request sat
between stages that no bucket claims.

The walk is read-only: it never mutates the telemetry it consumes, so
attribution is bitwise- and price-neutral to the replay it explains.

Invariant (tested): for every request the path's modelled µs sum to at
most the request latency, with equality for requests the runtime fully
decomposed — which includes every served encoder request, retried or
not, since queue + attempts + backoffs tile ``[arrival, settle]``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.gpusim.interconnect import COLLECTIVE_CATEGORY
from repro.telemetry.spans import REQUEST_CATEGORY, Span

#: attribution buckets, in presentation order
BUCKETS = (
    "queue",
    "pack",
    "gemm",
    "attention",
    "other",
    "collective",
    "retry-penalty",
    "ladder-penalty",
)

#: float slop for "the path tiles the latency" comparisons
PATH_EPS_US = 1e-6


def bucket_of_category(category: str) -> str:
    """Map a kernel category onto its attribution bucket.

    ``gemm0``-``gemm3`` and ``decode_gemm`` fold into ``gemm``; fused
    and decode attention into ``attention``; packing/unpacking and the
    prefix-sum metadata kernels into ``pack``; collectives keep their
    own bucket; everything else (layernorm, activation, probes) lands
    in ``other``.
    """
    if category == COLLECTIVE_CATEGORY:
        return "collective"
    if "attention" in category:
        return "attention"
    if category.startswith("gemm") or category == "decode_gemm":
        return "gemm"
    if category == "packing":
        return "pack"
    return "other"


def _merge(into: dict[str, float], frm: dict[str, float]) -> None:
    for bucket, us in frm.items():
        into[bucket] = into.get(bucket, 0.0) + us


@dataclass(frozen=True)
class PathEdge:
    """One stage on a request's path, with its bucket attribution."""

    name: str
    start_us: float
    end_us: float
    #: modelled µs per attribution bucket inside this edge
    buckets: dict[str, float]
    #: replica the edge ran on (``None`` for host-side waits)
    device: int | None = None
    #: idle gap between this edge's end and the next edge's start —
    #: time no bucket claims (0 on a tight path)
    slack_us: float = 0.0

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "device": self.device,
            "slack_us": self.slack_us,
            "buckets": {k: v for k, v in self.buckets.items() if v},
        }


@dataclass(frozen=True)
class RequestPath:
    """One request's latency, decomposed along its critical path."""

    request_id: int
    tenant: str
    outcome: str
    arrival_us: float
    settle_us: float
    retries: int
    batch_id: int | None
    edges: tuple[PathEdge, ...]
    #: whether the runtime recorded enough structure to decompose the
    #: latency (dispatch + attempt spans); ``False`` e.g. for decode
    #: streams, whose rounds are shared across requests
    decomposed: bool = True

    @property
    def latency_us(self) -> float:
        return self.settle_us - self.arrival_us

    @property
    def path_us(self) -> float:
        """Modelled µs on the path (Σ edge durations, slack excluded)."""
        return sum(e.duration_us for e in self.edges)

    @property
    def slack_us(self) -> float:
        return sum(e.slack_us for e in self.edges)

    def bucket_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for edge in self.edges:
            _merge(totals, edge.buckets)
        return totals

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "outcome": self.outcome,
            "arrival_us": self.arrival_us,
            "settle_us": self.settle_us,
            "latency_us": self.latency_us,
            "path_us": self.path_us,
            "slack_us": self.slack_us,
            "retries": self.retries,
            "batch_id": self.batch_id,
            "decomposed": self.decomposed,
            "buckets": {
                k: v for k, v in self.bucket_totals().items() if v
            },
            "edges": [e.to_dict() for e in self.edges],
        }


@dataclass(frozen=True)
class BatchPath:
    """One dispatch/megabatch's service chain and fill accounting."""

    batch_id: int
    name: str
    device: int
    tile: int | None
    start_us: float
    end_us: float
    request_ids: tuple[int, ...]
    #: how long the batch's earliest member waited for the cut
    fill_wait_us: float
    #: service-side bucket totals over every attempt/backoff
    buckets: dict[str, float]
    #: the served member with the largest latency — the member whose
    #: path *is* the batch's critical path (``None`` if nothing served)
    critical_request_id: int | None
    #: per served member: how much longer it could have taken without
    #: moving the batch's critical path (critical latency − its own)
    member_slack_us: dict[int, float] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "batch_id": self.batch_id,
            "name": self.name,
            "device": self.device,
            "tile": self.tile,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "requests": len(self.request_ids),
            "fill_wait_us": self.fill_wait_us,
            "critical_request_id": self.critical_request_id,
            "buckets": {k: v for k, v in self.buckets.items() if v},
            "member_slack_us": dict(self.member_slack_us),
        }


def _segment_pool(telemetry) -> dict[tuple[int, float], deque]:
    """Kernel segments keyed by ``(device, offset)``, FIFO per key, so
    each attempt span pops exactly the segment its attempt recorded."""
    pool: dict[tuple[int, float], deque] = {}
    for seg in getattr(telemetry, "kernel_segments", ()):
        key = (getattr(seg, "device", 0), seg.offset_us)
        pool.setdefault(key, deque()).append(seg)
    return pool


def _attempt_edge(span: Span, segments: dict) -> PathEdge:
    """Bucket one attempt span via its kernel segment."""
    device = int(span.attrs.get("device", 0))
    duration = span.duration_us
    queue = segments.get((device, span.start_us))
    records = queue.popleft().records if queue else None
    attempt_no = span.attrs.get("attempt", 0)
    if span.attrs.get("fault"):
        # a faulted attempt's partial chain is pure retry overhead:
        # nothing it computed reached a response
        return PathEdge(
            name=f"attempt {attempt_no} (fault)",
            start_us=span.start_us,
            end_us=span.end_us,
            buckets={"retry-penalty": duration} if duration else {},
            device=device,
        )
    buckets: dict[str, float] = {}
    if records:
        for record in records:
            bucket = bucket_of_category(record.launch.category)
            buckets[bucket] = buckets.get(bucket, 0.0) + record.time_us
    elif duration:
        buckets["other"] = duration
    top_us = span.attrs.get("service_top_us")
    if top_us is not None and duration > 0:
        # degraded rung: rescale the category split down to the
        # top-rung baseline and charge the remainder to the ladder
        penalty = max(0.0, duration - float(top_us))
        if penalty:
            factor = 1.0 - penalty / duration
            buckets = {k: v * factor for k, v in buckets.items()}
            buckets["ladder-penalty"] = penalty
    return PathEdge(
        name=f"attempt {attempt_no}",
        start_us=span.start_us,
        end_us=span.end_us,
        buckets=buckets,
        device=device,
    )


def _with_slack(edges: list[PathEdge], horizon_us: float) -> tuple:
    """Recreate ``edges`` with slack = gap to the successor (the last
    edge's slack runs to ``horizon_us``)."""
    out = []
    for i, edge in enumerate(edges):
        nxt = edges[i + 1].start_us if i + 1 < len(edges) else horizon_us
        out.append(
            PathEdge(
                name=edge.name,
                start_us=edge.start_us,
                end_us=edge.end_us,
                buckets=edge.buckets,
                device=edge.device,
                slack_us=max(0.0, nxt - edge.end_us),
            )
        )
    return tuple(out)


@dataclass(frozen=True)
class CriticalPathReport:
    """Per-request, per-megabatch, per-device latency attribution."""

    requests: tuple[RequestPath, ...]
    batches: tuple[BatchPath, ...]
    #: service-side bucket totals per executing device
    device_buckets: dict[int, dict[str, float]] = field(
        default_factory=dict
    )

    @classmethod
    def from_telemetry(cls, telemetry) -> "CriticalPathReport":
        """Walk one observed replay's span tree and kernel segments.

        Read-only: the telemetry object is never mutated, so building
        the report between two replays cannot perturb either of them.
        """
        spans = list(telemetry.tracer.spans)
        roots = {
            s.request_id: s
            for s in spans
            if s.category == REQUEST_CATEGORY and s.end_us is not None
        }
        dispatches = [
            s
            for s in spans
            if s.category == "dispatch"
            and not s.is_instant
            and s.end_us is not None
        ]
        children: dict[int, list[Span]] = {}
        for s in spans:
            if s.parent_id is not None:
                children.setdefault(s.parent_id, []).append(s)
        segments = _segment_pool(telemetry)

        paths: dict[int, RequestPath] = {}
        batches: list[BatchPath] = []
        device_buckets: dict[int, dict[str, float]] = {}

        for dispatch in dispatches:
            rids = tuple(dispatch.attrs.get("request_ids", ()))
            shared: list[PathEdge] = []
            for child in sorted(
                children.get(dispatch.span_id, ()),
                key=lambda s: s.start_us,
            ):
                if child.end_us is None:
                    continue
                if child.category == "attempt":
                    shared.append(_attempt_edge(child, segments))
                elif child.category == "retry":
                    shared.append(
                        PathEdge(
                            name=f"backoff {child.attrs.get('attempt', 0)}",
                            start_us=child.start_us,
                            end_us=child.end_us,
                            buckets=(
                                {"retry-penalty": child.duration_us}
                                if child.duration_us
                                else {}
                            ),
                            device=(
                                shared[-1].device if shared else None
                            ),
                        )
                    )
            shared.sort(key=lambda e: e.start_us)

            batch_buckets: dict[str, float] = {}
            for edge in shared:
                _merge(batch_buckets, edge.buckets)
                if edge.device is not None:
                    _merge(
                        device_buckets.setdefault(edge.device, {}),
                        edge.buckets,
                    )

            member_roots = [
                roots[rid] for rid in rids if rid in roots
            ]
            arrivals = [r.start_us for r in member_roots]
            served = [
                r
                for r in member_roots
                if r.attrs.get("outcome") == "served"
            ]
            critical = (
                max(served, key=lambda r: r.end_us - r.start_us)
                if served
                else None
            )
            batches.append(
                BatchPath(
                    batch_id=(
                        dispatch.batch_id
                        if dispatch.batch_id is not None
                        else dispatch.span_id
                    ),
                    name=dispatch.name,
                    device=next(
                        (
                            e.device
                            for e in shared
                            if e.device is not None
                        ),
                        0,
                    ),
                    tile=dispatch.attrs.get("tile"),
                    start_us=dispatch.start_us,
                    end_us=dispatch.end_us,
                    request_ids=rids,
                    fill_wait_us=(
                        dispatch.start_us - min(arrivals)
                        if arrivals
                        else 0.0
                    ),
                    buckets=batch_buckets,
                    critical_request_id=(
                        critical.request_id if critical else None
                    ),
                    member_slack_us=(
                        {
                            r.request_id: (
                                (critical.end_us - critical.start_us)
                                - (r.end_us - r.start_us)
                            )
                            for r in served
                        }
                        if critical
                        else {}
                    ),
                )
            )

            for rid in rids:
                root = roots.get(rid)
                if root is None:
                    continue
                # the request rode every edge that closed before it
                # settled: alive-sets only shrink, so a request that
                # settled at t saw exactly the edges with end ≤ t
                horizon = root.end_us + PATH_EPS_US
                mine = [e for e in shared if e.end_us <= horizon]
                queue_end = (
                    mine[0].start_us if mine else root.end_us
                )
                queue_end = max(root.start_us, queue_end)
                edges = [
                    PathEdge(
                        name="queue",
                        start_us=root.start_us,
                        end_us=queue_end,
                        buckets=(
                            {"queue": queue_end - root.start_us}
                            if queue_end > root.start_us
                            else {}
                        ),
                    )
                ]
                edges.extend(mine)
                paths[rid] = RequestPath(
                    request_id=rid,
                    tenant=str(root.attrs.get("tenant", "")),
                    outcome=str(root.attrs.get("outcome", "")),
                    arrival_us=root.start_us,
                    settle_us=root.end_us,
                    retries=int(root.attrs.get("retries", 0)),
                    batch_id=dispatch.batch_id,
                    edges=_with_slack(edges, root.end_us),
                )

        # requests that never rode a dispatch: gateway rejects, pre-
        # dispatch sheds, and decode streams (whose rounds are shared
        # across requests) — a single undecomposed edge covers them
        for rid, root in roots.items():
            if rid in paths:
                continue
            outcome = str(root.attrs.get("outcome", ""))
            name = "service" if outcome == "served" else "queue"
            bucket = "other" if outcome == "served" else "queue"
            duration = root.end_us - root.start_us
            paths[rid] = RequestPath(
                request_id=rid,
                tenant=str(root.attrs.get("tenant", "")),
                outcome=outcome,
                arrival_us=root.start_us,
                settle_us=root.end_us,
                retries=int(root.attrs.get("retries", 0)),
                batch_id=None,
                edges=(
                    PathEdge(
                        name=name,
                        start_us=root.start_us,
                        end_us=root.end_us,
                        buckets={bucket: duration} if duration else {},
                    ),
                ),
                decomposed=False,
            )

        return cls(
            requests=tuple(
                paths[rid] for rid in sorted(paths)
            ),
            batches=tuple(
                sorted(batches, key=lambda b: b.start_us)
            ),
            device_buckets=device_buckets,
        )

    # ------------------------------------------------------------------

    def request(self, request_id: int) -> RequestPath | None:
        for path in self.requests:
            if path.request_id == request_id:
                return path
        return None

    def served(self) -> list[RequestPath]:
        return [p for p in self.requests if p.outcome == "served"]

    def totals(self) -> dict[str, float]:
        """Bucket totals over every request path (queue included)."""
        totals: dict[str, float] = {}
        for path in self.requests:
            _merge(totals, path.bucket_totals())
        return totals

    def critical_request(self) -> RequestPath | None:
        """The slowest served request — the replay's critical path."""
        served = self.served()
        if not served:
            return None
        return max(served, key=lambda p: p.latency_us)

    def to_json(self) -> dict:
        return {
            "buckets": {
                k: v for k, v in self.totals().items() if v
            },
            "device_buckets": {
                str(dev): {k: v for k, v in b.items() if v}
                for dev, b in sorted(self.device_buckets.items())
            },
            "requests": [p.to_dict() for p in self.requests],
            "batches": [b.to_dict() for b in self.batches],
        }

    def render_text(self, top: int = 5) -> str:
        """Fixed-width report: totals, devices, slowest requests."""
        totals = self.totals()
        grand = sum(totals.values())
        lines = [
            f"== critical path ({len(self.requests)} requests, "
            f"{len(self.batches)} dispatches) ==",
            f"  {'bucket':<16}{'time_us':>12}{'share':>9}",
        ]
        for bucket in BUCKETS:
            us = totals.get(bucket, 0.0)
            if not us:
                continue
            share = us / grand if grand else 0.0
            lines.append(f"  {bucket:<16}{us:>12.1f}{share:>9.1%}")
        if len(self.device_buckets) > 1:
            for dev in sorted(self.device_buckets):
                sub = sum(self.device_buckets[dev].values())
                lines.append(
                    f"  {f'd{dev} service':<16}{sub:>12.1f}"
                    f"{(sub / grand if grand else 0.0):>9.1%}"
                )
        served = sorted(
            self.served(), key=lambda p: p.latency_us, reverse=True
        )
        if served:
            lines.append(
                f"  -- slowest served requests (top {min(top, len(served))})"
                " --"
            )
            lines.append(
                "  "
                + f"{'req':>5}{'latency':>11}{'queue':>9}{'compute':>9}"
                + f"{'retry':>9}{'ladder':>9}{'slack':>9}  critical edge"
            )
            for path in served[:top]:
                buckets = path.bucket_totals()
                compute = sum(
                    buckets.get(b, 0.0)
                    for b in ("pack", "gemm", "attention", "other",
                              "collective")
                )
                longest = max(
                    path.edges, key=lambda e: e.duration_us
                )
                lines.append(
                    "  "
                    + f"{path.request_id:>5}"
                    + f"{path.latency_us:>11.1f}"
                    + f"{buckets.get('queue', 0.0):>9.1f}"
                    + f"{compute:>9.1f}"
                    + f"{buckets.get('retry-penalty', 0.0):>9.1f}"
                    + f"{buckets.get('ladder-penalty', 0.0):>9.1f}"
                    + f"{path.slack_us:>9.1f}"
                    + f"  {longest.name}"
                )
        return "\n".join(lines)
