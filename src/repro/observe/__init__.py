"""Attribution layer over observed replays: where did the microseconds go?

``repro.observe`` is pure post-hoc analysis over the data a replay
already recorded — the :class:`~repro.telemetry.Telemetry` span tree and
kernel segments, a bench result dict, a metrics registry.  Nothing in
this package launches kernels, advances the simulated clock or touches
an RNG stream, so enabling it is bitwise- and price-neutral by
construction (the neutrality regression tests assert exactly that).

Three parts:

* :mod:`~repro.observe.critical_path` — walk the span tree + kernel
  timeline and attribute each request's latency to
  {queue, pack, gemm, attention, other, collective, retry-penalty,
  ladder-penalty} with per-edge slack, per request / megabatch / device;
* :mod:`~repro.observe.tail` — decompose the p99 cohort of a run along
  that path and diff it against the p50 cohort (the ``SloReport`` tail
  section);
* :mod:`~repro.observe.knobs` + :mod:`~repro.observe.history` — the
  regression observatory: policy-knob sensitivity sweeps and the
  append-only bench-history records behind ``repro bench --baseline``.
"""

from repro.observe.critical_path import (
    BUCKETS,
    BatchPath,
    CriticalPathReport,
    PathEdge,
    RequestPath,
    bucket_of_category,
)
from repro.observe.history import (
    GateReport,
    append_record,
    baseline_gate,
    load_history,
    record_from_result,
)
from repro.observe.knobs import (
    KNOB_NAMES,
    KnobConfig,
    KnobSensitivity,
    format_knob_table,
    knob_sweep,
    sweep_knobs,
)
from repro.observe.tail import TailForensics, tail_forensics

__all__ = [
    "BUCKETS",
    "BatchPath",
    "CriticalPathReport",
    "GateReport",
    "KNOB_NAMES",
    "KnobConfig",
    "KnobSensitivity",
    "PathEdge",
    "RequestPath",
    "TailForensics",
    "append_record",
    "baseline_gate",
    "bucket_of_category",
    "format_knob_table",
    "knob_sweep",
    "load_history",
    "record_from_result",
    "sweep_knobs",
    "tail_forensics",
]
