"""Append-only bench history and the noise-aware baseline gate.

``BENCH_wallclock.json`` is a single overwritten snapshot; this module
gives it a trajectory.  Every gated bench run appends a small record to
``benchmarks/history/`` — environment fingerprint, workload shape, the
per-section metrics worth trending, the git sha — and
:func:`baseline_gate` compares a fresh result against the median of the
last *k* same-shape records with a MAD band around it, so one noisy CI
host does not fail the build and a real regression does.

Two metric tiers, mirroring how ``check_invariants`` treats
``amdahl_capped`` sections: **hard** metrics are modelled µs — fully
deterministic for a given seed and shape, so even a small move is a
code change and fails the gate; **soft** metrics are host wall-clock —
machine-dependent, so a move outside a much wider band only warns.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Sequence

#: bump when the record layout changes; the gate only compares records
#: of the same schema
SCHEMA_VERSION = 1

#: config keys that define a comparable workload shape — records are
#: only gated against history with an identical shape fingerprint, so a
#: ``--quick`` run is never judged against full-shape medians
SHAPE_KEYS = (
    "batch",
    "max_seq_len",
    "alpha",
    "layers",
    "preset",
    "serve_requests",
    "devices",
    "shard",
)

#: consistent with a 3-sigma normal band: MAD * 1.4826 estimates sigma
_MAD_SIGMA = 3.0 * 1.4826
#: minimum relative band, so a near-zero MAD (deterministic history)
#: does not flag float-level jitter ...
_HARD_REL_FLOOR = 0.005
#: ... and wall-clock noise between CI hosts does not warn constantly
_SOFT_REL_FLOOR = 0.25


@dataclass(frozen=True)
class MetricSpec:
    """One trended metric: where it lives and which way is worse."""

    path: str
    #: "lower" or "higher" — which direction is *better*
    better: str
    #: hard metrics fail the gate; soft metrics only warn
    hard: bool


#: modelled (deterministic) metrics — regressions fail
_HARD_METRICS = (
    MetricSpec("modelled_us", "lower", True),
    MetricSpec("sections/graph_replay/modelled_us", "lower", True),
    MetricSpec(
        "sections/continuous_serving/speedup_vs_reference", "higher", True
    ),
    MetricSpec(
        "sections/continuous_serving/continuous/us_per_token", "lower", True
    ),
    MetricSpec(
        "sections/continuous_serving/continuous/steady_hit_rate",
        "higher",
        True,
    ),
    MetricSpec(
        "sections/sharded_serving/speedup_vs_reference", "higher", True
    ),
    MetricSpec(
        "sections/sharded_serving/scaling/base_makespan_us", "lower", True
    ),
    MetricSpec(
        "sections/decode_serving/speedup_vs_reference", "higher", True
    ),
    MetricSpec(
        "sections/decode_serving/mixed/us_per_token", "lower", True
    ),
)

#: host wall-clock metrics — machine-dependent, so regressions only warn
_SOFT_METRICS = (
    MetricSpec("wall_us", "lower", False),
    MetricSpec("speedup_vs_reference", "higher", False),
    MetricSpec("sections/forward/speedup_vs_reference", "higher", False),
    MetricSpec("sections/attention/speedup_vs_reference", "higher", False),
    MetricSpec("sections/packing/speedup_vs_reference", "higher", False),
    MetricSpec("sections/graph_replay/speedup_vs_eager", "higher", False),
    MetricSpec(
        "sections/host_parallel/speedup_vs_reference", "higher", False
    ),
)

TRENDED_METRICS: tuple[MetricSpec, ...] = _HARD_METRICS + _SOFT_METRICS


def _lookup(result: dict, path: str):
    node = result
    for part in path.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def record_from_result(
    result: dict,
    *,
    git_sha: str = "",
    recorded_unix: float | None = None,
) -> dict:
    """Distil one ``run_wallclock_bench`` result into a history record.

    Metrics a result does not carry (e.g. ``decode_serving`` before the
    decode bench ran in CI) are simply absent from the record; the gate
    skips them.
    """
    config = result.get("config", {})
    metrics = {}
    for spec in TRENDED_METRICS:
        value = _lookup(result, spec.path)
        if value is not None:
            metrics[spec.path] = float(value)
    return {
        "schema": SCHEMA_VERSION,
        "git_sha": git_sha,
        "recorded_unix": (
            recorded_unix if recorded_unix is not None else time.time()
        ),
        "env": {
            "host": config.get("host", ""),
            "python": config.get("python", ""),
            "numpy": config.get("numpy", ""),
        },
        "shape": {key: config.get(key) for key in SHAPE_KEYS},
        "metrics": metrics,
    }


def load_history(directory: str | Path) -> list[dict]:
    """Load every ``record-*.json`` in ``directory``, oldest first."""
    root = Path(directory)
    if not root.is_dir():
        return []
    records = []
    for path in sorted(root.glob("record-*.json")):
        with path.open() as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            raise ValueError(f"{path} is not a history record object")
        records.append(record)
    return records


def append_record(directory: str | Path, record: dict) -> Path:
    """Write ``record`` as the next ``record-NNNN.json`` (append-only)."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    taken = [
        int(p.stem.split("-", 1)[1])
        for p in root.glob("record-*.json")
        if p.stem.split("-", 1)[1].isdigit()
    ]
    index = max(taken) + 1 if taken else 0
    path = root / f"record-{index:04d}.json"
    with path.open("x") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's comparison against the same-shape history band."""

    path: str
    hard: bool
    current: float
    baseline_median: float
    band: float
    samples: int
    #: "ok", "warn" (soft regression) or "fail" (hard regression)
    status: str

    @property
    def regressed(self) -> bool:
        return self.status != "ok"


@dataclass(frozen=True)
class GateReport:
    """Outcome of gating one bench result against its history."""

    history_dir: str
    baseline_count: int
    verdicts: tuple[MetricVerdict, ...] = ()
    #: set when no same-shape history exists — the gate passes vacuously
    note: str = ""

    @property
    def failures(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "fail")

    @property
    def warnings(self) -> tuple[MetricVerdict, ...]:
        return tuple(v for v in self.verdicts if v.status == "warn")

    @property
    def passed(self) -> bool:
        return not self.failures

    def render_text(self) -> str:
        lines = [
            f"== bench baseline gate ({self.history_dir}, "
            f"{self.baseline_count} same-shape record"
            f"{'s' if self.baseline_count != 1 else ''}) =="
        ]
        if self.note:
            lines.append(f"  {self.note}")
        for v in self.verdicts:
            if v.status == "ok" and not v.hard:
                continue
            marker = {"ok": "ok  ", "warn": "WARN", "fail": "FAIL"}[v.status]
            lines.append(
                f"  {marker} {v.path}: {v.current:.4g} vs median "
                f"{v.baseline_median:.4g} +- {v.band:.4g} "
                f"({v.samples} samples{', soft' if not v.hard else ''})"
            )
        lines.append(
            f"baseline gate: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.failures)} hard regressions, "
            f"{len(self.warnings)} soft warnings)"
        )
        return "\n".join(lines)


def _shape_fingerprint(record: dict) -> tuple:
    shape = record.get("shape", {})
    return tuple((key, shape.get(key)) for key in SHAPE_KEYS)


def baseline_gate(
    record: dict,
    history: Sequence[dict],
    *,
    k: int = 5,
    history_dir: str = "",
) -> GateReport:
    """Gate ``record`` against the last ``k`` same-shape history records.

    Per metric: baseline is the median of the historical values, the
    acceptance band is ``max(3 * 1.4826 * MAD, rel_floor * |median|)``
    (noise-aware but floored, so a perfectly deterministic history does
    not flag float jitter), and only moves in the metric's *worse*
    direction regress.  Hard (modelled) metrics fail; soft (wall-clock)
    metrics warn.  With no same-shape history the gate passes vacuously.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    fingerprint = _shape_fingerprint(record)
    matching = [
        r
        for r in history
        if r.get("schema") == record.get("schema")
        and _shape_fingerprint(r) == fingerprint
    ][-k:]
    if not matching:
        return GateReport(
            history_dir=history_dir,
            baseline_count=0,
            note="no same-shape history; gate passes vacuously",
        )
    current_metrics = record.get("metrics", {})
    verdicts = []
    for spec in TRENDED_METRICS:
        current = current_metrics.get(spec.path)
        values = [
            r["metrics"][spec.path]
            for r in matching
            if spec.path in r.get("metrics", {})
        ]
        if current is None or not values:
            continue
        m = median(values)
        mad = median(abs(v - m) for v in values)
        rel_floor = _HARD_REL_FLOOR if spec.hard else _SOFT_REL_FLOOR
        band = max(_MAD_SIGMA * mad, rel_floor * abs(m))
        if spec.better == "lower":
            regressed = current > m + band
        else:
            regressed = current < m - band
        status = "ok" if not regressed else ("fail" if spec.hard else "warn")
        verdicts.append(
            MetricVerdict(
                path=spec.path,
                hard=spec.hard,
                current=float(current),
                baseline_median=float(m),
                band=float(band),
                samples=len(values),
                status=status,
            )
        )
    return GateReport(
        history_dir=history_dir,
        baseline_count=len(matching),
        verdicts=tuple(verdicts),
    )
