"""Tail forensics: what do the slowest requests spend their time on?

Given a :class:`~repro.observe.critical_path.CriticalPathReport`, split
the served requests into a p50 cohort (latency at or below the median)
and a p99 cohort (latency at or above the p99 quantile), average each
cohort's per-bucket attribution, and diff them — answering questions
like *"p99 requests spend 72% more in queue-wait under the flash
crowd"*.  The result is attached to :class:`~repro.telemetry.SloReport`
(``SloReport.with_tail``) so the SLO verdict and its explanation print
together, per tenant when the trace is multi-tenant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observe.critical_path import BUCKETS, CriticalPathReport


@dataclass(frozen=True)
class CohortStats:
    """Mean per-request attribution of one latency cohort."""

    count: int
    mean_latency_us: float
    #: mean modelled µs per request, per bucket
    buckets: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_latency_us": self.mean_latency_us,
            "buckets": {k: v for k, v in self.buckets.items() if v},
        }


@dataclass(frozen=True)
class TailForensics:
    """p99-vs-p50 cohort diff of one run (optionally one tenant)."""

    tenant: str
    p50: CohortStats
    p99: CohortStats
    p50_latency_us: float
    p99_latency_us: float

    def inflation(self, bucket: str) -> float | None:
        """Relative growth of ``bucket`` from the p50 to the p99 cohort
        (``0.72`` = "p99 requests spend 72% more"); ``None`` when the
        p50 cohort never touched the bucket."""
        base = self.p50.buckets.get(bucket, 0.0)
        if base <= 0.0:
            return None
        return self.p99.buckets.get(bucket, 0.0) / base - 1.0

    def dominant_bucket(self) -> str | None:
        """The bucket with the largest absolute µs growth p50 → p99."""
        best, best_delta = None, 0.0
        for bucket in BUCKETS:
            delta = self.p99.buckets.get(bucket, 0.0) - self.p50.buckets.get(
                bucket, 0.0
            )
            if delta > best_delta:
                best, best_delta = bucket, delta
        return best

    def render_lines(self, indent: str = "  ") -> list[str]:
        lines = [
            f"{indent}tail: p99 cohort ({self.p99.count} req, mean "
            f"{self.p99.mean_latency_us / 1000:.2f} ms) vs p50 cohort "
            f"({self.p50.count} req, mean "
            f"{self.p50.mean_latency_us / 1000:.2f} ms)"
        ]
        for bucket in BUCKETS:
            hi = self.p99.buckets.get(bucket, 0.0)
            lo = self.p50.buckets.get(bucket, 0.0)
            if hi <= 0.0 and lo <= 0.0:
                continue
            growth = self.inflation(bucket)
            verdict = (
                f"{growth:+.0%}" if growth is not None else "new in p99"
            )
            lines.append(
                f"{indent}  {bucket:<16}{lo:>10.1f} -> {hi:>10.1f} us  "
                f"({verdict})"
            )
        dominant = self.dominant_bucket()
        if dominant is not None:
            growth = self.inflation(dominant)
            how = (
                f"{growth:.0%} more" if growth is not None else "all its"
            )
            lines.append(
                f"{indent}  p99 requests spend {how} time in "
                f"{dominant}"
            )
        return lines

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "p50": self.p50.to_dict(),
            "p99": self.p99.to_dict(),
            "dominant_bucket": self.dominant_bucket(),
        }


def _cohort(paths) -> CohortStats:
    buckets: dict[str, float] = {}
    for path in paths:
        for bucket, us in path.bucket_totals().items():
            buckets[bucket] = buckets.get(bucket, 0.0) + us
    n = len(paths)
    return CohortStats(
        count=n,
        mean_latency_us=(
            sum(p.latency_us for p in paths) / n if n else 0.0
        ),
        buckets={k: v / n for k, v in buckets.items()} if n else {},
    )


def tail_forensics(
    report: CriticalPathReport,
    tenant: str = "",
    *,
    lo_pct: float = 50.0,
    hi_pct: float = 99.0,
) -> TailForensics | None:
    """Cohort-diff the served requests of one run (one tenant if given).

    Returns ``None`` when fewer than two requests were served — a
    single request has no tail to diff against.
    """
    served = [
        p
        for p in report.served()
        if not tenant or p.tenant == tenant
    ]
    if len(served) < 2:
        return None
    latencies = np.asarray([p.latency_us for p in served])
    lo_cut = float(np.percentile(latencies, lo_pct))
    hi_cut = float(np.percentile(latencies, hi_pct))
    lo_cohort = [p for p in served if p.latency_us <= lo_cut]
    hi_cohort = [p for p in served if p.latency_us >= hi_cut]
    if not lo_cohort or not hi_cohort:
        return None
    return TailForensics(
        tenant=tenant,
        p50=_cohort(lo_cohort),
        p99=_cohort(hi_cohort),
        p50_latency_us=lo_cut,
        p99_latency_us=hi_cut,
    )
