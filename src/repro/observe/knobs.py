"""Policy-knob sensitivity sweeps: which lever moves the metric most?

:func:`~repro.gpusim.whatif.sensitivity_sweep` answers "is the paper's
conclusion robust to *device* uncertainty?".  This module asks the
operational twin: which *policy* knob — token budget, head timeout,
tile width, decode priority, dp/tp degree — should a tuning pass (or a
human) turn first?  Each knob is swept through the same generic
:func:`~repro.gpusim.whatif.value_sensitivity_sweep` core, re-running a
small seeded serving replay per point, and the knobs are ranked by how
far the metric moves relative to baseline.  Everything here runs on
fresh runtimes over fresh traces: sweeping never mutates the run being
explained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.config import BertConfig
from repro.gpusim.device import A100_SPEC, DeviceSpec
from repro.gpusim.whatif import SensitivityResult, value_sensitivity_sweep
from repro.serving.generation import GenerationRuntime
from repro.serving.runtime import ServingRuntime
from repro.serving.sharded import ShardConfig
from repro.workloads.batching import ContinuousBatcher, MixedContinuousBatcher
from repro.workloads.serving import make_generation_trace, make_trace


@dataclass(frozen=True)
class KnobConfig:
    """Baseline workload + policy the knob sweeps perturb around.

    Defaults mirror the standard bench shape (48 requests at
    ``max_seq_len`` 256, alpha 0.6, token budget 2048); ``layers`` stays
    small because sweep cost scales linearly with it and per-knob
    *ranking* is layer-invariant — every encoder layer prices the same
    kernel chain.
    """

    requests: int = 48
    max_seq_len: int = 256
    alpha: float = 0.6
    layers: int = 4
    seed: int = 0
    token_budget: int = 2048
    timeout_us: float = 2000.0
    decode_priority: float = 0.75
    #: saturated arrivals: the sweeps explain *steady-state* serving,
    #: where the budget cut keeps firing and the head timeout is the
    #: rarely-binding backstop (the regime the continuous-serving bench
    #: section measures), not a trickle where the timeout is the only
    #: batch-size control
    mean_interarrival_us: float = 50.0
    device: DeviceSpec = A100_SPEC

    @classmethod
    def quick(cls) -> "KnobConfig":
        """CI-sized variant (same knobs, much smaller replay)."""
        return cls(requests=12, max_seq_len=64, layers=2, token_budget=512)

    def _config(self) -> BertConfig:
        return BertConfig(num_layers=self.layers)

    def _trace(self):
        return make_trace(
            self.requests,
            self.max_seq_len,
            alpha=self.alpha,
            mean_interarrival_us=self.mean_interarrival_us,
            seed=self.seed,
        )


@dataclass(frozen=True)
class KnobSensitivity:
    """One knob's sweep, tagged with the metric it moved."""

    knob: str
    metric_name: str
    baseline_value: float
    result: SensitivityResult

    @property
    def max_relative_change(self) -> float:
        return self.result.max_relative_change()

    def to_dict(self) -> dict:
        return {
            "knob": self.knob,
            "metric": self.metric_name,
            "baseline_value": self.baseline_value,
            "baseline_metric": self.result.baseline_metric,
            "metric_range": list(self.result.metric_range),
            "max_relative_change": self.max_relative_change,
            "points": [
                {"scale": p.scale, "value": p.value, "metric": p.metric}
                for p in self.result.points
            ],
        }


# -- metric evaluators -------------------------------------------------


def _served_us_per_token(cfg: KnobConfig, batcher: ContinuousBatcher) -> float:
    """Modelled GPU µs per served token of one continuous-batching run."""
    trace = cfg._trace()
    runtime = ServingRuntime(
        cfg._config(), batcher=batcher, device=cfg.device, seed=cfg.seed
    )
    report = runtime.run(trace)
    lens = {r.request_id: r.seq_len for r in trace.requests}
    tokens = sum(lens[o.request_id] for o in report.served)
    if tokens == 0:
        raise ValueError("knob sweep replay served no tokens")
    return report.gpu_busy_us / tokens


def _token_budget_metric(cfg: KnobConfig, value: float) -> float:
    budget = max(int(value), cfg.max_seq_len)  # a request must still fit
    return _served_us_per_token(
        cfg,
        ContinuousBatcher(token_budget=budget, timeout_us=cfg.timeout_us),
    )


def _head_timeout_metric(cfg: KnobConfig, value: float) -> float:
    return _served_us_per_token(
        cfg,
        ContinuousBatcher(
            token_budget=cfg.token_budget, timeout_us=float(value)
        ),
    )


def _tile_width_metric(cfg: KnobConfig, value: float) -> float:
    tile = max(int(value), cfg.max_seq_len)
    return _served_us_per_token(
        cfg,
        ContinuousBatcher(
            token_budget=cfg.token_budget,
            timeout_us=cfg.timeout_us,
            tiles=(tile, 2 * tile),
        ),
    )


def _decode_priority_metric(cfg: KnobConfig, value: float) -> float:
    trace = make_generation_trace(
        max(cfg.requests // 4, 4),
        cfg.max_seq_len,
        decode_tokens=8,
        alpha=cfg.alpha,
        mean_interarrival_us=cfg.mean_interarrival_us,
        seed=cfg.seed,
    )
    runtime = GenerationRuntime(
        cfg._config(),
        batcher=MixedContinuousBatcher(
            token_budget=cfg.token_budget,
            decode_priority=min(float(value), 1.0),
        ),
        device=cfg.device,
        seed=cfg.seed,
        compute_outputs=False,
    )
    return runtime.run(trace).us_per_token


def _sharded_makespan(cfg: KnobConfig, sharding: ShardConfig | None) -> float:
    runtime = ServingRuntime(
        cfg._config(),
        batcher=ContinuousBatcher(
            token_budget=cfg.token_budget, timeout_us=cfg.timeout_us
        ),
        device=cfg.device,
        seed=cfg.seed,
        sharding=sharding,
    )
    return runtime.run(cfg._trace()).makespan_us


def _dp_degree_metric(cfg: KnobConfig, value: float) -> float:
    devices = int(value)
    sharding = ShardConfig(devices=devices, mode="dp") if devices > 1 else None
    return _sharded_makespan(cfg, sharding)


def _tp_degree_metric(cfg: KnobConfig, value: float) -> float:
    devices = int(value)
    sharding = ShardConfig(devices=devices, mode="tp") if devices > 1 else None
    return _sharded_makespan(cfg, sharding)


@dataclass(frozen=True)
class _KnobSpec:
    name: str
    metric_name: str
    integral: bool
    scales: tuple[float, ...]
    base_of: Callable[[KnobConfig], float]
    metric_of: Callable[[KnobConfig, float], float]


_KNOBS: tuple[_KnobSpec, ...] = (
    _KnobSpec(
        name="token_budget",
        metric_name="serving us/token",
        integral=True,
        scales=(0.5, 0.75, 1.0, 1.5, 2.0),
        base_of=lambda cfg: cfg.token_budget,
        metric_of=_token_budget_metric,
    ),
    _KnobSpec(
        name="head_timeout_us",
        metric_name="serving us/token",
        integral=False,
        scales=(0.5, 0.75, 1.0, 1.5, 2.0),
        base_of=lambda cfg: cfg.timeout_us,
        metric_of=_head_timeout_metric,
    ),
    _KnobSpec(
        name="tile_width",
        metric_name="serving us/token",
        integral=True,
        scales=(0.5, 1.0, 2.0),
        base_of=lambda cfg: 2 * cfg.max_seq_len,
        metric_of=_tile_width_metric,
    ),
    _KnobSpec(
        name="decode_priority",
        metric_name="decode us/token",
        integral=False,
        scales=(0.4, 0.7, 1.0, 1.3),
        base_of=lambda cfg: cfg.decode_priority,
        metric_of=_decode_priority_metric,
    ),
    _KnobSpec(
        name="dp_degree",
        metric_name="makespan us",
        integral=True,
        scales=(0.5, 1.0, 2.0),
        base_of=lambda cfg: 2,
        metric_of=_dp_degree_metric,
    ),
    _KnobSpec(
        name="tp_degree",
        metric_name="makespan us",
        integral=True,
        scales=(0.5, 1.0, 2.0),
        base_of=lambda cfg: 2,
        metric_of=_tp_degree_metric,
    ),
)

#: every sweepable policy knob, in declaration order
KNOB_NAMES: tuple[str, ...] = tuple(spec.name for spec in _KNOBS)

_BY_NAME = {spec.name: spec for spec in _KNOBS}


def knob_sweep(
    knob: str,
    config: KnobConfig | None = None,
    *,
    scales: Sequence[float] | None = None,
) -> KnobSensitivity:
    """Sweep one policy knob around ``config`` and report the movement."""
    if knob not in _BY_NAME:
        raise ValueError(
            f"{knob!r} is not a known knob; choose from {KNOB_NAMES}"
        )
    spec = _BY_NAME[knob]
    cfg = config if config is not None else KnobConfig()
    base_value = spec.base_of(cfg)
    result = value_sensitivity_sweep(
        spec.name,
        base_value,
        lambda value: spec.metric_of(cfg, value),
        scales=tuple(scales) if scales is not None else spec.scales,
        integral=spec.integral,
    )
    return KnobSensitivity(
        knob=spec.name,
        metric_name=spec.metric_name,
        baseline_value=float(base_value),
        result=result,
    )


def sweep_knobs(
    config: KnobConfig | None = None,
    *,
    knobs: Sequence[str] | None = None,
) -> tuple[KnobSensitivity, ...]:
    """Sweep the given knobs (default: all) ranked most-sensitive first."""
    names = tuple(knobs) if knobs is not None else KNOB_NAMES
    swept = [knob_sweep(name, config) for name in names]
    swept.sort(key=lambda s: s.max_relative_change, reverse=True)
    return tuple(swept)


def format_knob_table(sensitivities: Sequence[KnobSensitivity]) -> str:
    """Render ranked knob sensitivities as a text table."""
    lines = [
        "== knob sensitivity (ranked) ==",
        f"{'knob':<18}{'baseline':>12}{'metric':>12}"
        f"{'range':>24}{'max change':>12}",
    ]
    for s in sensitivities:
        lo, hi = s.result.metric_range
        lines.append(
            f"{s.knob:<18}{s.baseline_value:>12.1f}"
            f"{s.result.baseline_metric:>12.3f}"
            f"{f'[{lo:.3f}, {hi:.3f}]':>24}"
            f"{s.max_relative_change:>11.1%}"
        )
    if sensitivities:
        top = sensitivities[0]
        lines.append(
            f"most sensitive: {top.knob} "
            f"({top.max_relative_change:.1%} of {top.metric_name})"
        )
    return "\n".join(lines)
