"""Wall-clock benchmark: vectorized engine vs the seed's looped reference.

This harness measures the **host** clock — how long the numpy substrate
takes to execute a forward pass — which is entirely separate from the
**gpusim-modelled** clock (the simulated GPU time a
:class:`~repro.gpusim.stream.ExecutionContext` accumulates from
:class:`~repro.gpusim.kernel.KernelLaunch` descriptors).  A correct
engine change moves only the first clock; this harness asserts the second
stays bit-identical while it measures the first.

Three measurements are reported:

* ``forward`` — the full model forward (the honest end-to-end number).
  On a single-core host the reachable speedup is Amdahl-capped: most of
  the wall time is BLAS GEMMs and the erf-based GELU, identical work in
  both engines, so end-to-end gains are modest by construction.
* ``attention`` — the MHA hot path the engines actually differ on
  (per-unit Python loops vs length-bucketed batched matmuls).
* ``packing`` — zero-padding metadata construction, where the
  :class:`~repro.core.padding.PackingCache` turns repeated serving shapes
  into dictionary hits.
* ``graph_replay`` — launch-graph capture & replay.  The cost-plane
  forward (the estimator chain serving admission prices with) is timed
  eager vs replayed from a :class:`~repro.gpusim.graph.GraphCache`; the
  replayed stream must be bit-identical (records *and* ``start_us``)
  with identical ``modelled_us``.  The numeric steady state (arena +
  graph model vs the plain vectorized model) rides along with a bitwise
  output check.
* ``steady_state_alloc`` — tracemalloc proof that a warm arena-backed
  forward performs **zero** new large (>= 1 MiB) ndarray allocations
  and keeps the traced-peak delta within a budget proportional to the
  arena footprint (transient sub-threshold temporaries scale with the
  token count; floor 1 MiB).
* ``continuous_serving`` — the continuous token-budget batcher vs the
  BucketBatcher baseline on the α-distributed trace: modelled µs per
  served token (cost plane) and the steady-state graph-cache hit rate
  of the tile-quantized megabatch path (second trace run, so warm-up
  captures don't dilute the rate).
* ``decode_serving`` — mixed prefill/decode continuous batching
  (paged KV arena + batched varlen decode attention) vs a naive serial
  prefill-then-decode baseline on the same generation trace: modelled
  µs per generated token, steady-state ``decode``-kind graph hit rate,
  zero KV overflow allocations, and bitwise oracle legs (clean and
  chaos with forced eviction/resume) — all hard ``--check`` gates,
  because every number is modelled-clock deterministic.
* ``host_parallel`` — the Amdahl-cap breaker: one tile-quantized
  megabatch run serially vs under the configured executor (process
  workers fork over contiguous segment chunks and mutate a
  shared-memory arena; thread workers share the buffer directly).
  Parallel outputs must be **bitwise** serial-equal with an identical
  launch stream; the nested ``fast_gelu`` block swaps in the tanh GELU
  and must land within the end-to-end tolerance ``layers *
  FAST_GELU_ATOL`` (per-application error compounds at most linearly
  through the depth) without touching the stream.
  The 1.15× floor is enforced only where it is reachable (>= 2 cores,
  >= 2 workers, ``fork`` available) and warns elsewhere.

Results are written to ``BENCH_wallclock.json``; required schema keys are
``config``, ``wall_us``, ``modelled_us`` and ``speedup_vs_reference``.

Sections may carry a ``floor`` — the minimum acceptable
``speedup_vs_reference`` the ``--check`` gate enforces.  A section
explicitly marked ``amdahl_capped`` or ``wall_clock_floor`` turns a
floor breach into a *warning* instead of a failure (see
:func:`check_warnings`): the full forward on a single-core host is
dominated by BLAS GEMMs and the erf-based GELU, identical work in both
engines, so PR 1 never promised end-to-end wall-clock wins there, and a
wall-clock-measured speedup can sink on a loaded CI box without any
code regression.  Hard floors are reserved for modelled-clock metrics
(the ``continuous_serving`` section), which are deterministic.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.attention.dispatch import byte_mha
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha
from repro.core.config import FAST_GELU, BertConfig, STEPWISE_PRESETS
from repro.core.engine import LOOPED, VECTORIZED, use_engine
from repro.core.estimator import estimate_model, estimate_model_graphed
from repro.core.memory_planner import LiveArena
from repro.core.model import BertEncoderModel
from repro.core.padding import (
    PackedSeqs,
    PackingCache,
    default_packing_cache,
    merge_request_lengths,
    packing_from_mask,
)
from repro.core.parallel import (
    SERIAL_EXECUTOR,
    fork_available,
    make_executor,
    use_executor,
)
from repro.gpusim.graph import GraphCache
from repro.gpusim.profiler import CacheStats
from repro.gpusim.stream import ExecutionContext, NullContext
from repro.kernels.activation import FAST_GELU_ATOL
from repro.kernels.gemm import gemm
from repro.kernels.prefix_sum import mask_prefix_sum
from repro.workloads.generator import make_batch

#: an ndarray allocation at least this big counts as "large" for the
#: steady-state zero-allocation gate
LARGE_ALLOC_BYTES = 1 << 20

#: shape overrides applied by ``--quick`` (CI smoke: < 1 s end to end)
QUICK_OVERRIDES: dict[str, Any] = {
    "batch": 4,
    "max_seq_len": 64,
    "layers": 2,
    "repeats": 1,
    "serve_requests": 12,
}

_PRESETS_BY_LABEL = {p.label: p for p in (*STEPWISE_PRESETS, FAST_GELU)}


def _time_best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6


def _reference_packing_from_mask(mask: np.ndarray) -> PackedSeqs:
    """The seed's per-sentence packing builder, kept verbatim as the
    benchmark reference for the now loop-free ``packing_from_mask``."""
    prefix = mask_prefix_sum(mask, ctx=NullContext())
    batch, max_seq_len = mask.shape
    seq_lens = prefix[:, -1].copy()
    for b in range(batch):
        length = int(seq_lens[b])
        expected = np.arange(1, length + 1)
        if not np.array_equal(prefix[b, :length], expected):
            raise ValueError(f"sentence {b} has interior padding")
    seq_offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(seq_lens, out=seq_offsets[1:])
    gather = np.empty(int(seq_offsets[-1]), dtype=np.int64)
    for b in range(batch):
        length = int(seq_lens[b])
        gather[seq_offsets[b] : seq_offsets[b + 1]] = (
            b * max_seq_len + np.arange(length)
        )
    return PackedSeqs(
        batch=batch,
        max_seq_len=max_seq_len,
        seq_lens=seq_lens,
        seq_offsets=seq_offsets,
        gather_idx=gather,
    )


def _launches_identical(
    records_a: list, records_b: list
) -> bool:
    """Whether two kernel-record streams are byte-identical (descriptor
    equality and modelled-time equality, launch by launch, in order)."""
    if len(records_a) != len(records_b):
        return False
    return all(
        a.launch == b.launch and a.time_us == b.time_us
        for a, b in zip(records_a, records_b)
    )


def _continuous_serving_section(
    config: BertConfig,
    opt: Any,
    max_seq_len: int,
    alpha: float,
    seed: int,
    num_requests: int,
    token_budget: int = 2048,
    telemetry: Any = None,
) -> dict[str, Any]:
    """Continuous token-budget batching vs the BucketBatcher baseline.

    Both policies replay the same α-distributed trace twice on the cost
    plane; the *second* run is the steady state reported (graph caches
    and single-request admission estimates are warm), so the numbers
    reflect a long-running deployment rather than cold-start captures.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) observes only
    the continuous batcher's measured steady-state run — one coherent
    simulated timeline for the exported trace, not three overlapped ones.
    """
    from repro.serving.runtime import ServingRuntime
    from repro.workloads.batching import BucketBatcher, ContinuousBatcher
    from repro.workloads.serving import make_trace

    trace = make_trace(num_requests, max_seq_len, alpha=alpha, seed=seed)
    served_tokens = int(sum(r.seq_len for r in trace.requests))

    def steady_run(batcher: Any, tel: Any = None) -> dict[str, Any]:
        rt = ServingRuntime(config, batcher=batcher, opt=opt, use_graph=True)
        rt.run(trace)  # warm-up: graph captures + admission estimates
        hits0, misses0 = rt.graph_cache.hits, rt.graph_cache.misses
        rt.telemetry = tel  # observe only the measured steady run
        report = rt.run(trace)
        d_hits = rt.graph_cache.hits - hits0
        d_lookups = d_hits + rt.graph_cache.misses - misses0
        return {
            "batcher": batcher.name,
            "gpu_busy_us": report.gpu_busy_us,
            "served_tokens": served_tokens,
            "us_per_token": report.gpu_busy_us / served_tokens,
            "steady_hit_rate": d_hits / max(1, d_lookups),
            "graph_kinds": rt.graph_cache.kind_counts(),
        }

    baseline = steady_run(BucketBatcher())
    continuous = steady_run(
        ContinuousBatcher(token_budget=token_budget), tel=telemetry
    )
    return {
        "trace": {
            "requests": num_requests,
            "alpha": alpha,
            "max_seq_len": max_seq_len,
        },
        "token_budget": token_budget,
        "baseline": baseline,
        "continuous": continuous,
        # lower modelled µs/token than the baseline => speedup > 1
        "speedup_vs_reference": (
            baseline["us_per_token"] / continuous["us_per_token"]
        ),
        "floor": 1.0,
        "hit_rate_floor": 0.9,
    }


def _decode_serving_section(
    config: BertConfig,
    max_seq_len: int,
    seed: int,
    num_requests: int,
    decode_tokens: int,
) -> dict[str, Any]:
    """Mixed prefill/decode serving vs naive serial prefill-then-decode.

    The baseline serves the same generation trace one request at a time:
    a looped prefill round, then one single-request decode round per
    generated token — no cross-request batching anywhere, which is what
    a per-request serving loop without continuous batching would price.
    The mixed side is :class:`~repro.serving.generation.GenerationRuntime`
    (paged KV arena + :class:`MixedContinuousBatcher` + the batched
    varlen decode estimator) on the same trace, warm-run first so the
    reported numbers are the steady state: graph captures done, every
    round replayed from the ``decode``-kind graph keys.

    Both clocks are modelled (deterministic), so the speedup floor and
    the steady-state hit-rate floor are hard ``--check`` gates, as is
    zero KV-arena overflow allocations.  Two small bitwise legs ride
    along on the numeric plane: every *served* output must be
    byte-identical to the per-request oracle, clean and under seeded
    chaos with a KV arena tight enough to force eviction/resume.
    """
    from repro.decoder import estimate_decode_round_looped, max_decode_steps
    from repro.gpusim.device import A100_SPEC
    from repro.serving.faults import FaultSpec
    from repro.serving.generation import (
        GenerationRuntime,
        generate_reference_outputs,
    )
    from repro.workloads.serving import make_generation_trace

    # interarrival far below per-round service time, so requests overlap
    # and the batcher actually mixes prefills with in-flight decodes
    trace = make_generation_trace(
        num_requests,
        max_seq_len,
        decode_tokens=decode_tokens,
        mean_interarrival_us=25.0,
        seed=seed,
    )

    # ---- baseline: serial per-request prefill-then-decode ------------
    base_ctx = ExecutionContext(A100_SPEC)
    empty = np.asarray([], dtype=np.int64)
    base_tokens = 0
    for r in trace.requests:
        steps = max_decode_steps(r.seq_len, r.decode_tokens, max_seq_len)
        estimate_decode_round_looped(
            base_ctx, config, np.asarray([r.seq_len], dtype=np.int64), empty
        )
        for s in range(1, steps):
            estimate_decode_round_looped(
                base_ctx,
                config,
                empty,
                np.asarray([r.seq_len + s], dtype=np.int64),
            )
        base_tokens += steps
    base_us = base_ctx.elapsed_us()

    # ---- mixed continuous batching, steady state ---------------------
    rt = GenerationRuntime(config, seed=seed, compute_outputs=False)
    rt.run(trace)  # warm-up: decode-graph captures + tile captures
    hits0, misses0 = rt.graph_cache.hits, rt.graph_cache.misses
    report = rt.run(trace)
    d_hits = rt.graph_cache.hits - hits0
    d_lookups = d_hits + rt.graph_cache.misses - misses0
    mixed = {
        "gpu_busy_us": report.gpu_busy_us,
        "generated_tokens": report.generated_tokens,
        "rounds": report.rounds,
        "us_per_token": report.us_per_token,
        "steady_hit_rate": d_hits / max(1, d_lookups),
        "graph_kinds": rt.graph_cache.kind_counts(),
        "kv": report.kv_stats,
    }

    # ---- numeric-plane bitwise legs (small shapes) -------------------
    def bitwise_leg(
        faults: FaultSpec, kv_capacity_tokens: int | None
    ) -> dict[str, Any]:
        leg_msl = min(64, max_seq_len)
        leg_trace = make_generation_trace(
            8,
            leg_msl,
            decode_tokens=8,
            mean_interarrival_us=5.0,
            seed=seed + 1,
        )
        leg_rt = GenerationRuntime(
            config,
            seed=seed,
            faults=faults,
            kv_capacity_tokens=kv_capacity_tokens,
        )
        leg_report = leg_rt.run(leg_trace)
        oracle = generate_reference_outputs(leg_rt, leg_trace)
        equal = bool(leg_report.outputs) and all(
            np.array_equal(out, oracle[rid])
            for rid, out in leg_report.outputs.items()
        )
        return {
            "served": len(leg_report.outputs),
            "outputs_bitwise_equal": equal,
            "evictions": int(leg_report.kv_stats["evictions"]),
            "injected_faults": len(leg_report.injected_faults),
        }

    bitwise = {
        "clean": bitwise_leg(FaultSpec(), None),
        # arena below the concurrent working set => forced preemption,
        # plus seeded launch chaos on top of the swap traffic
        "chaos_evict": bitwise_leg(
            FaultSpec(launch_failure_rate=0.05, transient_oom_rate=0.02),
            128,
        ),
    }

    return {
        "trace": {
            "requests": num_requests,
            "max_seq_len": max_seq_len,
            "decode_tokens": decode_tokens,
        },
        "baseline": {
            "modelled_us": base_us,
            "generated_tokens": base_tokens,
            "us_per_token": base_us / base_tokens,
        },
        "mixed": mixed,
        # lower modelled µs per generated token => speedup > 1
        "speedup_vs_reference": (
            (base_us / base_tokens) / mixed["us_per_token"]
        ),
        "floor": 1.5,
        "hit_rate_floor": 0.9,
        "bitwise": bitwise,
    }


def _sharded_serving_section(
    devices: int,
    shard_mode: str,
    seed: int,
) -> dict[str, Any] | None:
    """Multi-device sharded serving: scaling, bitwise oracle, crossover.

    Three legs, all deterministic:

    * ``scaling`` — the Σlen²-routed data-parallel replay on the cost
      plane: one saturating trace replayed on 1, 2, 4, … ``devices``
      devices; the modelled-makespan speedup must clear a hard floor
      (0.8× the device count, 6.5× at 8 devices) because the modelled
      clock is deterministic.  With ``--shard tp|both`` the headline
      leg reruns in that mode instead; tensor parallelism is
      comm-bound by construction, so those modes report speedup
      without a floor.
    * ``bitwise`` — the numeric plane under sharding: every served
      output must be byte-identical to the per-request oracle forward,
      clean and under seeded chaos — including chaos aimed exclusively
      at the interconnect collectives (``allreduce*``), which must
      actually fire.
    * ``crossover`` — the tile × device comm/compute sweep: eager
      tensor-parallel estimates per (tile, tp) cell with the profiler's
      collective share, plus the analytic ring/tree crossover payloads.

    ``None`` when ``devices < 2`` (nothing to shard).
    """
    if devices < 2:
        return None
    from repro.core.estimator import estimate_model
    from repro.core.sharding import ShardSpec
    from repro.gpusim.interconnect import (
        NVLINK3_LINK,
        crossover_bytes,
        make_cluster,
    )
    from repro.gpusim.profiler import ProfileReport
    from repro.serving.runtime import ServingRuntime
    from repro.serving.faults import FaultSpec
    from repro.serving.sharded import ShardConfig
    from repro.workloads.batching import ContinuousBatcher
    from repro.workloads.serving import make_trace

    opt = _PRESETS_BY_LABEL["fused MHA"]

    # ---- scaling leg (cost plane, hard-floored) ----------------------
    # Saturating shape: arrivals outpace one device so the makespan is
    # work-bound, small tiles keep per-device dispatch granularity fine
    # enough that ceil(dispatches / devices) does not cap the speedup.
    scale_config = BertConfig(num_layers=4)
    scale_trace = make_trace(
        384, 128, alpha=0.6, mean_interarrival_us=1.0, seed=3
    )

    def replay(num_devices: int, mode: str) -> Any:
        sharding = None
        if num_devices > 1:
            sharding = ShardConfig(
                devices=num_devices,
                mode=mode,
                tp_size=2 if mode == "both" else None,
            )
        runtime = ServingRuntime(
            scale_config,
            batcher=ContinuousBatcher(token_budget=512, timeout_us=100.0),
            seed=5,
            sharding=sharding,
        )
        return runtime.run(scale_trace)

    base = replay(1, "dp")
    scale_points = sorted({d for d in (2, 4, devices) if d <= devices})
    points = []
    for d in scale_points:
        mode = shard_mode if d == devices else "dp"
        if mode == "both" and d % 2:
            mode = "dp"  # 'both' needs tp_size=2 to divide the devices
        report = replay(d, mode)
        speedup = base.makespan_us / report.makespan_us
        busy = list(report.device_busy_us)
        mean_busy = sum(busy) / len(busy) if busy else 0.0
        point = {
            "devices": d,
            "mode": mode,
            "makespan_us": report.makespan_us,
            "speedup_vs_single_device": speedup,
            "served": len(report.served),
            "device_busy_us": busy,
            "imbalance": (max(busy) / mean_busy) if mean_busy else 1.0,
            "work_steals": report.work_steals,
        }
        if mode == "dp":
            # modelled-clock metric: deterministic, so the floor is hard
            point["floor"] = 6.5 if d >= 8 else 0.8 * d
        else:
            point["comm_bound"] = True
        points.append(point)
    headline = points[-1]
    scaling = {
        "trace": {"requests": 384, "max_seq_len": 128, "alpha": 0.6},
        "base_makespan_us": base.makespan_us,
        "points": points,
    }

    # ---- bitwise oracle legs (numeric plane) -------------------------
    oracle_config = BertConfig(num_heads=2, head_size=16, num_layers=2)
    oracle_trace = make_trace(24, 64, alpha=0.6, seed=seed)
    oracle = BertEncoderModel(oracle_config, _PRESETS_BY_LABEL["fused MHA"],
                              seed=seed)

    def bitwise_leg(
        sharding: ShardConfig, faults: FaultSpec | None = None
    ) -> dict[str, Any]:
        runtime = ServingRuntime(
            oracle_config,
            batcher=ContinuousBatcher(token_budget=256, timeout_us=200.0),
            numerics=BertEncoderModel(
                oracle_config, _PRESETS_BY_LABEL["fused MHA"], seed=seed
            ),
            faults=faults if faults is not None else FaultSpec(),
            seed=seed,
            sharding=sharding,
        )
        report = runtime.run(oracle_trace)
        by_id = {r.request_id: r for r in oracle_trace.requests}
        mismatches = 0
        for rid in sorted(report.outputs):
            request = by_id[rid]
            rng = np.random.default_rng([seed, rid])
            x = rng.standard_normal(
                (1, request.seq_len, oracle_config.hidden_size)
            )
            mask = np.ones((1, request.seq_len))
            if not np.array_equal(
                report.outputs[rid], oracle.forward(x, mask)[0]
            ):
                mismatches += 1
        collective_faults = sum(
            1
            for fault in report.injected_faults
            if fault.kernel.startswith("allreduce")
        )
        return {
            "devices": sharding.devices,
            "mode": sharding.mode,
            "served": len(report.served),
            "checked": len(report.outputs),
            "outputs_bitwise_equal": mismatches == 0,
            "fault_counts": report.fault_counts(),
            "collective_faults_injected": collective_faults,
            "work_steals": report.work_steals,
        }

    bitwise = {
        "dp_clean": bitwise_leg(
            ShardConfig(devices=min(4, devices), mode="dp")
        ),
        "dp_compute_chaos": bitwise_leg(
            ShardConfig(devices=min(4, devices), mode="dp"),
            FaultSpec(launch_failure_rate=0.05, transient_oom_rate=0.05),
        ),
        # chaos aimed only at the interconnect: the retry path must
        # survive collective-kernel failures bit for bit
        "tp_collective_chaos": bitwise_leg(
            ShardConfig(devices=2, mode="tp"),
            FaultSpec(
                launch_failure_rate=0.1, target_prefixes=("allreduce",)
            ),
        ),
    }

    # ---- tile x device comm/compute crossover ------------------------
    sweep_config = BertConfig(num_layers=4)
    rows = []
    for tile in (128, 256, 512, 1024, 2048):
        seq_lens = np.asarray([tile], dtype=np.int64)
        base_ctx = ExecutionContext()
        base_us = estimate_model(base_ctx, sweep_config, opt, seq_lens, tile)
        for d in (2, 4, 8):
            cluster = make_cluster(d)
            ctx = ExecutionContext(cluster.device, cluster=cluster)
            total_us = estimate_model(
                ctx, sweep_config, opt, seq_lens, tile,
                shard=ShardSpec(tp=d, rank=0),
            )
            profile = ProfileReport.from_context(ctx)
            rows.append(
                {
                    "tile": tile,
                    "tp": d,
                    "total_us": total_us,
                    "comm_fraction": profile.comm_fraction,
                    "speedup_vs_single_device": base_us / total_us,
                }
            )
    # smallest tile where the tensor-parallel estimate beats one device
    tp_break_even = {
        str(d): next(
            (
                r["tile"]
                for r in rows
                if r["tp"] == d and r["speedup_vs_single_device"] > 1.0
            ),
            None,
        )
        for d in (2, 4, 8)
    }
    crossover = {
        "rows": rows,
        "tp_break_even_tile": tp_break_even,
        "ring_tree_crossover_bytes": {
            str(d): crossover_bytes(d, NVLINK3_LINK) for d in (2, 4, 8)
        },
    }

    section: dict[str, Any] = {
        "devices": devices,
        "mode": shard_mode,
        "speedup_vs_reference": headline["speedup_vs_single_device"],
        "scaling": scaling,
        "bitwise": bitwise,
        "crossover": crossover,
    }
    if "floor" in headline:
        section["floor"] = headline["floor"]
    else:
        section["comm_bound"] = True
    return section


def _host_parallel_section(
    config: BertConfig,
    opt: Any,
    data: Any,
    max_seq_len: int,
    repeats: int,
    executor: str,
    workers: int,
    seed: int,
) -> dict[str, Any] | None:
    """Megabatch segment fan-out: serial vs the configured executor.

    The whole batch is merged into one tile-quantized megabatch (the
    continuous-serving hot path) and run three ways on the numeric
    plane: serially, under the configured executor (process workers
    mutate a shared-memory arena; thread workers the same buffer
    directly), and under the fast-GELU preset.  The parallel run must
    be **bitwise** equal to the serial one and leave the modelled
    launch chain untouched; fast-GELU must land within the documented
    end-to-end tolerance — one GELU application per layer, each within
    :data:`~repro.kernels.activation.FAST_GELU_ATOL`, compounds at
    most linearly in depth (layernorm renormalises between layers, so
    there is no multiplicative blow-up), hence ``layers * atol`` — with
    an identical launch stream.  ``None`` when the preset keeps padding
    (no packed pipeline to fan out).
    """
    if not opt.remove_padding:
        return None
    cores = os.cpu_count() or 1
    seq_lens = np.asarray(data.mask.sum(axis=1), dtype=np.int64)
    total = int(seq_lens.sum())
    tile = -(-total // 512) * 512
    mega = merge_request_lengths(seq_lens, max_seq_len, tile, cache=None)
    flat = data.x.reshape(-1, config.hidden_size)
    packing = packing_from_mask(data.mask, ctx=NullContext())
    x_tile = np.zeros((tile, config.hidden_size), dtype=flat.dtype)
    x_tile[:total] = flat[packing.gather_idx]

    def tile_model(
        run_opt: Any, shared: bool, ex: Any
    ) -> BertEncoderModel:
        model = BertEncoderModel(
            config, opt=run_opt, seed=seed, arena=LiveArena(shared=shared)
        )
        with use_executor(ex):  # warm up: arena reserve + first forward
            model.forward_packed(x_tile, mega, ctx=NullContext())
        return model

    def stream_of(model: BertEncoderModel, ex: Any) -> tuple:
        ctx = ExecutionContext()
        with use_executor(ex):
            out = model.forward_packed(x_tile, mega, ctx=ctx)
        return out, ctx

    def wall_of(model: BertEncoderModel, ex: Any) -> float:
        with use_executor(ex):
            return _time_best_of(
                lambda: model.forward_packed(
                    x_tile, mega, ctx=NullContext()
                ),
                repeats,
            )

    # the serial reference and the fast-GELU run pin SERIAL_EXECUTOR so
    # an ambient executor (e.g. the CLI's use_workers wrapper) cannot
    # leak fan-out into the baselines
    serial_model = tile_model(opt, False, SERIAL_EXECUTOR)
    serial_out, serial_ctx = stream_of(serial_model, SERIAL_EXECUTOR)
    serial_out = serial_out.copy()
    serial_wall = wall_of(serial_model, SERIAL_EXECUTOR)

    ex = make_executor(executor, workers)
    par_model = tile_model(opt, ex.needs_shared_memory, ex)
    par_wall = wall_of(par_model, ex)
    par_out, par_ctx = stream_of(par_model, ex)
    outputs_bitwise = bool(np.array_equal(par_out, serial_out))
    streams_identical = _launches_identical(
        serial_ctx.records, par_ctx.records
    )
    modelled_equal = serial_ctx.elapsed_us() == par_ctx.elapsed_us()
    ex.shutdown()

    fast_opt = dataclasses.replace(opt, gelu_variant="tanh")
    fast_model = tile_model(fast_opt, False, SERIAL_EXECUTOR)
    fast_out, fast_ctx = stream_of(fast_model, SERIAL_EXECUTOR)
    fast_diff = float(np.max(np.abs(fast_out - serial_out)))
    fast_wall = wall_of(fast_model, SERIAL_EXECUTOR)

    return {
        "cores": cores,
        "executor": ex.kind,
        "workers": ex.workers,
        "fork_available": fork_available(),
        "tile": tile,
        "segments": int(seq_lens.shape[0]),
        "total_tokens": total,
        "wall_us": par_wall,
        "reference_wall_us": serial_wall,
        "speedup_vs_reference": serial_wall / par_wall,
        # the Amdahl-cap breaker needs >= 2 cores and a real fan-out;
        # without them the floor breach warns instead of failing
        "floor": 1.15,
        "amdahl_capped": (
            cores < 2 or ex.workers < 2 or not fork_available()
        ),
        "outputs_bitwise_equal": outputs_bitwise,
        "launch_streams_identical": streams_identical,
        "modelled_us_equal": modelled_equal,
        "fast_gelu": {
            "wall_us": fast_wall,
            "reference_wall_us": serial_wall,
            "speedup_vs_exact": serial_wall / fast_wall,
            "max_abs_diff": fast_diff,
            "atol_per_gelu": FAST_GELU_ATOL,
            "atol": config.num_layers * FAST_GELU_ATOL,
            "within_atol": bool(
                fast_diff <= config.num_layers * FAST_GELU_ATOL
            ),
            "launch_streams_identical": _launches_identical(
                serial_ctx.records, fast_ctx.records
            ),
        },
    }


def run_wallclock_bench(
    *,
    batch: int = 16,
    max_seq_len: int = 256,
    alpha: float = 0.6,
    layers: int = 12,
    preset: str = "fused MHA",
    repeats: int = 3,
    seed: int = 0,
    serve_requests: int = 48,
    executor: str = "process",
    workers: int | None = None,
    devices: int = 8,
    shard: str = "dp",
    telemetry: Any = None,
) -> dict[str, Any]:
    """Benchmark the vectorized engine against the looped reference.

    Returns the result dict (see module docstring for the schema).  Both
    engines run the same weights on the same batch; the harness verifies
    outputs agree within ``atol=1e-6`` and that the emitted kernel-launch
    streams (and therefore every modelled statistic) are identical before
    reporting any timing.
    """
    if preset not in _PRESETS_BY_LABEL:
        raise ValueError(
            f"unknown preset {preset!r}; pick one of "
            f"{sorted(_PRESETS_BY_LABEL)}"
        )
    opt = _PRESETS_BY_LABEL[preset]
    if workers is None:
        workers = os.cpu_count() or 1
    config = BertConfig(num_layers=layers)
    data = make_batch(
        batch, max_seq_len, config.hidden_size, alpha=alpha, seed=seed
    )
    model = BertEncoderModel(config, opt=opt, seed=seed)

    # ---- full forward under both engines: correctness + invariants ----
    outputs: dict[str, np.ndarray] = {}
    records: dict[str, list] = {}
    wall: dict[str, float] = {}
    modelled: dict[str, float] = {}
    for engine in (LOOPED, VECTORIZED):
        with use_engine(engine):
            ctx = ExecutionContext()
            outputs[engine] = model.forward(data.x, data.mask, ctx=ctx)
            records[engine] = ctx.records
            modelled[engine] = ctx.elapsed_us()
            wall[engine] = _time_best_of(
                lambda: model.forward(
                    data.x, data.mask, ctx=ExecutionContext()
                ),
                repeats,
            )

    max_abs_diff = float(
        np.max(
            np.abs(
                outputs[LOOPED].astype(np.float64)
                - outputs[VECTORIZED].astype(np.float64)
            )
        )
    )
    outputs_match = bool(
        np.allclose(outputs[LOOPED], outputs[VECTORIZED], atol=1e-6)
    )
    launches_identical = _launches_identical(
        records[LOOPED], records[VECTORIZED]
    )

    # ---- attention hot path: the code the engines actually differ on ----
    if opt.remove_padding:
        packing = packing_from_mask(data.mask, ctx=NullContext())
        flat = data.x.reshape(-1, config.hidden_size)
        packed = flat[packing.gather_idx]
        layer0 = model.weights.layers[0]
        qkv = gemm(
            packed, layer0.qkv_weight, ctx=NullContext(), name="bench_qkv"
        )
        if opt.fused_mha:
            def run_attention() -> np.ndarray:
                return byte_mha(
                    qkv,
                    layer0.qkv_bias,
                    packing,
                    config.num_heads,
                    short_max_seq=opt.fused_mha_short_max_seq,
                    ctx=NullContext(),
                )
        else:
            def run_attention() -> np.ndarray:
                return zeropad_softmax_mha(
                    qkv,
                    layer0.qkv_bias,
                    packing,
                    config.num_heads,
                    ctx=NullContext(),
                )
        attention_wall: dict[str, float] = {}
        for engine in (LOOPED, VECTORIZED):
            with use_engine(engine):
                run_attention()  # warm up
                attention_wall[engine] = _time_best_of(
                    run_attention, repeats
                )
        attention_section = {
            "wall_us": attention_wall[VECTORIZED],
            "reference_wall_us": attention_wall[LOOPED],
            "speedup_vs_reference": attention_wall[LOOPED]
            / attention_wall[VECTORIZED],
            # host wall-clock measurement: real speedup, but noisy on a
            # loaded CI box, so a floor breach warns instead of failing
            "floor": 1.0,
            "wall_clock_floor": True,
        }
    else:
        attention_section = None

    # ---- launch-graph capture & replay -------------------------------
    # Cost plane: the estimator's launch chain — the exact stream serving
    # admission prices per dispatch — eager vs replayed from the cache.
    seq_lens = np.asarray(data.mask.sum(axis=1), dtype=np.int64)
    graph_repeats = max(repeats, 5)
    graph_cache = GraphCache()

    eager_ctx = ExecutionContext()
    eager_us = _time_best_of(
        lambda: estimate_model(eager_ctx, config, opt, seq_lens, max_seq_len),
        graph_repeats,
    )
    t0 = time.perf_counter()
    estimate_model_graphed(
        ExecutionContext(), config, opt, seq_lens, max_seq_len,
        cache=graph_cache,
    )
    capture_us = (time.perf_counter() - t0) * 1e6
    replay_ctx = ExecutionContext()
    replay_us = _time_best_of(
        lambda: estimate_model_graphed(
            replay_ctx, config, opt, seq_lens, max_seq_len,
            cache=graph_cache,
        ),
        graph_repeats,
    )

    # identity preflight on fresh contexts: eager call vs warm replay
    check_eager = ExecutionContext()
    check_replay = ExecutionContext()
    modelled_eager = estimate_model(
        check_eager, config, opt, seq_lens, max_seq_len
    )
    modelled_replay = estimate_model_graphed(
        check_replay, config, opt, seq_lens, max_seq_len, cache=graph_cache
    )
    graph_modelled_equal = modelled_eager == modelled_replay
    graph_streams_identical = _launches_identical(
        check_eager.records, check_replay.records
    ) and all(
        a.start_us == b.start_us
        for a, b in zip(check_eager.records, check_replay.records)
    )

    # Numeric steady state: arena + graph model vs the plain vectorized
    # engine, bit for bit.
    fast_model = BertEncoderModel(
        config, opt=opt, seed=seed, arena=LiveArena(),
        graph_cache=GraphCache(),
    )
    with use_engine(VECTORIZED):
        for _ in range(2):  # warm up: arena growth + graph capture
            fast_model.forward(data.x, data.mask, ctx=ExecutionContext())
        steady_wall_us = _time_best_of(
            lambda: fast_model.forward(
                data.x, data.mask, ctx=ExecutionContext()
            ),
            repeats,
        )
        steady_ctx = ExecutionContext()
        steady_out = fast_model.forward(data.x, data.mask, ctx=steady_ctx)
        steady_outputs_bitwise = bool(
            np.array_equal(steady_out, outputs[VECTORIZED])
        )
        steady_modelled_equal = steady_ctx.elapsed_us() == modelled[VECTORIZED]

        # ---- steady-state allocation audit (tracemalloc) -------------
        arena_engaged = (
            fast_model.arena is not None
            and opt.remove_padding
            and fast_model.arena.forwards > 0
        )
        tracemalloc.start()
        snap_before = tracemalloc.take_snapshot()
        tracemalloc.reset_peak()
        traced_base, _ = tracemalloc.get_traced_memory()
        fast_model.forward(data.x, data.mask, ctx=ExecutionContext())
        _, traced_peak = tracemalloc.get_traced_memory()
        snap_after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        large_allocation_count = sum(
            1
            for stat in snap_after.compare_to(snap_before, "lineno")
            if stat.size_diff >= LARGE_ALLOC_BYTES
        )
        peak_delta_bytes = traced_peak - traced_base

    graph_replay_section = {
        "eager_us": eager_us,
        "capture_us": capture_us,
        "replay_us": replay_us,
        "speedup_vs_eager": eager_us / replay_us,
        "modelled_us": modelled_replay,
        "steady_state_forward": {
            "wall_us": steady_wall_us,
            "reference_wall_us": wall[VECTORIZED],
            "speedup_vs_vectorized": wall[VECTORIZED] / steady_wall_us,
            "outputs_bitwise_equal": steady_outputs_bitwise,
        },
    }
    arena_footprint = (
        fast_model.arena.footprint_bytes if fast_model.arena else 0
    )
    # transient sub-threshold temporaries (the exempt two-phase softmax
    # reduction, per-bucket row stats) scale with the token count, so the
    # traced-peak budget is proportional to the arena, floored at 1 MiB
    peak_budget_bytes = max(LARGE_ALLOC_BYTES, arena_footprint // 8)
    steady_state_alloc_section = {
        "arena_engaged": arena_engaged,
        "large_allocation_count": large_allocation_count,
        "large_alloc_threshold_bytes": LARGE_ALLOC_BYTES,
        "peak_delta_bytes": peak_delta_bytes,
        "peak_budget_bytes": peak_budget_bytes,
        "arena_footprint_bytes": arena_footprint,
        "arena_overflow_allocs": (
            fast_model.arena.overflow_allocs if fast_model.arena else 0
        ),
    }

    # ---- packing metadata: seed loop vs loop-free build vs cache hit ----
    # The reference runs under the looped engine so its prefix sum is the
    # seed's warp-scan emulation, exactly as shipped.
    packing_repeats = max(repeats, 10)
    with use_engine(LOOPED):
        packing_loop_us = _time_best_of(
            lambda: _reference_packing_from_mask(data.mask), packing_repeats
        )
    with use_engine(VECTORIZED):
        packing_cold_us = _time_best_of(
            lambda: packing_from_mask(
                data.mask, ctx=NullContext(), cache=None
            ),
            packing_repeats,
        )
        warm_cache = PackingCache()
        packing_from_mask(data.mask, ctx=NullContext(), cache=warm_cache)
        packing_warm_us = _time_best_of(
            lambda: packing_from_mask(
                data.mask, ctx=NullContext(), cache=warm_cache
            ),
            packing_repeats,
        )

    # ---- host-path parallelism: the megabatch segment fan-out --------
    host_parallel_section = _host_parallel_section(
        config, opt, data, max_seq_len, repeats, executor, workers, seed
    )

    # ---- multi-device sharded serving --------------------------------
    sharded_serving_section = _sharded_serving_section(devices, shard, seed)

    result: dict[str, Any] = {
        "config": {
            "batch": batch,
            "max_seq_len": max_seq_len,
            "alpha": alpha,
            "layers": layers,
            "preset": preset,
            "repeats": repeats,
            "seed": seed,
            "serve_requests": serve_requests,
            "executor": executor,
            "workers": workers,
            "devices": devices,
            "shard": shard,
            "hidden_size": config.hidden_size,
            "num_heads": config.num_heads,
            "total_tokens": int(np.sum(data.mask)),
            "host": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        # host wall time of the vectorized (default) engine
        "wall_us": wall[VECTORIZED],
        # gpusim-modelled time: identical for both engines by construction
        "modelled_us": modelled[VECTORIZED],
        "reference_wall_us": wall[LOOPED],
        "speedup_vs_reference": wall[LOOPED] / wall[VECTORIZED],
        "sections": {
            "forward": {
                "wall_us": wall[VECTORIZED],
                "reference_wall_us": wall[LOOPED],
                "speedup_vs_reference": wall[LOOPED] / wall[VECTORIZED],
                # single-core end-to-end is BLAS/GELU-bound: a floor
                # breach here warns instead of failing --check
                "floor": 1.0,
                "amdahl_capped": True,
            },
            **(
                {"attention": attention_section}
                if attention_section is not None
                else {}
            ),
            "packing": {
                "reference_loop_us": packing_loop_us,
                "vectorized_build_us": packing_cold_us,
                "cache_hit_us": packing_warm_us,
                "speedup_vs_reference": packing_loop_us / packing_cold_us,
                "speedup_cache_hit": packing_loop_us / packing_warm_us,
            },
            "graph_replay": graph_replay_section,
            "steady_state_alloc": steady_state_alloc_section,
            **(
                {"host_parallel": host_parallel_section}
                if host_parallel_section is not None
                else {}
            ),
            **(
                {"sharded_serving": sharded_serving_section}
                if sharded_serving_section is not None
                else {}
            ),
            "continuous_serving": _continuous_serving_section(
                config,
                opt,
                max_seq_len,
                alpha,
                seed,
                serve_requests,
                telemetry=telemetry,
            ),
            "decode_serving": _decode_serving_section(
                config,
                max_seq_len,
                seed,
                serve_requests,
                decode_tokens=max(16, max_seq_len // 8),
            ),
        },
        "invariants": {
            "outputs_match_atol_1e-6": outputs_match,
            "max_abs_diff": max_abs_diff,
            "launch_streams_identical": launches_identical,
            "kernel_count": len(records[VECTORIZED]),
            "modelled_us_looped": modelled[LOOPED],
            "modelled_us_vectorized": modelled[VECTORIZED],
            "graph_modelled_us_equal": graph_modelled_equal,
            "graph_streams_identical": graph_streams_identical,
            "steady_outputs_bitwise_equal": steady_outputs_bitwise,
            "steady_modelled_us_equal": steady_modelled_equal,
            "steady_large_allocation_count": large_allocation_count,
            "steady_arena_engaged": arena_engaged,
        },
        "cache_stats": [
            dataclasses.asdict(stats)
            for stats in (
                CacheStats.from_cache("packing", default_packing_cache()),
                CacheStats.from_cache("estimator_graphs", graph_cache),
                CacheStats.from_cache(
                    "model_graphs", fast_model.graph_cache
                ),
            )
        ],
        "notes": (
            "wall_us is host (numpy) execution time of the vectorized "
            "engine; modelled_us is simulated GPU time and is identical "
            "under both engines. End-to-end speedup on this single-core "
            "host is Amdahl-limited: BLAS GEMMs and the erf-based GELU "
            "dominate the forward and are identical work in both engines; "
            "the engine's wins concentrate in the attention and packing "
            "sections."
        ),
    }
    return result


def write_bench_json(result: dict[str, Any], path: str | Path) -> Path:
    """Write a bench result dict as pretty-printed JSON."""
    out = Path(path)
    out.write_text(json.dumps(result, indent=2, sort_keys=False) + "\n")
    return out


def format_summary(result: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench result."""
    cfg = result["config"]
    lines = [
        f"wall-clock bench: {cfg['preset']} preset, "
        f"B={cfg['batch']} S={cfg['max_seq_len']} "
        f"alpha={cfg['alpha']} layers={cfg['layers']}",
        f"  forward   : {result['wall_us'] / 1e3:9.2f} ms vectorized "
        f"vs {result['reference_wall_us'] / 1e3:9.2f} ms looped "
        f"({result['speedup_vs_reference']:.2f}x)",
    ]
    attention = result["sections"].get("attention")
    if attention is not None:
        lines.append(
            f"  attention : {attention['wall_us'] / 1e3:9.2f} ms vectorized "
            f"vs {attention['reference_wall_us'] / 1e3:9.2f} ms looped "
            f"({attention['speedup_vs_reference']:.2f}x)"
        )
    packing = result["sections"]["packing"]
    lines.append(
        f"  packing   : {packing['vectorized_build_us']:9.1f} us loop-free "
        f"build vs {packing['reference_loop_us']:9.1f} us seed loop "
        f"({packing['speedup_vs_reference']:.1f}x); cache hit "
        f"{packing['cache_hit_us']:.1f} us "
        f"({packing['speedup_cache_hit']:.1f}x)"
    )
    graph = result["sections"].get("graph_replay")
    if graph is not None:
        steady = graph["steady_state_forward"]
        lines.append(
            f"  graph     : {graph['replay_us']:9.1f} us replay vs "
            f"{graph['eager_us']:9.1f} us eager pricing "
            f"({graph['speedup_vs_eager']:.2f}x); capture "
            f"{graph['capture_us']:.0f} us; numeric steady state "
            f"{steady['speedup_vs_vectorized']:.2f}x"
        )
    alloc = result["sections"].get("steady_state_alloc")
    if alloc is not None:
        lines.append(
            f"  steady mem: {alloc['large_allocation_count']} large allocs "
            f"(>= {alloc['large_alloc_threshold_bytes'] >> 20} MiB), peak "
            f"delta {alloc['peak_delta_bytes'] / 1024:.0f} KiB, arena "
            f"{alloc['arena_footprint_bytes'] / (1 << 20):.1f} MiB "
            f"({alloc['arena_overflow_allocs']} overflow allocs)"
        )
    hp = result["sections"].get("host_parallel")
    if hp is not None:
        fg = hp["fast_gelu"]
        lines.append(
            f"  host-par  : {hp['wall_us'] / 1e3:9.2f} ms "
            f"{hp['executor']}({hp['workers']}) vs "
            f"{hp['reference_wall_us'] / 1e3:9.2f} ms serial "
            f"({hp['speedup_vs_reference']:.2f}x, {hp['cores']} cores); "
            f"fast-gelu {fg['speedup_vs_exact']:.2f}x, "
            f"|diff| {fg['max_abs_diff']:.1e} <= {fg['atol']:g}"
        )
    sharded = result["sections"].get("sharded_serving")
    if sharded is not None:
        head = sharded["scaling"]["points"][-1]
        tp_leg = sharded["bitwise"]["tp_collective_chaos"]
        bitwise_ok = all(
            leg["outputs_bitwise_equal"]
            for leg in sharded["bitwise"].values()
        )
        lines.append(
            f"  sharded   : {head['mode']} x{head['devices']} modelled "
            f"speedup {head['speedup_vs_single_device']:.2f}x"
            + (
                f" (floor {head['floor']:g})"
                if "floor" in head
                else " (comm-bound)"
            )
            + f"; imbalance {head['imbalance']:.3f}, "
            f"steals {head['work_steals']}; oracle bitwise={bitwise_ok} "
            f"({tp_leg['collective_faults_injected']} collective faults)"
        )
    serving = result["sections"].get("continuous_serving")
    if serving is not None:
        cont = serving["continuous"]
        base = serving["baseline"]
        lines.append(
            f"  serving   : {cont['us_per_token']:9.3f} modelled us/token "
            f"continuous vs {base['us_per_token']:9.3f} bucket "
            f"({serving['speedup_vs_reference']:.2f}x); steady graph hit "
            f"rate {cont['steady_hit_rate']:.3f} "
            f"(tile budget {serving['token_budget']})"
        )
    decode = result["sections"].get("decode_serving")
    if decode is not None:
        mixed = decode["mixed"]
        base = decode["baseline"]
        bitwise_ok = all(
            leg["outputs_bitwise_equal"]
            for leg in decode["bitwise"].values()
        )
        lines.append(
            f"  decode    : {mixed['us_per_token']:9.3f} modelled us/token "
            f"mixed vs {base['us_per_token']:9.3f} serial "
            f"({decode['speedup_vs_reference']:.2f}x); steady graph hit "
            f"rate {mixed['steady_hit_rate']:.3f}; oracle "
            f"bitwise={bitwise_ok} "
            f"({decode['bitwise']['chaos_evict']['evictions']} evictions)"
        )
    inv = result["invariants"]
    lines.append(
        f"  invariants: outputs_match={inv['outputs_match_atol_1e-6']} "
        f"(max |diff| {inv['max_abs_diff']:.2e}), "
        f"launch_streams_identical={inv['launch_streams_identical']}, "
        f"graph_streams_identical={inv.get('graph_streams_identical')}, "
        f"steady_outputs_bitwise={inv.get('steady_outputs_bitwise_equal')}, "
        f"modelled {result['modelled_us'] / 1e3:.1f} ms"
    )
    return "\n".join(lines)


def check_invariants(result: dict[str, Any]) -> list[str]:
    """Regression gate over a bench result; returns failure messages.

    An empty list means the run is clean: outputs equivalent, launch
    streams identical eager vs vectorized *and* eager vs graph-replayed,
    and (when the arena engaged) a zero large-allocation steady state
    within the traced-peak budget.
    """
    inv = result["invariants"]
    failures = []
    for name, section in result["sections"].items():
        floor = section.get("floor") if isinstance(section, dict) else None
        if (
            floor is None
            or section.get("amdahl_capped")
            or section.get("wall_clock_floor")
        ):
            continue  # no floor, or floor breaches are warnings only
        if section["speedup_vs_reference"] < floor:
            failures.append(
                f"section {name}: speedup_vs_reference "
                f"{section['speedup_vs_reference']:.3f} below floor {floor}"
            )
    sharded = result["sections"].get("sharded_serving")
    if sharded is not None:
        for point in sharded["scaling"]["points"]:
            floor = point.get("floor")
            if (
                floor is not None
                and point["speedup_vs_single_device"] < floor
            ):
                failures.append(
                    f"sharded serving at {point['devices']} devices: "
                    f"modelled speedup "
                    f"{point['speedup_vs_single_device']:.3f} below floor "
                    f"{floor:g}"
                )
        for name, leg in sharded["bitwise"].items():
            if leg["served"] == 0:
                failures.append(f"sharded bitwise leg {name}: nothing served")
            if not leg["outputs_bitwise_equal"]:
                failures.append(
                    f"sharded bitwise leg {name}: served outputs != "
                    "per-request oracle"
                )
        if (
            sharded["bitwise"]["tp_collective_chaos"][
                "collective_faults_injected"
            ]
            < 1
        ):
            failures.append(
                "collective-targeted chaos injected no faults into "
                "allreduce kernels"
            )
    serving = result["sections"].get("continuous_serving")
    if serving is not None:
        hit_rate = serving["continuous"]["steady_hit_rate"]
        if hit_rate < serving["hit_rate_floor"]:
            failures.append(
                f"continuous serving steady-state graph hit rate "
                f"{hit_rate:.3f} below floor {serving['hit_rate_floor']}"
            )
    decode = result["sections"].get("decode_serving")
    if decode is not None:
        hit_rate = decode["mixed"]["steady_hit_rate"]
        if hit_rate < decode["hit_rate_floor"]:
            failures.append(
                f"decode serving steady-state graph hit rate "
                f"{hit_rate:.3f} below floor {decode['hit_rate_floor']}"
            )
        overflow = decode["mixed"]["kv"]["overflow_allocs"]
        if overflow != 0:
            failures.append(
                f"paged KV arena performed {overflow:.0f} overflow "
                "allocations (plan-driven pre-sizing should leave zero)"
            )
        for name, leg in decode["bitwise"].items():
            if leg["served"] == 0:
                failures.append(f"decode bitwise leg {name}: nothing served")
            if not leg["outputs_bitwise_equal"]:
                failures.append(
                    f"decode bitwise leg {name}: served generations != "
                    "per-request oracle"
                )
        if decode["bitwise"]["chaos_evict"]["evictions"] < 1:
            failures.append(
                "decode chaos leg evicted nothing: KV pressure path "
                "never exercised preempt/resume"
            )
    if not inv["outputs_match_atol_1e-6"]:
        failures.append(
            f"engine outputs diverge (max |diff| {inv['max_abs_diff']:.2e})"
        )
    if not inv["launch_streams_identical"]:
        failures.append("looped vs vectorized launch streams differ")
    if not inv.get("graph_modelled_us_equal", True):
        failures.append("graph replay changed modelled_us")
    if not inv.get("graph_streams_identical", True):
        failures.append("graph replay stream != eager stream")
    if not inv.get("steady_outputs_bitwise_equal", True):
        failures.append("arena+graph forward output != vectorized output")
    if not inv.get("steady_modelled_us_equal", True):
        failures.append("arena+graph forward changed modelled_us")
    if inv.get("steady_arena_engaged"):
        alloc = result["sections"]["steady_state_alloc"]
        if alloc["large_allocation_count"] != 0:
            failures.append(
                f"steady state performed "
                f"{alloc['large_allocation_count']} large allocations"
            )
        budget = alloc.get("peak_budget_bytes", LARGE_ALLOC_BYTES)
        if alloc["peak_delta_bytes"] >= budget:
            failures.append(
                f"steady-state traced peak grew by "
                f"{alloc['peak_delta_bytes']} bytes "
                f"(budget {budget})"
            )
        # satellite gate: plan-driven pre-sizing means the arena never
        # falls back to np.empty, warm-up included
        if alloc.get("arena_overflow_allocs", 0) != 0:
            failures.append(
                f"arena performed {alloc['arena_overflow_allocs']} "
                "overflow allocations (pre-sizing should leave zero)"
            )
    hp = result["sections"].get("host_parallel")
    if hp is not None:
        # the parallel path's correctness invariants are deterministic,
        # so they gate hard regardless of core count
        if not hp["outputs_bitwise_equal"]:
            failures.append(
                f"{hp['executor']} executor output != serial output"
            )
        if not hp["launch_streams_identical"]:
            failures.append(
                f"{hp['executor']} executor changed the launch stream"
            )
        if not hp["modelled_us_equal"]:
            failures.append(
                f"{hp['executor']} executor changed modelled_us"
            )
        fg = hp["fast_gelu"]
        if not fg["within_atol"]:
            failures.append(
                f"fast-gelu max |diff| {fg['max_abs_diff']:.2e} exceeds "
                f"atol {fg['atol']}"
            )
        if not fg["launch_streams_identical"]:
            failures.append("fast-gelu changed the launch stream")
    return failures


def check_warnings(result: dict[str, Any]) -> list[str]:
    """Floor breaches that are reported but do not fail ``--check``.

    Two section flags downgrade a floor breach to a warning: sections
    marked ``amdahl_capped`` (reachable speedup is bounded by work
    identical in both engines, which PR 1 documented up front) and
    sections marked ``wall_clock_floor`` (the speedup is a host
    wall-clock measurement, and a loaded CI box can sink it without any
    code regression).  Hard floors stay reserved for modelled-clock
    metrics, which are deterministic.
    """
    warnings = []
    for name, section in result["sections"].items():
        if not isinstance(section, dict):
            continue
        if section.get("amdahl_capped"):
            qualifier = "Amdahl-capped"
        elif section.get("wall_clock_floor"):
            qualifier = "wall-clock measurement"
        else:
            continue
        floor = section.get("floor")
        if floor is not None and section["speedup_vs_reference"] < floor:
            warnings.append(
                f"section {name}: speedup_vs_reference "
                f"{section['speedup_vs_reference']:.3f} below floor {floor} "
                f"({qualifier}: warning, not failure)"
            )
    return warnings
