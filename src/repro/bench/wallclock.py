"""Wall-clock benchmark: vectorized engine vs the seed's looped reference.

This harness measures the **host** clock — how long the numpy substrate
takes to execute a forward pass — which is entirely separate from the
**gpusim-modelled** clock (the simulated GPU time a
:class:`~repro.gpusim.stream.ExecutionContext` accumulates from
:class:`~repro.gpusim.kernel.KernelLaunch` descriptors).  A correct
engine change moves only the first clock; this harness asserts the second
stays bit-identical while it measures the first.

Three measurements are reported:

* ``forward`` — the full model forward (the honest end-to-end number).
  On a single-core host the reachable speedup is Amdahl-capped: most of
  the wall time is BLAS GEMMs and the erf-based GELU, identical work in
  both engines, so end-to-end gains are modest by construction.
* ``attention`` — the MHA hot path the engines actually differ on
  (per-unit Python loops vs length-bucketed batched matmuls).
* ``packing`` — zero-padding metadata construction, where the
  :class:`~repro.core.padding.PackingCache` turns repeated serving shapes
  into dictionary hits.

Results are written to ``BENCH_wallclock.json``; required schema keys are
``config``, ``wall_us``, ``modelled_us`` and ``speedup_vs_reference``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.attention.dispatch import byte_mha
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha
from repro.core.config import BertConfig, STEPWISE_PRESETS
from repro.core.engine import LOOPED, VECTORIZED, use_engine
from repro.core.model import BertEncoderModel
from repro.core.padding import (
    PackedSeqs,
    PackingCache,
    packing_from_mask,
)
from repro.gpusim.stream import ExecutionContext, NullContext
from repro.kernels.gemm import gemm
from repro.kernels.prefix_sum import mask_prefix_sum
from repro.workloads.generator import make_batch

#: shape overrides applied by ``--quick`` (CI smoke: < 1 s end to end)
QUICK_OVERRIDES: dict[str, Any] = {
    "batch": 4,
    "max_seq_len": 64,
    "layers": 2,
    "repeats": 1,
}

_PRESETS_BY_LABEL = {p.label: p for p in STEPWISE_PRESETS}


def _time_best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in microseconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1e6


def _reference_packing_from_mask(mask: np.ndarray) -> PackedSeqs:
    """The seed's per-sentence packing builder, kept verbatim as the
    benchmark reference for the now loop-free ``packing_from_mask``."""
    prefix = mask_prefix_sum(mask, ctx=NullContext())
    batch, max_seq_len = mask.shape
    seq_lens = prefix[:, -1].copy()
    for b in range(batch):
        length = int(seq_lens[b])
        expected = np.arange(1, length + 1)
        if not np.array_equal(prefix[b, :length], expected):
            raise ValueError(f"sentence {b} has interior padding")
    seq_offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(seq_lens, out=seq_offsets[1:])
    gather = np.empty(int(seq_offsets[-1]), dtype=np.int64)
    for b in range(batch):
        length = int(seq_lens[b])
        gather[seq_offsets[b] : seq_offsets[b + 1]] = (
            b * max_seq_len + np.arange(length)
        )
    return PackedSeqs(
        batch=batch,
        max_seq_len=max_seq_len,
        seq_lens=seq_lens,
        seq_offsets=seq_offsets,
        gather_idx=gather,
    )


def _launches_identical(
    records_a: list, records_b: list
) -> bool:
    """Whether two kernel-record streams are byte-identical (descriptor
    equality and modelled-time equality, launch by launch, in order)."""
    if len(records_a) != len(records_b):
        return False
    return all(
        a.launch == b.launch and a.time_us == b.time_us
        for a, b in zip(records_a, records_b)
    )


def run_wallclock_bench(
    *,
    batch: int = 16,
    max_seq_len: int = 256,
    alpha: float = 0.6,
    layers: int = 12,
    preset: str = "fused MHA",
    repeats: int = 3,
    seed: int = 0,
) -> dict[str, Any]:
    """Benchmark the vectorized engine against the looped reference.

    Returns the result dict (see module docstring for the schema).  Both
    engines run the same weights on the same batch; the harness verifies
    outputs agree within ``atol=1e-6`` and that the emitted kernel-launch
    streams (and therefore every modelled statistic) are identical before
    reporting any timing.
    """
    if preset not in _PRESETS_BY_LABEL:
        raise ValueError(
            f"unknown preset {preset!r}; pick one of "
            f"{sorted(_PRESETS_BY_LABEL)}"
        )
    opt = _PRESETS_BY_LABEL[preset]
    config = BertConfig(num_layers=layers)
    data = make_batch(
        batch, max_seq_len, config.hidden_size, alpha=alpha, seed=seed
    )
    model = BertEncoderModel(config, opt=opt, seed=seed)

    # ---- full forward under both engines: correctness + invariants ----
    outputs: dict[str, np.ndarray] = {}
    records: dict[str, list] = {}
    wall: dict[str, float] = {}
    modelled: dict[str, float] = {}
    for engine in (LOOPED, VECTORIZED):
        with use_engine(engine):
            ctx = ExecutionContext()
            outputs[engine] = model.forward(data.x, data.mask, ctx=ctx)
            records[engine] = ctx.records
            modelled[engine] = ctx.elapsed_us()
            wall[engine] = _time_best_of(
                lambda: model.forward(
                    data.x, data.mask, ctx=ExecutionContext()
                ),
                repeats,
            )

    max_abs_diff = float(
        np.max(
            np.abs(
                outputs[LOOPED].astype(np.float64)
                - outputs[VECTORIZED].astype(np.float64)
            )
        )
    )
    outputs_match = bool(
        np.allclose(outputs[LOOPED], outputs[VECTORIZED], atol=1e-6)
    )
    launches_identical = _launches_identical(
        records[LOOPED], records[VECTORIZED]
    )

    # ---- attention hot path: the code the engines actually differ on ----
    if opt.remove_padding:
        packing = packing_from_mask(data.mask, ctx=NullContext())
        flat = data.x.reshape(-1, config.hidden_size)
        packed = flat[packing.gather_idx]
        layer0 = model.weights.layers[0]
        qkv = gemm(
            packed, layer0.qkv_weight, ctx=NullContext(), name="bench_qkv"
        )
        if opt.fused_mha:
            def run_attention() -> np.ndarray:
                return byte_mha(
                    qkv,
                    layer0.qkv_bias,
                    packing,
                    config.num_heads,
                    short_max_seq=opt.fused_mha_short_max_seq,
                    ctx=NullContext(),
                )
        else:
            def run_attention() -> np.ndarray:
                return zeropad_softmax_mha(
                    qkv,
                    layer0.qkv_bias,
                    packing,
                    config.num_heads,
                    ctx=NullContext(),
                )
        attention_wall: dict[str, float] = {}
        for engine in (LOOPED, VECTORIZED):
            with use_engine(engine):
                run_attention()  # warm up
                attention_wall[engine] = _time_best_of(
                    run_attention, repeats
                )
        attention_section = {
            "wall_us": attention_wall[VECTORIZED],
            "reference_wall_us": attention_wall[LOOPED],
            "speedup_vs_reference": attention_wall[LOOPED]
            / attention_wall[VECTORIZED],
        }
    else:
        attention_section = None

    # ---- packing metadata: seed loop vs loop-free build vs cache hit ----
    # The reference runs under the looped engine so its prefix sum is the
    # seed's warp-scan emulation, exactly as shipped.
    packing_repeats = max(repeats, 10)
    with use_engine(LOOPED):
        packing_loop_us = _time_best_of(
            lambda: _reference_packing_from_mask(data.mask), packing_repeats
        )
    with use_engine(VECTORIZED):
        packing_cold_us = _time_best_of(
            lambda: packing_from_mask(
                data.mask, ctx=NullContext(), cache=None
            ),
            packing_repeats,
        )
        warm_cache = PackingCache()
        packing_from_mask(data.mask, ctx=NullContext(), cache=warm_cache)
        packing_warm_us = _time_best_of(
            lambda: packing_from_mask(
                data.mask, ctx=NullContext(), cache=warm_cache
            ),
            packing_repeats,
        )

    result: dict[str, Any] = {
        "config": {
            "batch": batch,
            "max_seq_len": max_seq_len,
            "alpha": alpha,
            "layers": layers,
            "preset": preset,
            "repeats": repeats,
            "seed": seed,
            "hidden_size": config.hidden_size,
            "num_heads": config.num_heads,
            "total_tokens": int(np.sum(data.mask)),
            "host": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        # host wall time of the vectorized (default) engine
        "wall_us": wall[VECTORIZED],
        # gpusim-modelled time: identical for both engines by construction
        "modelled_us": modelled[VECTORIZED],
        "reference_wall_us": wall[LOOPED],
        "speedup_vs_reference": wall[LOOPED] / wall[VECTORIZED],
        "sections": {
            "forward": {
                "wall_us": wall[VECTORIZED],
                "reference_wall_us": wall[LOOPED],
                "speedup_vs_reference": wall[LOOPED] / wall[VECTORIZED],
            },
            **(
                {"attention": attention_section}
                if attention_section is not None
                else {}
            ),
            "packing": {
                "reference_loop_us": packing_loop_us,
                "vectorized_build_us": packing_cold_us,
                "cache_hit_us": packing_warm_us,
                "speedup_vs_reference": packing_loop_us / packing_cold_us,
                "speedup_cache_hit": packing_loop_us / packing_warm_us,
            },
        },
        "invariants": {
            "outputs_match_atol_1e-6": outputs_match,
            "max_abs_diff": max_abs_diff,
            "launch_streams_identical": launches_identical,
            "kernel_count": len(records[VECTORIZED]),
            "modelled_us_looped": modelled[LOOPED],
            "modelled_us_vectorized": modelled[VECTORIZED],
        },
        "notes": (
            "wall_us is host (numpy) execution time of the vectorized "
            "engine; modelled_us is simulated GPU time and is identical "
            "under both engines. End-to-end speedup on this single-core "
            "host is Amdahl-limited: BLAS GEMMs and the erf-based GELU "
            "dominate the forward and are identical work in both engines; "
            "the engine's wins concentrate in the attention and packing "
            "sections."
        ),
    }
    return result


def write_bench_json(result: dict[str, Any], path: str | Path) -> Path:
    """Write a bench result dict as pretty-printed JSON."""
    out = Path(path)
    out.write_text(json.dumps(result, indent=2, sort_keys=False) + "\n")
    return out


def format_summary(result: dict[str, Any]) -> str:
    """Human-readable one-screen summary of a bench result."""
    cfg = result["config"]
    lines = [
        f"wall-clock bench: {cfg['preset']} preset, "
        f"B={cfg['batch']} S={cfg['max_seq_len']} "
        f"alpha={cfg['alpha']} layers={cfg['layers']}",
        f"  forward   : {result['wall_us'] / 1e3:9.2f} ms vectorized "
        f"vs {result['reference_wall_us'] / 1e3:9.2f} ms looped "
        f"({result['speedup_vs_reference']:.2f}x)",
    ]
    attention = result["sections"].get("attention")
    if attention is not None:
        lines.append(
            f"  attention : {attention['wall_us'] / 1e3:9.2f} ms vectorized "
            f"vs {attention['reference_wall_us'] / 1e3:9.2f} ms looped "
            f"({attention['speedup_vs_reference']:.2f}x)"
        )
    packing = result["sections"]["packing"]
    lines.append(
        f"  packing   : {packing['vectorized_build_us']:9.1f} us loop-free "
        f"build vs {packing['reference_loop_us']:9.1f} us seed loop "
        f"({packing['speedup_vs_reference']:.1f}x); cache hit "
        f"{packing['cache_hit_us']:.1f} us "
        f"({packing['speedup_cache_hit']:.1f}x)"
    )
    inv = result["invariants"]
    lines.append(
        f"  invariants: outputs_match={inv['outputs_match_atol_1e-6']} "
        f"(max |diff| {inv['max_abs_diff']:.2e}), "
        f"launch_streams_identical={inv['launch_streams_identical']}, "
        f"modelled {result['modelled_us'] / 1e3:.1f} ms"
    )
    return "\n".join(lines)
