"""Wall-clock benchmarking of the host execution engines."""

from repro.bench.wallclock import (
    QUICK_OVERRIDES,
    run_wallclock_bench,
    write_bench_json,
)

__all__ = ["QUICK_OVERRIDES", "run_wallclock_bench", "write_bench_json"]
