"""Paged KV-cache arena: fixed-size blocks over one live backing buffer.

TurboTransformers showed decoder serving needs block-managed dynamic
memory; vLLM-style paged attention made the block table the unit of
bookkeeping.  This module is that design on the repo's own substrate: a
persistent block pool carved out of a :class:`~repro.core.memory_planner.
LiveArena`, per-request block tables, and swap-based eviction under
memory pressure.

Contract highlights:

* the pool is **one** arena tensor ``[blocks, block_tokens, 2, hidden]``
  taken once at construction.  :func:`~repro.core.memory_planner.
  plan_paged_kv_arena` predicts its exact bytes, the constructor
  ``reserve()``s them, so the pool is backed from the first take and
  :attr:`overflow_allocs` stays 0 — the gate the ``decode_serving``
  bench section enforces;
* K/V rows are stored in the engine's float64 numerics (like the
  megabatch arena); the *modelled* deployment bytes the telemetry gauges
  report are FP16 (:data:`~repro.gpusim.memory.BYTES_PER_ELEMENT`),
  matching :attr:`~repro.decoder.generation.PackedKVCache.packed_bytes`;
* :meth:`append_rows` raises :class:`KVPressureError` instead of
  over-allocating when the pool is exhausted — the runtime's cue to
  swap out a victim (:meth:`swap_out`) and resume it later from the
  host copy (:meth:`swap_in`), bit for bit;
* :meth:`gathered` reconstructs a request's contiguous ``[len, H]``
  K/V exactly as :meth:`PackedKVCache.keys`/``values`` would — the
  property that keeps batched paged decode bitwise equal to the looped
  per-request oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.memory_planner import LiveArena, plan_paged_kv_arena, peak_live_bytes
from repro.gpusim.memory import BYTES_PER_ELEMENT

#: default tokens per KV block — small enough that ragged contexts waste
#: little tail, large enough that block tables stay short
DEFAULT_KV_BLOCK_TOKENS = 16


class KVPressureError(ValueError):
    """The block pool cannot hold the requested KV rows.

    Raised instead of silently allocating past capacity; the serving
    runtime reacts by swapping out a victim request (preemption) or
    deferring the admission, never by growing the pool mid-run.
    """


class PagedKVArena:
    """Fixed-size KV blocks with per-request block tables.

    ``capacity_tokens`` is rounded up to a whole number of
    ``block_tokens`` blocks.  All bookkeeping is deterministic: block
    ids are handed out from a free stack in LIFO order, so the same
    request sequence always produces the same tables.
    """

    def __init__(
        self,
        hidden: int,
        capacity_tokens: int,
        *,
        block_tokens: int = DEFAULT_KV_BLOCK_TOKENS,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        plan = plan_paged_kv_arena(
            hidden, capacity_tokens, block_tokens, dtype=dtype
        )
        self.hidden = int(hidden)
        self.block_tokens = int(block_tokens)
        self.num_blocks = -(-int(capacity_tokens) // int(block_tokens))
        self.dtype = np.dtype(dtype)
        self._arena = LiveArena()
        self._arena.reserve(peak_live_bytes(plan))
        self._arena.begin()
        #: the whole pool: ``[block, slot, 0=K/1=V, hidden]``
        self._pool = self._arena.take(
            "kv_blocks",
            (self.num_blocks, self.block_tokens, 2, self.hidden),
            self.dtype,
        )
        self._free: list[int] = list(range(self.num_blocks - 1, -1, -1))
        self._tables: dict[int, list[int]] = {}
        self._lengths: dict[int, int] = {}
        #: host copies of swapped-out requests: ``rid -> [len, 2, H]``
        self._swapped: dict[int, np.ndarray] = {}
        self.evictions = 0
        self.swap_ins = 0
        self.peak_live_blocks = 0

    # -- capacity ------------------------------------------------------

    @property
    def capacity_tokens(self) -> int:
        return self.num_blocks * self.block_tokens

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def live_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    @property
    def live_tokens(self) -> int:
        """Valid (non-tail) KV tokens resident in the pool."""
        return sum(self._lengths.values())

    @property
    def overflow_allocs(self) -> int:
        """Pool takes served by ``np.empty`` instead of the backing —
        0 forever when the plan-driven reserve sized the backing."""
        return self._arena.overflow_allocs

    @property
    def live_bytes(self) -> int:
        """Modelled FP16 deployment bytes of the live blocks (K + V)."""
        return (
            self.live_blocks
            * self.block_tokens
            * 2
            * self.hidden
            * BYTES_PER_ELEMENT
        )

    @property
    def peak_live_bytes(self) -> int:
        return (
            self.peak_live_blocks
            * self.block_tokens
            * 2
            * self.hidden
            * BYTES_PER_ELEMENT
        )

    @property
    def occupancy(self) -> float:
        """Valid-token fraction of the live blocks (1.0 = no tail waste)."""
        live_slots = self.live_blocks * self.block_tokens
        return self.live_tokens / live_slots if live_slots else 1.0

    def blocks_needed(self, rid: int, new_tokens: int) -> int:
        """Blocks :meth:`append_rows` would have to claim for ``rid``."""
        if new_tokens < 0:
            raise ValueError(f"new_tokens must be >= 0, got {new_tokens}")
        length = self._lengths.get(rid, 0)
        have = len(self._tables.get(rid, ()))
        need = -(-(length + new_tokens) // self.block_tokens)
        return max(0, need - have)

    # -- request bookkeeping -------------------------------------------

    def has(self, rid: int) -> bool:
        return rid in self._tables

    def is_swapped(self, rid: int) -> bool:
        return rid in self._swapped

    def context_len(self, rid: int) -> int:
        if rid not in self._lengths:
            raise KeyError(f"request {rid} holds no KV blocks")
        return self._lengths[rid]

    def block_table(self, rid: int) -> tuple[int, ...]:
        if rid not in self._tables:
            raise KeyError(f"request {rid} holds no KV blocks")
        return tuple(self._tables[rid])

    def append_rows(
        self, rid: int, k_rows: np.ndarray, v_rows: np.ndarray
    ) -> None:
        """Append ``[n, H]`` key/value rows to ``rid``'s paged history."""
        if k_rows.ndim != 2 or k_rows.shape[1] != self.hidden:
            raise ValueError(
                f"expected [n, {self.hidden}] key rows, got {k_rows.shape}"
            )
        if v_rows.shape != k_rows.shape:
            raise ValueError("key and value rows must match")
        if rid in self._swapped:
            raise KVPressureError(
                f"request {rid} is swapped out; swap_in before appending"
            )
        n = k_rows.shape[0]
        grab = self.blocks_needed(rid, n)
        if grab > len(self._free):
            raise KVPressureError(
                f"request {rid} needs {grab} KV blocks, only "
                f"{len(self._free)} free of {self.num_blocks}"
            )
        table = self._tables.setdefault(rid, [])
        length = self._lengths.setdefault(rid, 0)
        for _ in range(grab):
            table.append(self._free.pop())
        self.peak_live_blocks = max(self.peak_live_blocks, self.live_blocks)
        for i in range(n):
            blk = table[(length + i) // self.block_tokens]
            slot = (length + i) % self.block_tokens
            self._pool[blk, slot, 0] = k_rows[i]
            self._pool[blk, slot, 1] = v_rows[i]
        self._lengths[rid] = length + n

    def gathered(self, rid: int) -> tuple[np.ndarray, np.ndarray]:
        """``rid``'s contiguous ``([len, H], [len, H])`` keys and values.

        The gather copies block views into fresh C-contiguous arrays —
        bitwise the rows that went in, in order, exactly what
        :meth:`PackedKVCache.keys`/``values`` stack for the oracle.
        """
        length = self.context_len(rid)
        table = self._tables[rid]
        k_parts: list[np.ndarray] = []
        v_parts: list[np.ndarray] = []
        remaining = length
        for blk in table:
            take = min(remaining, self.block_tokens)
            k_parts.append(self._pool[blk, :take, 0])
            v_parts.append(self._pool[blk, :take, 1])
            remaining -= take
            if remaining <= 0:
                break
        return np.concatenate(k_parts), np.concatenate(v_parts)

    def free(self, rid: int) -> None:
        """Return ``rid``'s blocks to the pool (request finished)."""
        table = self._tables.pop(rid, None)
        if table is None:
            self._swapped.pop(rid, None)
            self._lengths.pop(rid, None)
            return
        self._free.extend(reversed(table))
        self._lengths.pop(rid, None)

    # -- eviction / preemption -----------------------------------------

    def swap_out(self, rid: int) -> int:
        """Evict ``rid`` to a host copy; returns the tokens swapped.

        The request's blocks return to the pool; its K/V survive in a
        host-side buffer so :meth:`swap_in` restores them bit for bit —
        a preempted request resumes from its KV, never recomputes it.
        """
        length = self.context_len(rid)
        keys, values = self.gathered(rid)
        self._swapped[rid] = np.stack([keys, values], axis=1)  # [len, 2, H]
        table = self._tables.pop(rid)
        self._free.extend(reversed(table))
        self._lengths.pop(rid)
        self.evictions += 1
        return length

    def swap_in(self, rid: int) -> int:
        """Restore a swapped-out request into fresh blocks."""
        host = self._swapped.get(rid)
        if host is None:
            raise KeyError(f"request {rid} is not swapped out")
        need = -(-host.shape[0] // self.block_tokens)
        if need > len(self._free):
            raise KVPressureError(
                f"swap_in of request {rid} needs {need} blocks, only "
                f"{len(self._free)} free"
            )
        del self._swapped[rid]
        self.append_rows(rid, host[:, 0], host[:, 1])
        self.swap_ins += 1
        return host.shape[0]
