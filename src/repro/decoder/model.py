"""Encoder-decoder (seq2seq) model on the packed substrate."""

from __future__ import annotations

import numpy as np

from repro.core.config import FUSED_MHA, BertConfig, OptimizationConfig
from repro.core.encoder import encoder_layer_packed
from repro.core.padding import PackedSeqs, pack, packing_from_mask, unpack
from repro.core.weights import ModelWeights, init_model_weights
from repro.decoder.layer import decoder_layer_packed
from repro.decoder.weights import DecoderLayerWeights, init_decoder_weights
from repro.gpusim.stream import ExecutionContext, resolve_context


class Seq2SeqModel:
    """A packed Transformer encoder-decoder.

    The encoder is the ByteTransformer BERT stack; the decoder applies
    the same zero-padding algorithm with causal self-attention and
    cross-attention as grouped-GEMM FMHA.  Source and target batches may
    have entirely different length distributions — both stay packed end
    to end.
    """

    def __init__(
        self,
        config: BertConfig | None = None,
        opt: OptimizationConfig | None = None,
        encoder_weights: ModelWeights | None = None,
        decoder_weights: tuple[DecoderLayerWeights, ...] | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or BertConfig()
        self.opt = opt or FUSED_MHA
        if not self.opt.remove_padding:
            raise ValueError(
                "Seq2SeqModel runs the packed pipelines; pick a preset "
                "with remove_padding"
            )
        self.encoder_weights = encoder_weights or init_model_weights(
            self.config, seed
        )
        self.decoder_weights = decoder_weights or init_decoder_weights(
            self.config, seed + 1
        )
        if len(self.decoder_weights) != self.config.num_layers:
            raise ValueError(
                f"decoder has {len(self.decoder_weights)} layers, config "
                f"wants {self.config.num_layers}"
            )

    def encode(
        self,
        src: np.ndarray,
        src_mask: np.ndarray,
        *,
        ctx: ExecutionContext | None = None,
    ) -> tuple[np.ndarray, PackedSeqs]:
        """Run the encoder; returns the *packed* memory and its packing."""
        context = resolve_context(ctx)
        batch, seq, hidden = src.shape
        packing = packing_from_mask(src_mask, ctx=context)
        hidden_state = pack(
            src.reshape(batch * seq, hidden), packing, ctx=context
        )
        for layer in self.encoder_weights.layers:
            hidden_state = encoder_layer_packed(
                hidden_state, layer, self.config, self.opt, packing,
                ctx=context,
            )
        return hidden_state, packing

    def forward(
        self,
        src: np.ndarray,
        src_mask: np.ndarray,
        tgt: np.ndarray,
        tgt_mask: np.ndarray,
        *,
        ctx: ExecutionContext | None = None,
    ) -> np.ndarray:
        """Full seq2seq forward; returns the padded ``[B, S_tgt, H]``
        decoder output (padding zeroed)."""
        if src.shape[0] != tgt.shape[0]:
            raise ValueError(
                f"source batch {src.shape[0]} != target batch {tgt.shape[0]}"
            )
        context = resolve_context(ctx)
        memory, src_packing = self.encode(src, src_mask, ctx=context)

        batch, tgt_seq, hidden = tgt.shape
        tgt_packing = packing_from_mask(tgt_mask, ctx=context)
        hidden_state = pack(
            tgt.reshape(batch * tgt_seq, hidden), tgt_packing, ctx=context
        )
        for weights in self.decoder_weights:
            hidden_state = decoder_layer_packed(
                hidden_state,
                memory,
                weights,
                self.config,
                self.opt,
                tgt_packing,
                src_packing,
                ctx=context,
            )
        out = unpack(hidden_state, tgt_packing, ctx=context)
        return out.reshape(batch, tgt_seq, hidden)
