"""Incremental decoding with a packed KV cache.

Autoregressive generation is the other place variable lengths bite: at
each step every sequence in the batch has a *different* context length
(prompt + tokens generated so far).  A padded KV cache pays attention
traffic proportional to ``batch x max_context``; a packed cache — the
zero-padding algorithm applied to the time axis — pays only for real
context tokens.

:class:`PackedKVCache` stores per-sequence K/V histories;
:func:`decode_self_attention_step` runs one single-token attention step
for the whole batch as a grouped ``1 x len_i`` problem set (decode
attention is a batch of skinny GEMVs — bandwidth-bound on cache reads,
which is exactly what the packed layout shrinks).

Correctness contract (tested): feeding a sequence token by token through
the cache reproduces, row for row, the full causal self-attention over
the same tokens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import BertConfig
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.gemm import gemm
from repro.kernels.softmax import softmax_reference

#: sustained efficiency of the decode-attention kernel's math (it is
#: bandwidth-bound on cache reads; the constant rarely matters)
_DECODE_EFFICIENCY = 0.05


class PackedKVCache:
    """Per-sequence K/V history in packed (ragged) storage.

    Each sequence owns a growable ``[len_i, H]`` pair of buffers; total
    resident bytes are ``2 * sum(len_i) * H`` — no padding, ever.
    """

    def __init__(self, batch: int, hidden: int) -> None:
        if batch <= 0 or hidden <= 0:
            raise ValueError("batch and hidden must be positive")
        self.batch = batch
        self.hidden = hidden
        self._keys: list[list[np.ndarray]] = [[] for _ in range(batch)]
        self._values: list[list[np.ndarray]] = [[] for _ in range(batch)]

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Append one ``[B, H]`` key/value row per sequence."""
        if k_step.shape != (self.batch, self.hidden):
            raise ValueError(
                f"expected [{self.batch}, {self.hidden}] keys, got "
                f"{k_step.shape}"
            )
        if v_step.shape != k_step.shape:
            raise ValueError("key and value steps must match")
        for b in range(self.batch):
            self._keys[b].append(k_step[b])
            self._values[b].append(v_step[b])

    def append_prompt(
        self, k_prompt: np.ndarray, v_prompt: np.ndarray, seq_lens: np.ndarray
    ) -> None:
        """Prefill: append each sequence's valid prompt rows.

        ``k_prompt``/``v_prompt`` are padded ``[B, S, H]``; only the first
        ``seq_lens[b]`` rows of each are cached.
        """
        if k_prompt.shape != v_prompt.shape or k_prompt.ndim != 3:
            raise ValueError("prompt K/V must be matching [B, S, H]")
        if len(seq_lens) != self.batch:
            raise ValueError(f"{len(seq_lens)} lengths for batch {self.batch}")
        for b, length in enumerate(int(v) for v in seq_lens):
            if not (0 < length <= k_prompt.shape[1]):
                raise ValueError(f"sequence {b}: bad prompt length {length}")
            for t in range(length):
                self._keys[b].append(k_prompt[b, t])
                self._values[b].append(v_prompt[b, t])

    def lengths(self) -> np.ndarray:
        return np.asarray([len(k) for k in self._keys], dtype=np.int64)

    def keys(self, b: int) -> np.ndarray:
        return np.stack(self._keys[b])

    def values(self, b: int) -> np.ndarray:
        return np.stack(self._values[b])

    @property
    def packed_bytes(self) -> int:
        """Resident cache bytes in the packed layout (FP16 storage):
        K and V, valid context rows only — 0 for an empty cache."""
        return int(2 * self.lengths().sum()) * self.hidden * BYTES_PER_ELEMENT

    def padded_bytes(self, max_context: int | None = None) -> int:
        """What a padded cache would hold for the same state.

        ``max_context`` is the fixed shape a padded deployment would
        reserve per sequence; defaulting to the current batch maximum
        gives the tightest padded competitor.  An explicit cap below the
        longest resident context is rejected — it would *under*-count
        the padded layout and flatter the packed/padded comparison the
        telemetry gauges report.
        """
        longest = int(self.lengths().max())
        if max_context is None:
            cap = longest
        else:
            if max_context < longest:
                raise ValueError(
                    f"max_context {max_context} below the longest resident "
                    f"context {longest}; a padded cache could not hold it"
                )
            cap = int(max_context)
        return 2 * self.batch * cap * self.hidden * BYTES_PER_ELEMENT


def decode_attention_launch(
    context_lens: np.ndarray,
    num_heads: int,
    head_size: int,
    *,
    padded: bool = False,
    category: str = "decode_attention",
) -> KernelLaunch:
    """Cost descriptor of one single-token decode-attention step.

    The kernel streams each sequence's cached K and V once and emits one
    output row per sequence; with ``padded=True`` it streams the padded
    cache instead (every sequence at the batch maximum) — the cost a
    fixed-shape implementation pays.
    """
    batch = len(context_lens)
    hidden = num_heads * head_size
    if padded:
        effective = int(np.max(context_lens)) * batch
    else:
        effective = int(np.sum(context_lens))
    cache_bytes = 2.0 * effective * hidden * BYTES_PER_ELEMENT
    flops = 4.0 * effective * hidden + 8.0 * effective * num_heads
    return KernelLaunch(
        name="decode_attention" + ("_padded" if padded else ""),
        category=category,
        grid=max(1, batch * num_heads),
        block_threads=128,
        flops=flops,
        dram_bytes=cache_bytes + 2.0 * batch * hidden * BYTES_PER_ELEMENT,
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=_DECODE_EFFICIENCY,
        regs_per_thread=64,
    )


def decode_self_attention_step(
    q_step: np.ndarray,
    k_step: np.ndarray,
    v_step: np.ndarray,
    cache: PackedKVCache,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """One decode step: append K/V, attend each new token to its history.

    ``q_step``/``k_step``/``v_step`` are ``[B, H]`` (one new token per
    sequence).  Returns the ``[B, H]`` attention output.  The new token's
    own K/V are part of the attended context (causal attention includes
    the current position).
    """
    batch, hidden = q_step.shape
    if batch != cache.batch or hidden != cache.hidden:
        raise ValueError(
            f"step shape {q_step.shape} does not match cache "
            f"({cache.batch}, {cache.hidden})"
        )
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads

    cache.append(k_step, v_step)
    out = np.empty_like(q_step)
    for b in range(batch):
        out[b] = attend_to_cache(
            q_step[b], cache.keys(b), cache.values(b), num_heads
        )

    resolve_context(ctx).launch(
        decode_attention_launch(cache.lengths(), num_heads, head_size)
    )
    return out


def attend_to_cache(
    q_row: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    num_heads: int,
) -> np.ndarray:
    """Single-token attention of ``q_row [H]`` over ``[len, H]`` K/V.

    The per-head math every decode path in this repo shares — the looped
    per-request oracle, the batched serving path reading through paged
    block tables, and :func:`decode_self_attention_step` all call this
    with K/V gathered into the same contiguous ``[len, H]`` layout, so
    their outputs are *bitwise* identical by construction.
    """
    hidden = q_row.shape[0]
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    scale = 1.0 / math.sqrt(head_size)
    k3 = keys.reshape(-1, num_heads, head_size)
    v3 = values.reshape(-1, num_heads, head_size)
    qh = q_row.reshape(num_heads, head_size)
    out = np.empty_like(q_row)
    for h in range(num_heads):
        scores = (k3[:, h] @ qh[h]) * scale
        probs = softmax_reference(scores[None, :])[0]
        out[h * head_size : (h + 1) * head_size] = probs @ v3[:, h]
    return out


# ----------------------------------------------------------------------
# the decode cell: the minimal autoregressive unit generation serves


@dataclass(frozen=True)
class DecodeCellWeights:
    """One decode cell: fused QKV projection, cached self-attention,
    output projection.

    This is the self-attention core of a decoder layer — the part whose
    cost and memory behaviour the KV cache changes — kept free of the
    cross-attention/FFN bulk so the generation loop stays cheap enough
    to run thousands of host-side steps in the bench and tests.
    """

    qkv_weight: np.ndarray
    qkv_bias: np.ndarray
    out_weight: np.ndarray
    out_bias: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.qkv_weight.shape[0]
        expectations = {
            "qkv_weight": (hidden, 3 * hidden),
            "qkv_bias": (3 * hidden,),
            "out_weight": (hidden, hidden),
            "out_bias": (hidden,),
        }
        for name, shape in expectations.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name} has shape {actual}, expected {shape}")

    @property
    def hidden_size(self) -> int:
        return self.qkv_weight.shape[0]


def init_decode_cell(config: BertConfig, seed: int = 0) -> DecodeCellWeights:
    """Deterministic decode-cell weights for ``config``'s hidden size."""
    rng = np.random.default_rng(seed)
    h = config.hidden_size

    def w(*shape: int) -> np.ndarray:
        return rng.normal(0.0, 0.02, size=shape).astype(np.float32)

    return DecodeCellWeights(
        qkv_weight=w(h, 3 * h),
        qkv_bias=w(3 * h),
        out_weight=w(h, h),
        out_bias=w(h),
    )


def generate_cell_reference(
    weights: DecodeCellWeights,
    x_prompt: np.ndarray,
    steps: int,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Looped per-request generation — the bitwise oracle.

    One request, one :class:`PackedKVCache`: the prompt is prefilled
    with a single QKV GEMM, the first token comes from the last prompt
    position attending over the whole prompt, and every further token
    feeds the previous output back through the cell one step at a time.
    Returns the ``[steps, H]`` generated hidden rows.  The serving
    runtime's batched paged path must reproduce these bytes for every
    request, however the scheduler interleaved them.
    """
    if x_prompt.ndim != 2 or x_prompt.shape[1] != weights.hidden_size:
        raise ValueError(
            f"prompt must be [len, {weights.hidden_size}], got "
            f"{x_prompt.shape}"
        )
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    hidden = weights.hidden_size
    prompt_len = x_prompt.shape[0]
    cache = PackedKVCache(1, hidden)

    qkv = gemm(
        x_prompt, weights.qkv_weight, bias=weights.qkv_bias,
        ctx=ctx, name="decode_qkv", category="decode_gemm",
    )
    k = qkv[:, hidden : 2 * hidden]
    v = qkv[:, 2 * hidden :]
    cache.append_prompt(
        k[None], v[None], np.asarray([prompt_len], dtype=np.int64)
    )
    attn = attend_to_cache(
        qkv[prompt_len - 1, :hidden], cache.keys(0), cache.values(0),
        num_heads,
    )
    y = gemm(
        attn[None, :], weights.out_weight, bias=weights.out_bias,
        ctx=ctx, name="decode_out", category="decode_gemm",
    )
    tokens = [y[0]]
    for _ in range(1, steps):
        qkv_t = gemm(
            tokens[-1][None, :], weights.qkv_weight, bias=weights.qkv_bias,
            ctx=ctx, name="decode_qkv", category="decode_gemm",
        )
        attn_t = decode_self_attention_step(
            qkv_t[:, :hidden],
            qkv_t[:, hidden : 2 * hidden],
            qkv_t[:, 2 * hidden :],
            cache,
            num_heads,
            ctx=ctx,
        )
        y = gemm(
            attn_t, weights.out_weight, bias=weights.out_bias,
            ctx=ctx, name="decode_out", category="decode_gemm",
        )
        tokens.append(y[0])
    return np.stack(tokens)


def max_decode_steps(prompt_len: int, decode_tokens: int, max_context: int) -> int:
    """Decode steps a request actually gets before hitting the context cap.

    The first token costs no cache growth beyond the prompt; each later
    token appends one KV row, so the cache after ``s`` steps holds
    ``prompt_len + s - 1`` rows and the cap admits at most
    ``max_context - prompt_len + 1`` steps.  Returns 0 only for a
    prompt already over the cap (which trace validation rejects).
    """
    if prompt_len <= 0 or decode_tokens <= 0:
        raise ValueError("prompt_len and decode_tokens must be positive")
    return max(0, min(int(decode_tokens), int(max_context) - prompt_len + 1))


def generation_traffic_ratio(
    prompt_lens: np.ndarray, steps: int, max_context: int
) -> float:
    """Padded/packed cache-traffic ratio over a whole generation.

    Closed form over the decode loop: at step ``t`` the packed kernel
    reads ``sum(prompt_i + t)`` context rows, the padded one
    ``batch * max_context``.  This is the headline number for decode-time
    zero padding.
    """
    lens = np.asarray(prompt_lens, dtype=np.float64)
    if steps <= 0:
        raise ValueError("steps must be positive")
    if (lens + steps > max_context).any():
        raise ValueError("generation would exceed max_context")
    packed = sum(float(lens.sum() + len(lens) * t) for t in range(1, steps + 1))
    padded = float(steps * len(lens) * max_context)
    return padded / packed
