"""Incremental decoding with a packed KV cache.

Autoregressive generation is the other place variable lengths bite: at
each step every sequence in the batch has a *different* context length
(prompt + tokens generated so far).  A padded KV cache pays attention
traffic proportional to ``batch x max_context``; a packed cache — the
zero-padding algorithm applied to the time axis — pays only for real
context tokens.

:class:`PackedKVCache` stores per-sequence K/V histories;
:func:`decode_self_attention_step` runs one single-token attention step
for the whole batch as a grouped ``1 x len_i`` problem set (decode
attention is a batch of skinny GEMVs — bandwidth-bound on cache reads,
which is exactly what the packed layout shrinks).

Correctness contract (tested): feeding a sequence token by token through
the cache reproduces, row for row, the full causal self-attention over
the same tokens.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.softmax import softmax_reference

#: sustained efficiency of the decode-attention kernel's math (it is
#: bandwidth-bound on cache reads; the constant rarely matters)
_DECODE_EFFICIENCY = 0.05


class PackedKVCache:
    """Per-sequence K/V history in packed (ragged) storage.

    Each sequence owns a growable ``[len_i, H]`` pair of buffers; total
    resident bytes are ``2 * sum(len_i) * H`` — no padding, ever.
    """

    def __init__(self, batch: int, hidden: int) -> None:
        if batch <= 0 or hidden <= 0:
            raise ValueError("batch and hidden must be positive")
        self.batch = batch
        self.hidden = hidden
        self._keys: list[list[np.ndarray]] = [[] for _ in range(batch)]
        self._values: list[list[np.ndarray]] = [[] for _ in range(batch)]

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Append one ``[B, H]`` key/value row per sequence."""
        if k_step.shape != (self.batch, self.hidden):
            raise ValueError(
                f"expected [{self.batch}, {self.hidden}] keys, got "
                f"{k_step.shape}"
            )
        if v_step.shape != k_step.shape:
            raise ValueError("key and value steps must match")
        for b in range(self.batch):
            self._keys[b].append(k_step[b])
            self._values[b].append(v_step[b])

    def append_prompt(
        self, k_prompt: np.ndarray, v_prompt: np.ndarray, seq_lens: np.ndarray
    ) -> None:
        """Prefill: append each sequence's valid prompt rows.

        ``k_prompt``/``v_prompt`` are padded ``[B, S, H]``; only the first
        ``seq_lens[b]`` rows of each are cached.
        """
        if k_prompt.shape != v_prompt.shape or k_prompt.ndim != 3:
            raise ValueError("prompt K/V must be matching [B, S, H]")
        if len(seq_lens) != self.batch:
            raise ValueError(f"{len(seq_lens)} lengths for batch {self.batch}")
        for b, length in enumerate(int(v) for v in seq_lens):
            if not (0 < length <= k_prompt.shape[1]):
                raise ValueError(f"sequence {b}: bad prompt length {length}")
            for t in range(length):
                self._keys[b].append(k_prompt[b, t])
                self._values[b].append(v_prompt[b, t])

    def lengths(self) -> np.ndarray:
        return np.asarray([len(k) for k in self._keys], dtype=np.int64)

    def keys(self, b: int) -> np.ndarray:
        return np.stack(self._keys[b])

    def values(self, b: int) -> np.ndarray:
        return np.stack(self._values[b])

    @property
    def packed_bytes(self) -> int:
        """Resident cache bytes in the packed layout (FP16 storage)."""
        return int(2 * self.lengths().sum()) * self.hidden * BYTES_PER_ELEMENT

    def padded_bytes(self, max_context: int | None = None) -> int:
        """What a padded cache would hold for the same state."""
        cap = int(self.lengths().max()) if max_context is None else max_context
        return 2 * self.batch * cap * self.hidden * BYTES_PER_ELEMENT


def decode_attention_launch(
    context_lens: np.ndarray,
    num_heads: int,
    head_size: int,
    *,
    padded: bool = False,
    category: str = "decode_attention",
) -> KernelLaunch:
    """Cost descriptor of one single-token decode-attention step.

    The kernel streams each sequence's cached K and V once and emits one
    output row per sequence; with ``padded=True`` it streams the padded
    cache instead (every sequence at the batch maximum) — the cost a
    fixed-shape implementation pays.
    """
    batch = len(context_lens)
    hidden = num_heads * head_size
    if padded:
        effective = int(np.max(context_lens)) * batch
    else:
        effective = int(np.sum(context_lens))
    cache_bytes = 2.0 * effective * hidden * BYTES_PER_ELEMENT
    flops = 4.0 * effective * hidden + 8.0 * effective * num_heads
    return KernelLaunch(
        name="decode_attention" + ("_padded" if padded else ""),
        category=category,
        grid=max(1, batch * num_heads),
        block_threads=128,
        flops=flops,
        dram_bytes=cache_bytes + 2.0 * batch * hidden * BYTES_PER_ELEMENT,
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=_DECODE_EFFICIENCY,
        regs_per_thread=64,
    )


def decode_self_attention_step(
    q_step: np.ndarray,
    k_step: np.ndarray,
    v_step: np.ndarray,
    cache: PackedKVCache,
    num_heads: int,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """One decode step: append K/V, attend each new token to its history.

    ``q_step``/``k_step``/``v_step`` are ``[B, H]`` (one new token per
    sequence).  Returns the ``[B, H]`` attention output.  The new token's
    own K/V are part of the attended context (causal attention includes
    the current position).
    """
    batch, hidden = q_step.shape
    if batch != cache.batch or hidden != cache.hidden:
        raise ValueError(
            f"step shape {q_step.shape} does not match cache "
            f"({cache.batch}, {cache.hidden})"
        )
    if hidden % num_heads != 0:
        raise ValueError(f"hidden {hidden} not divisible by {num_heads} heads")
    head_size = hidden // num_heads
    scale = 1.0 / math.sqrt(head_size)

    cache.append(k_step, v_step)
    out = np.empty_like(q_step)
    for b in range(batch):
        keys = cache.keys(b).reshape(-1, num_heads, head_size)
        values = cache.values(b).reshape(-1, num_heads, head_size)
        q = q_step[b].reshape(num_heads, head_size)
        for h in range(num_heads):
            scores = (keys[:, h] @ q[h]) * scale
            probs = softmax_reference(scores[None, :])[0]
            out[b, h * head_size : (h + 1) * head_size] = probs @ values[:, h]

    resolve_context(ctx).launch(
        decode_attention_launch(cache.lengths(), num_heads, head_size)
    )
    return out


def generation_traffic_ratio(
    prompt_lens: np.ndarray, steps: int, max_context: int
) -> float:
    """Padded/packed cache-traffic ratio over a whole generation.

    Closed form over the decode loop: at step ``t`` the packed kernel
    reads ``sum(prompt_i + t)`` context rows, the padded one
    ``batch * max_context``.  This is the headline number for decode-time
    zero padding.
    """
    lens = np.asarray(prompt_lens, dtype=np.float64)
    if steps <= 0:
        raise ValueError("steps must be positive")
    if (lens + steps > max_context).any():
        raise ValueError("generation would exceed max_context")
    packed = sum(float(lens.sum() + len(lens) * t) for t in range(1, steps + 1))
    padded = float(steps * len(lens) * max_context)
    return padded / packed
