"""Padding-free causal self-attention and cross-attention.

Both are built on the grouped-GEMM FMHA machinery of
:mod:`repro.attention.fused_long`:

* **causal self-attention** decomposes each unit's lower-triangular score
  matrix into *row strips*: query rows ``[i*T, (i+1)*T)`` attend to keys
  ``[0, (i+1)*T)``, so strip ``i`` is a ``T x (i+1)*T x head_size``
  GEMM.  The strips have different shapes — which is fine, because
  grouped GEMM schedules arbitrary shapes — and together they cover
  exactly the causal work, so no FLOP is spent above the diagonal at
  tile granularity;
* **cross-attention** pairs each decoder sequence (length ``t_i``) with
  its encoder sequence (length ``s_i``): rectangular ``t_i x s_i``
  sub-problems, padding-free on both sides.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.attention.fused_long import FMHA_GROUPED_EFFICIENCY
from repro.core.padding import PackedSeqs
from repro.gpusim.memory import BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.grouped_gemm import (
    GemmProblem,
    SchedulerKind,
    grouped_gemm_launch,
)
from repro.kernels.reduction import full_reduction_launch
from repro.kernels.softmax import softmax_reference

#: row-strip height for the causal decomposition (one CTA tile row)
CAUSAL_STRIP = 128


def causal_strip_problems(
    seq_lens: Sequence[int],
    num_heads: int,
    head_size: int,
    strip: int = CAUSAL_STRIP,
) -> list[GemmProblem]:
    """Grouped-GEMM sub-problems covering each unit's lower triangle.

    For a length-``L`` unit: strips ``i = 0..ceil(L/strip)-1`` of shape
    ``min(strip, L - i*strip) x min(L, (i+1)*strip) x head_size``.
    Summed over strips this covers the triangle at strip granularity —
    roughly half the square's FLOPs for long sequences.
    """
    problems = []
    for length in seq_lens:
        length = int(length)
        strips = math.ceil(length / strip)
        for _ in range(num_heads):
            for i in range(strips):
                rows = min(strip, length - i * strip)
                cols = min(length, (i + 1) * strip)
                problems.append(GemmProblem(m=rows, n=cols, k=head_size))
    return problems


def cross_problems(
    tgt_lens: Sequence[int],
    src_lens: Sequence[int],
    num_heads: int,
    head_size: int,
) -> list[GemmProblem]:
    """Rectangular ``tgt x src`` sub-problems for cross-attention."""
    if len(tgt_lens) != len(src_lens):
        raise ValueError(
            f"{len(tgt_lens)} target vs {len(src_lens)} source sequences"
        )
    return [
        GemmProblem(m=int(t), n=int(s), k=head_size)
        for t, s in zip(tgt_lens, src_lens)
        for _ in range(num_heads)
    ]


def _stats_bytes(seq_lens: Sequence[int], heads: int) -> float:
    return float(sum(2 * int(l) * heads for l in seq_lens)) * BYTES_PER_FP32


def causal_self_mha(
    qkv_packed: np.ndarray,
    qkv_bias: np.ndarray,
    packing: PackedSeqs,
    num_heads: int,
    *,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    ctx: ExecutionContext | None = None,
    category: str = "self_attention",
) -> np.ndarray:
    """Padding-free causal MHA on a packed ``[T, 3H]`` QKV tensor.

    Numerically: for every (sequence, head), position ``i`` attends to
    positions ``0..i`` only.  Cost: two grouped GEMMs over the causal
    row-strip decomposition plus the lightweight full reduction.
    """
    tokens, three_hidden = qkv_packed.shape
    if tokens != packing.total_tokens:
        raise ValueError(
            f"{tokens} packed rows != packing total {packing.total_tokens}"
        )
    if qkv_bias.shape != (three_hidden,):
        raise ValueError(f"bias shape {qkv_bias.shape} != ({three_hidden},)")
    hidden = three_hidden // 3
    head_size = hidden // num_heads
    context = resolve_context(ctx)
    scale = 1.0 / math.sqrt(head_size)

    biased = qkv_packed + qkv_bias
    q_all = biased[:, :hidden]
    k_all = biased[:, hidden : 2 * hidden]
    v_all = biased[:, 2 * hidden :]

    seq_lens = [int(length) for length in packing.seq_lens]
    out = np.empty((tokens, hidden), dtype=qkv_packed.dtype)
    for b in range(packing.batch):
        rows = packing.rows_of(b)
        length = seq_lens[b]
        causal = np.tril(np.ones((length, length), dtype=bool))
        for h in range(num_heads):
            cols = slice(h * head_size, (h + 1) * head_size)
            scores = (q_all[rows, cols] @ k_all[rows, cols].T) * scale
            scores = np.where(causal, scores, -np.inf)
            out[rows, cols] = softmax_reference(scores) @ v_all[rows, cols]

    problems = causal_strip_problems(seq_lens, num_heads, head_size)
    context.launch(
        grouped_gemm_launch(
            problems,
            context.device,
            scheduler=scheduler,
            name="causal_grouped_qk",
            category=category,
            extra_bytes=_stats_bytes(seq_lens, num_heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    unit_lens = [length for length in seq_lens for _ in range(num_heads)]
    context.launch(full_reduction_launch(unit_lens, heads=1, category=category))
    # second grouped GEMM: probs (strip rows x covered cols) @ V
    problems_pv = [
        GemmProblem(m=p.m, n=head_size, k=p.n) for p in problems
    ]
    context.launch(
        grouped_gemm_launch(
            problems_pv,
            context.device,
            scheduler=scheduler,
            name="causal_grouped_pv",
            category=category,
            extra_bytes=_stats_bytes(seq_lens, num_heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    return out


def causal_cross_mha(
    q_packed: np.ndarray,
    q_bias: np.ndarray,
    kv_packed: np.ndarray,
    kv_bias: np.ndarray,
    tgt_packing: PackedSeqs,
    src_packing: PackedSeqs,
    num_heads: int,
    *,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    ctx: ExecutionContext | None = None,
    category: str = "cross_attention",
) -> np.ndarray:
    """Padding-free cross-attention: packed decoder queries against packed
    encoder keys/values.

    ``q_packed`` is ``[T_tgt, H]``; ``kv_packed`` is ``[T_src, 2H]``
    (fused K|V, the encoder-side projection).  Despite the name, cross
    attention is *not* causally masked — the decoder may see the whole
    source sentence; the name marks its place in the decoder layer.
    """
    if tgt_packing.batch != src_packing.batch:
        raise ValueError(
            f"target batch {tgt_packing.batch} != source batch "
            f"{src_packing.batch}"
        )
    t_tokens, hidden = q_packed.shape
    if t_tokens != tgt_packing.total_tokens:
        raise ValueError(
            f"{t_tokens} query rows != target packing "
            f"{tgt_packing.total_tokens}"
        )
    s_tokens, two_hidden = kv_packed.shape
    if s_tokens != src_packing.total_tokens:
        raise ValueError(
            f"{s_tokens} key/value rows != source packing "
            f"{src_packing.total_tokens}"
        )
    if two_hidden != 2 * hidden:
        raise ValueError(
            f"KV width {two_hidden} != 2 x query width {hidden}"
        )
    head_size = hidden // num_heads
    context = resolve_context(ctx)
    scale = 1.0 / math.sqrt(head_size)

    q_all = q_packed + q_bias
    kv = kv_packed + kv_bias
    k_all = kv[:, :hidden]
    v_all = kv[:, hidden:]

    tgt_lens = [int(v) for v in tgt_packing.seq_lens]
    src_lens = [int(v) for v in src_packing.seq_lens]
    out = np.empty((t_tokens, hidden), dtype=q_packed.dtype)
    for b in range(tgt_packing.batch):
        t_rows = tgt_packing.rows_of(b)
        s_rows = src_packing.rows_of(b)
        for h in range(num_heads):
            cols = slice(h * head_size, (h + 1) * head_size)
            scores = (q_all[t_rows, cols] @ k_all[s_rows, cols].T) * scale
            out[t_rows, cols] = (
                softmax_reference(scores) @ v_all[s_rows, cols]
            )

    problems = cross_problems(tgt_lens, src_lens, num_heads, head_size)
    context.launch(
        grouped_gemm_launch(
            problems,
            context.device,
            scheduler=scheduler,
            name="cross_grouped_qk",
            category=category,
            extra_bytes=_stats_bytes(tgt_lens, num_heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    unit_lens = [length for length in tgt_lens for _ in range(num_heads)]
    context.launch(full_reduction_launch(unit_lens, heads=1, category=category))
    problems_pv = [
        GemmProblem(m=p.m, n=head_size, k=p.n) for p in problems
    ]
    context.launch(
        grouped_gemm_launch(
            problems_pv,
            context.device,
            scheduler=scheduler,
            name="cross_grouped_pv",
            category=category,
            extra_bytes=_stats_bytes(tgt_lens, num_heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    return out
