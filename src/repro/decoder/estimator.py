"""Shape-only cost estimation for the decoder (lock-step with the
numeric :mod:`repro.decoder.layer`, enforced by tests)."""

from __future__ import annotations

import numpy as np

from repro.attention.fused_long import FMHA_GROUPED_EFFICIENCY
from repro.core.config import BertConfig, OptimizationConfig
from repro.core.estimator import _estimate_ffn, _estimate_layernorm
from repro.decoder.causal import (
    _stats_bytes,
    causal_strip_problems,
    cross_problems,
)
from repro.gpusim.stream import ExecutionContext
from repro.kernels.gemm import gemm_launch
from repro.kernels.grouped_gemm import (
    GemmProblem,
    SchedulerKind,
    grouped_gemm_launch,
)
from repro.kernels.packing import pack_launch, unpack_launch
from repro.kernels.prefix_sum import prefix_sum_launch
from repro.kernels.reduction import full_reduction_launch


def _estimate_grouped_attention(
    ctx: ExecutionContext,
    problems: list[GemmProblem],
    row_lens: list[int],
    heads: int,
    head_size: int,
    scheduler: SchedulerKind,
    name_prefix: str,
    category: str,
) -> None:
    ctx.launch(
        grouped_gemm_launch(
            problems,
            ctx.device,
            scheduler=scheduler,
            name=f"{name_prefix}_grouped_qk",
            category=category,
            extra_bytes=_stats_bytes(row_lens, heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    unit_lens = [length for length in row_lens for _ in range(heads)]
    ctx.launch(full_reduction_launch(unit_lens, heads=1, category=category))
    problems_pv = [GemmProblem(m=p.m, n=head_size, k=p.n) for p in problems]
    ctx.launch(
        grouped_gemm_launch(
            problems_pv,
            ctx.device,
            scheduler=scheduler,
            name=f"{name_prefix}_grouped_pv",
            category=category,
            extra_bytes=_stats_bytes(row_lens, heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )


def estimate_decoder_layer(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    tgt_lens: np.ndarray,
    src_lens: np.ndarray,
) -> None:
    """One packed decoder layer's launch chain (see decoder_layer_packed)."""
    if not opt.remove_padding:
        raise ValueError("the packed decoder requires remove_padding")
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size
    t_tokens = int(np.sum(tgt_lens))
    s_tokens = int(np.sum(src_lens))
    tgt = [int(v) for v in tgt_lens]
    src = [int(v) for v in src_lens]
    scheduler = (
        SchedulerKind.WARP_PREFETCH
        if opt.warp_prefetch_scheduler
        else SchedulerKind.PER_THREAD
    )

    ctx.launch(
        gemm_launch(
            t_tokens, 3 * hidden, hidden, name="dec_gemm_self_qkv",
            category="gemm0",
        )
    )
    _estimate_grouped_attention(
        ctx,
        causal_strip_problems(tgt, heads, head_size),
        tgt,
        heads,
        head_size,
        scheduler,
        "causal",
        "self_attention",
    )
    ctx.launch(
        gemm_launch(
            t_tokens, hidden, hidden, name="dec_gemm_self_out",
            category="gemm1",
        )
    )
    _estimate_layernorm(ctx, t_tokens, hidden, opt.fuse_layernorm, "layernorm0")

    ctx.launch(
        gemm_launch(
            t_tokens, hidden, hidden, name="dec_gemm_cross_q",
            category="gemm0",
        )
    )
    ctx.launch(
        gemm_launch(
            s_tokens, 2 * hidden, hidden, name="dec_gemm_cross_kv",
            category="gemm0",
        )
    )
    _estimate_grouped_attention(
        ctx,
        cross_problems(tgt, src, heads, head_size),
        tgt,
        heads,
        head_size,
        scheduler,
        "cross",
        "cross_attention",
    )
    ctx.launch(
        gemm_launch(
            t_tokens, hidden, hidden, name="dec_gemm_cross_out",
            category="gemm1",
        )
    )
    _estimate_layernorm(ctx, t_tokens, hidden, opt.fuse_layernorm, "layernorm1")

    _estimate_ffn(
        ctx, t_tokens, config, opt.fuse_gelu, name_prefix="dec_"
    )
    ctx.launch(
        gemm_launch(
            t_tokens, hidden, config.ffn_size, name="dec_gemm3",
            category="gemm3",
        )
    )
    _estimate_layernorm(ctx, t_tokens, hidden, opt.fuse_layernorm, "layernorm2")


def estimate_seq2seq(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    src_lens: np.ndarray,
    src_max_seq: int,
    tgt_lens: np.ndarray,
    tgt_max_seq: int,
) -> float:
    """Full encoder-decoder launch chain; returns the modelled time."""
    from repro.core.estimator import estimate_encoder_layer

    before = ctx.elapsed_us()
    hidden = config.hidden_size
    s_tokens = int(np.sum(src_lens))
    t_tokens = int(np.sum(tgt_lens))

    # encode (packed memory stays packed — no unpack at the boundary)
    ctx.launch(prefix_sum_launch(len(src_lens), src_max_seq))
    ctx.launch(pack_launch(s_tokens, hidden))
    for _ in range(config.num_layers):
        estimate_encoder_layer(ctx, config, opt, src_lens, src_max_seq)

    # decode
    ctx.launch(prefix_sum_launch(len(tgt_lens), tgt_max_seq))
    ctx.launch(pack_launch(t_tokens, hidden))
    for _ in range(config.num_layers):
        estimate_decoder_layer(ctx, config, opt, tgt_lens, src_lens)
    ctx.launch(
        unpack_launch(t_tokens, len(tgt_lens) * tgt_max_seq, hidden)
    )
    return ctx.elapsed_us() - before


# ----------------------------------------------------------------------
# mixed prefill/decode round pricing (the decode serving path)

#: largest power-of-two quantization target for decode round shapes;
#: far above any realistic in-flight KV total, so quantize_pow2 never
#: rejects a legal round
_POW2_CAP = 1 << 62


def quantize_pow2(n: int) -> int:
    """Smallest power of two holding ``n`` — the decode-side analogue of
    :func:`repro.workloads.batching.quantize_tile`.

    Decode batches and KV totals drift every round (each step adds one
    token per active request), so a fixed tile list would either churn
    keys or need per-workload tuning; a geometric ladder keeps the
    number of distinct graph keys logarithmic in the largest round while
    each tile serves a 2x range of shapes.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    p = 1
    while p < n:
        p <<= 1
        if p > _POW2_CAP:  # pragma: no cover - defensive
            raise ValueError(f"{n} too large to quantize")
    return p


def canonical_decode_contexts(batch_tile: int, kv_tile: int) -> np.ndarray:
    """The canonical per-sequence context layout a decode tile is priced as.

    ``kv_tile`` total context rows spread as evenly as possible over
    ``batch_tile`` sequences (remainder to the low ranks).  Decode cost
    is linear in the context total, so any split prices the same FLOPs;
    the even split is simply the deterministic representative that makes
    the tile key a pure function of ``(batch_tile, kv_tile)``.
    """
    if batch_tile <= 0:
        raise ValueError(f"batch_tile must be positive, got {batch_tile}")
    if kv_tile < batch_tile:
        raise ValueError(
            f"kv_tile {kv_tile} cannot give {batch_tile} sequences one "
            "context row each"
        )
    base, rem = divmod(int(kv_tile), int(batch_tile))
    lens = [base + 1] * rem + [base] * (batch_tile - rem)
    return np.asarray(lens, dtype=np.int64)


def estimate_decode_round(
    ctx: ExecutionContext,
    config: BertConfig,
    prefill_lens: np.ndarray,
    decode_contexts: np.ndarray,
    *,
    block_tokens: int,
) -> float:
    """Launch chain of one mixed prefill/decode round; returns modelled us.

    The round is the decode cell applied to one packed megabatch: a
    fused QKV GEMM over every row (prefill tokens and single decode
    tokens share the tile), a packed varlen prefill attention over the
    prompt segments, the batched paged decode attention over the ragged
    in-flight contexts, and one output GEMM over the produced rows (one
    per prefill request's first token, one per decode step).
    """
    from repro.attention.flash_varlen import (
        flash_varlen_decode_launch,
        flash_varlen_launch,
    )

    p_lens = np.asarray(prefill_lens, dtype=np.int64)
    d_ctx = np.asarray(decode_contexts, dtype=np.int64)
    if p_lens.size == 0 and d_ctx.size == 0:
        raise ValueError("a decode round needs prefill or decode work")
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size
    tokens = int(p_lens.sum()) + int(d_ctx.size)
    rows_out = int(p_lens.size) + int(d_ctx.size)

    before = ctx.elapsed_us()
    ctx.launch(
        gemm_launch(
            tokens, 3 * hidden, hidden,
            name="decode_qkv", category="decode_gemm",
        )
    )
    if p_lens.size:
        ctx.launch(
            flash_varlen_launch(
                p_lens, heads, head_size, category="decode_attention"
            )
        )
    if d_ctx.size:
        ctx.launch(
            flash_varlen_decode_launch(
                d_ctx, heads, head_size, block_tokens=block_tokens
            )
        )
    ctx.launch(
        gemm_launch(
            rows_out, hidden, hidden,
            name="decode_out", category="decode_gemm",
        )
    )
    return ctx.elapsed_us() - before


def estimate_decode_round_looped(
    ctx: ExecutionContext,
    config: BertConfig,
    prefill_lens: np.ndarray,
    decode_contexts: np.ndarray,
) -> float:
    """Per-request decode round pricing — the degraded rung.

    Every prefill and every decode step runs as its own kernel chain
    (M=1 GEMMs, per-sequence packed decode attention, no paged varlen
    kernel and no graph reuse): the conservative fallback the decode
    degradation ladder steps down to when the batched varlen kernel is
    the thing faulting.  Numerics are unchanged — both rungs share the
    same per-head math — only the cost plane walks back.
    """
    from repro.attention.flash_varlen import flash_varlen_launch
    from repro.decoder.generation import decode_attention_launch

    p_lens = np.asarray(prefill_lens, dtype=np.int64)
    d_ctx = np.asarray(decode_contexts, dtype=np.int64)
    if p_lens.size == 0 and d_ctx.size == 0:
        raise ValueError("a decode round needs prefill or decode work")
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size

    before = ctx.elapsed_us()
    for length in p_lens:
        ctx.launch(
            gemm_launch(
                int(length), 3 * hidden, hidden,
                name="decode_qkv", category="decode_gemm",
            )
        )
        ctx.launch(
            flash_varlen_launch(
                np.asarray([length], dtype=np.int64), heads, head_size,
                category="decode_attention",
            )
        )
        ctx.launch(
            gemm_launch(
                1, hidden, hidden, name="decode_out", category="decode_gemm"
            )
        )
    for context in d_ctx:
        ctx.launch(
            gemm_launch(
                1, 3 * hidden, hidden,
                name="decode_qkv", category="decode_gemm",
            )
        )
        ctx.launch(
            decode_attention_launch(
                np.asarray([context], dtype=np.int64), heads, head_size
            )
        )
        ctx.launch(
            gemm_launch(
                1, hidden, hidden, name="decode_out", category="decode_gemm"
            )
        )
    return ctx.elapsed_us() - before


def estimate_decode_round_tiled(
    ctx: ExecutionContext,
    config: BertConfig,
    *,
    prefill_tile: int,
    decode_batch: int,
    kv_tokens: int,
    max_seq_len: int,
    block_tokens: int,
    cache=None,
) -> float:
    """Tile-quantized, graph-cached decode round pricing.

    The round's ragged shape is quantized onto a canonical
    representative — ``prefill_tile`` laid out as
    :func:`~repro.core.estimator.canonical_tile_lengths`, the decode
    batch and KV total rounded to powers of two and laid out as
    :func:`canonical_decode_contexts` — so the graph key
    ``("decode", device, cluster, config, prefill_tile, batch_tile,
    kv_tile, block, max_seq_len)`` recurs across rounds and steady-state
    decode serving replays captured graphs exactly like the encoder tile
    path.  Canonical shapes dominate the real ones (every quantization
    rounds up), so the replayed cost never under-prices a real round.
    """
    from repro.core.estimator import canonical_tile_lengths
    from repro.gpusim.stream import NullContext

    if prefill_tile < 0:
        raise ValueError(f"prefill_tile must be >= 0, got {prefill_tile}")
    if decode_batch < 0:
        raise ValueError(f"decode_batch must be >= 0, got {decode_batch}")
    if prefill_tile == 0 and decode_batch == 0:
        raise ValueError("a decode round needs prefill or decode work")
    p_lens = (
        canonical_tile_lengths(prefill_tile, max_seq_len)
        if prefill_tile
        else np.asarray([], dtype=np.int64)
    )
    if decode_batch:
        batch_tile = quantize_pow2(decode_batch)
        kv_tile = max(quantize_pow2(max(kv_tokens, 1)), batch_tile)
        d_ctx = canonical_decode_contexts(batch_tile, kv_tile)
    else:
        batch_tile = 0
        kv_tile = 0
        d_ctx = np.asarray([], dtype=np.int64)
    if cache is None or isinstance(ctx, NullContext):
        return estimate_decode_round(
            ctx, config, p_lens, d_ctx, block_tokens=block_tokens
        )
    key = (
        "decode",
        ctx.device,
        ctx.cluster,
        config,
        int(prefill_tile),
        int(batch_tile),
        int(kv_tile),
        int(block_tokens),
        int(max_seq_len),
    )
    return cache.replay_or_capture(
        key,
        ctx,
        lambda c: estimate_decode_round(
            c, config, p_lens, d_ctx, block_tokens=block_tokens
        ),
    )
