"""Shape-only cost estimation for the decoder (lock-step with the
numeric :mod:`repro.decoder.layer`, enforced by tests)."""

from __future__ import annotations

import numpy as np

from repro.attention.fused_long import FMHA_GROUPED_EFFICIENCY
from repro.core.config import BertConfig, OptimizationConfig
from repro.core.estimator import _estimate_ffn, _estimate_layernorm
from repro.decoder.causal import (
    _stats_bytes,
    causal_strip_problems,
    cross_problems,
)
from repro.gpusim.stream import ExecutionContext
from repro.kernels.gemm import gemm_launch
from repro.kernels.grouped_gemm import (
    GemmProblem,
    SchedulerKind,
    grouped_gemm_launch,
)
from repro.kernels.packing import pack_launch, unpack_launch
from repro.kernels.prefix_sum import prefix_sum_launch
from repro.kernels.reduction import full_reduction_launch


def _estimate_grouped_attention(
    ctx: ExecutionContext,
    problems: list[GemmProblem],
    row_lens: list[int],
    heads: int,
    head_size: int,
    scheduler: SchedulerKind,
    name_prefix: str,
    category: str,
) -> None:
    ctx.launch(
        grouped_gemm_launch(
            problems,
            ctx.device,
            scheduler=scheduler,
            name=f"{name_prefix}_grouped_qk",
            category=category,
            extra_bytes=_stats_bytes(row_lens, heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )
    unit_lens = [length for length in row_lens for _ in range(heads)]
    ctx.launch(full_reduction_launch(unit_lens, heads=1, category=category))
    problems_pv = [GemmProblem(m=p.m, n=head_size, k=p.n) for p in problems]
    ctx.launch(
        grouped_gemm_launch(
            problems_pv,
            ctx.device,
            scheduler=scheduler,
            name=f"{name_prefix}_grouped_pv",
            category=category,
            extra_bytes=_stats_bytes(row_lens, heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )


def estimate_decoder_layer(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    tgt_lens: np.ndarray,
    src_lens: np.ndarray,
) -> None:
    """One packed decoder layer's launch chain (see decoder_layer_packed)."""
    if not opt.remove_padding:
        raise ValueError("the packed decoder requires remove_padding")
    hidden = config.hidden_size
    heads = config.num_heads
    head_size = config.head_size
    t_tokens = int(np.sum(tgt_lens))
    s_tokens = int(np.sum(src_lens))
    tgt = [int(v) for v in tgt_lens]
    src = [int(v) for v in src_lens]
    scheduler = (
        SchedulerKind.WARP_PREFETCH
        if opt.warp_prefetch_scheduler
        else SchedulerKind.PER_THREAD
    )

    ctx.launch(
        gemm_launch(
            t_tokens, 3 * hidden, hidden, name="dec_gemm_self_qkv",
            category="gemm0",
        )
    )
    _estimate_grouped_attention(
        ctx,
        causal_strip_problems(tgt, heads, head_size),
        tgt,
        heads,
        head_size,
        scheduler,
        "causal",
        "self_attention",
    )
    ctx.launch(
        gemm_launch(
            t_tokens, hidden, hidden, name="dec_gemm_self_out",
            category="gemm1",
        )
    )
    _estimate_layernorm(ctx, t_tokens, hidden, opt.fuse_layernorm, "layernorm0")

    ctx.launch(
        gemm_launch(
            t_tokens, hidden, hidden, name="dec_gemm_cross_q",
            category="gemm0",
        )
    )
    ctx.launch(
        gemm_launch(
            s_tokens, 2 * hidden, hidden, name="dec_gemm_cross_kv",
            category="gemm0",
        )
    )
    _estimate_grouped_attention(
        ctx,
        cross_problems(tgt, src, heads, head_size),
        tgt,
        heads,
        head_size,
        scheduler,
        "cross",
        "cross_attention",
    )
    ctx.launch(
        gemm_launch(
            t_tokens, hidden, hidden, name="dec_gemm_cross_out",
            category="gemm1",
        )
    )
    _estimate_layernorm(ctx, t_tokens, hidden, opt.fuse_layernorm, "layernorm1")

    _estimate_ffn(
        ctx, t_tokens, config, opt.fuse_gelu, name_prefix="dec_"
    )
    ctx.launch(
        gemm_launch(
            t_tokens, hidden, config.ffn_size, name="dec_gemm3",
            category="gemm3",
        )
    )
    _estimate_layernorm(ctx, t_tokens, hidden, opt.fuse_layernorm, "layernorm2")


def estimate_seq2seq(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    src_lens: np.ndarray,
    src_max_seq: int,
    tgt_lens: np.ndarray,
    tgt_max_seq: int,
) -> float:
    """Full encoder-decoder launch chain; returns the modelled time."""
    from repro.core.estimator import estimate_encoder_layer

    before = ctx.elapsed_us()
    hidden = config.hidden_size
    s_tokens = int(np.sum(src_lens))
    t_tokens = int(np.sum(tgt_lens))

    # encode (packed memory stays packed — no unpack at the boundary)
    ctx.launch(prefix_sum_launch(len(src_lens), src_max_seq))
    ctx.launch(pack_launch(s_tokens, hidden))
    for _ in range(config.num_layers):
        estimate_encoder_layer(ctx, config, opt, src_lens, src_max_seq)

    # decode
    ctx.launch(prefix_sum_launch(len(tgt_lens), tgt_max_seq))
    ctx.launch(pack_launch(t_tokens, hidden))
    for _ in range(config.num_layers):
        estimate_decoder_layer(ctx, config, opt, tgt_lens, src_lens)
    ctx.launch(
        unpack_launch(t_tokens, len(tgt_lens) * tgt_max_seq, hidden)
    )
    return ctx.elapsed_us() - before
