"""Plain-NumPy oracle for the decoder stack."""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import BertConfig
from repro.decoder.weights import DecoderLayerWeights
from repro.kernels.activation import gelu_reference
from repro.kernels.layernorm import layernorm_reference
from repro.kernels.softmax import softmax_reference


def _split_heads(x: np.ndarray, batch: int, seq: int, heads: int) -> np.ndarray:
    hidden = x.shape[-1]
    return (
        x.reshape(batch, seq, heads, hidden // heads).transpose(0, 2, 1, 3)
    )


def reference_causal_attention(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Causal attention over padded ``[B, H, S, d]`` tensors.

    Position ``i`` attends to valid positions ``j <= i`` only.
    """
    batch, heads, seq, head_size = q.shape
    scores = q @ np.swapaxes(k, -1, -2) / math.sqrt(head_size)
    causal = np.tril(np.ones((seq, seq), dtype=bool))
    allowed = causal[None, None] & mask[:, None, None, :].astype(bool)
    scores = np.where(allowed, scores, -1e30)
    return softmax_reference(scores) @ v


def reference_cross_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    src_mask: np.ndarray,
) -> np.ndarray:
    """Cross attention: decoder queries over valid encoder positions."""
    head_size = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / math.sqrt(head_size)
    allowed = src_mask[:, None, None, :].astype(bool)
    scores = np.where(allowed, scores, -1e30)
    return softmax_reference(scores) @ v


def reference_decoder_layer(
    tgt: np.ndarray,
    memory: np.ndarray,
    weights: DecoderLayerWeights,
    config: BertConfig,
    tgt_mask: np.ndarray,
    src_mask: np.ndarray,
) -> np.ndarray:
    """One post-LN decoder layer on padded ``[B, S, H]`` batches."""
    batch, tgt_seq, hidden = tgt.shape
    src_seq = memory.shape[1]
    heads = config.num_heads
    flat = tgt.reshape(batch * tgt_seq, hidden)

    # --- causal self-attention ---
    qkv = flat @ weights.self_qkv_weight + weights.self_qkv_bias
    q, k, v = (
        _split_heads(
            qkv[:, i * hidden : (i + 1) * hidden], batch, tgt_seq, heads
        )
        for i in range(3)
    )
    self_attn = (
        reference_causal_attention(q, k, v, tgt_mask)
        .transpose(0, 2, 1, 3)
        .reshape(batch * tgt_seq, hidden)
    )
    ln0 = layernorm_reference(
        self_attn @ weights.self_out_weight + weights.self_out_bias + flat,
        weights.ln0_gamma,
        weights.ln0_beta,
        config.layernorm_eps,
    )

    # --- cross-attention against the encoder memory ---
    mem_flat = memory.reshape(batch * src_seq, hidden)
    q = _split_heads(
        ln0 @ weights.cross_q_weight + weights.cross_q_bias,
        batch,
        tgt_seq,
        heads,
    )
    kv = mem_flat @ weights.cross_kv_weight + weights.cross_kv_bias
    k = _split_heads(kv[:, :hidden], batch, src_seq, heads)
    v = _split_heads(kv[:, hidden:], batch, src_seq, heads)
    cross = (
        reference_cross_attention(q, k, v, src_mask)
        .transpose(0, 2, 1, 3)
        .reshape(batch * tgt_seq, hidden)
    )
    ln1 = layernorm_reference(
        cross @ weights.cross_out_weight + weights.cross_out_bias + ln0,
        weights.ln1_gamma,
        weights.ln1_beta,
        config.layernorm_eps,
    )

    # --- FFN ---
    ffn = gelu_reference(ln1 @ weights.ffn_in_weight + weights.ffn_in_bias)
    ln2 = layernorm_reference(
        ffn @ weights.ffn_out_weight + weights.ffn_out_bias + ln1,
        weights.ln2_gamma,
        weights.ln2_beta,
        config.layernorm_eps,
    )
    return ln2.reshape(batch, tgt_seq, hidden)


def reference_decoder(
    tgt: np.ndarray,
    memory: np.ndarray,
    layers: tuple[DecoderLayerWeights, ...],
    config: BertConfig,
    tgt_mask: np.ndarray,
    src_mask: np.ndarray,
) -> np.ndarray:
    """Stacked decoder-layer oracle on padded batches."""
    out = tgt
    for weights in layers:
        out = reference_decoder_layer(
            out, memory, weights, config, tgt_mask, src_mask
        )
    return out
