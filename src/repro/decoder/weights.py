"""Decoder weight containers (Figure 1's decoder block)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BertConfig


@dataclass(frozen=True)
class DecoderLayerWeights:
    """Parameters of one decoder layer: causal self-attention,
    cross-attention, FFN, each followed by layernorm."""

    #: packed QKV for causal self-attention, ``[H, 3H]``
    self_qkv_weight: np.ndarray
    self_qkv_bias: np.ndarray
    self_out_weight: np.ndarray
    self_out_bias: np.ndarray
    ln0_gamma: np.ndarray
    ln0_beta: np.ndarray
    #: decoder-side query projection for cross-attention, ``[H, H]``
    cross_q_weight: np.ndarray
    cross_q_bias: np.ndarray
    #: encoder-side fused K|V projection, ``[H, 2H]``
    cross_kv_weight: np.ndarray
    cross_kv_bias: np.ndarray
    cross_out_weight: np.ndarray
    cross_out_bias: np.ndarray
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray
    ffn_in_weight: np.ndarray
    ffn_in_bias: np.ndarray
    ffn_out_weight: np.ndarray
    ffn_out_bias: np.ndarray
    ln2_gamma: np.ndarray
    ln2_beta: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.self_qkv_weight.shape[0]
        ffn = self.ffn_in_weight.shape[1]
        expectations = {
            "self_qkv_weight": (hidden, 3 * hidden),
            "self_qkv_bias": (3 * hidden,),
            "self_out_weight": (hidden, hidden),
            "self_out_bias": (hidden,),
            "cross_q_weight": (hidden, hidden),
            "cross_q_bias": (hidden,),
            "cross_kv_weight": (hidden, 2 * hidden),
            "cross_kv_bias": (2 * hidden,),
            "cross_out_weight": (hidden, hidden),
            "cross_out_bias": (hidden,),
            "ffn_in_weight": (hidden, ffn),
            "ffn_in_bias": (ffn,),
            "ffn_out_weight": (ffn, hidden),
            "ffn_out_bias": (hidden,),
        }
        for name in ("ln0", "ln1", "ln2"):
            expectations[f"{name}_gamma"] = (hidden,)
            expectations[f"{name}_beta"] = (hidden,)
        for name, shape in expectations.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(
                    f"{name} has shape {actual}, expected {shape}"
                )

    @property
    def hidden_size(self) -> int:
        return self.self_qkv_weight.shape[0]


def init_decoder_weights(
    config: BertConfig, seed: int = 0
) -> tuple[DecoderLayerWeights, ...]:
    """Deterministic decoder stack weights (one entry per layer)."""
    rng = np.random.default_rng(seed)
    h = config.hidden_size
    f = config.ffn_size

    def w(*shape: int) -> np.ndarray:
        return rng.normal(0.0, 0.02, size=shape).astype(np.float32)

    def gamma() -> np.ndarray:
        return (1.0 + rng.normal(0.0, 0.01, size=h)).astype(np.float32)

    layers = []
    for _ in range(config.num_layers):
        layers.append(
            DecoderLayerWeights(
                self_qkv_weight=w(h, 3 * h),
                self_qkv_bias=w(3 * h),
                self_out_weight=w(h, h),
                self_out_bias=w(h),
                ln0_gamma=gamma(),
                ln0_beta=w(h),
                cross_q_weight=w(h, h),
                cross_q_bias=w(h),
                cross_kv_weight=w(h, 2 * h),
                cross_kv_bias=w(2 * h),
                cross_out_weight=w(h, h),
                cross_out_bias=w(h),
                ln1_gamma=gamma(),
                ln1_beta=w(h),
                ffn_in_weight=w(h, f),
                ffn_in_bias=w(f),
                ffn_out_weight=w(f, h),
                ffn_out_bias=w(h),
                ln2_gamma=gamma(),
                ln2_beta=w(h),
            )
        )
    return tuple(layers)
