"""Encoder-decoder extension (§V / §II-A of the paper).

The paper optimises an encoder-only BERT but notes that "one can easily
extend to other transformers that contain the decoder part using the
optimizations and algorithm proposed in the paper".  This package is that
extension: the zero-padding algorithm and the fused-MHA machinery applied
to a Transformer *decoder* —

* **causal self-attention**, padding-free: the short kernel's triangular
  work, and a grouped-GEMM formulation where each attention unit's lower
  triangle is decomposed into row-strip sub-problems (variable shapes —
  exactly what grouped GEMM exists for);
* **cross-attention** over *two* packed batches (decoder queries against
  encoder keys/values of different lengths), again as grouped GEMM with
  rectangular ``tgt_len x src_len`` sub-problems;
* a full packed decoder layer and an encoder-decoder model validated
  against a plain NumPy oracle.
"""

from repro.decoder.causal import (
    causal_cross_mha,
    causal_self_mha,
    causal_strip_problems,
    cross_problems,
)
from repro.decoder.estimator import (
    canonical_decode_contexts,
    estimate_decode_round,
    estimate_decode_round_looped,
    estimate_decode_round_tiled,
    quantize_pow2,
)
from repro.decoder.generation import (
    DecodeCellWeights,
    PackedKVCache,
    attend_to_cache,
    decode_attention_launch,
    decode_self_attention_step,
    generate_cell_reference,
    generation_traffic_ratio,
    init_decode_cell,
    max_decode_steps,
)
from repro.decoder.layer import decoder_layer_packed
from repro.decoder.paged_kv import (
    DEFAULT_KV_BLOCK_TOKENS,
    KVPressureError,
    PagedKVArena,
)
from repro.decoder.model import Seq2SeqModel
from repro.decoder.reference import (
    reference_causal_attention,
    reference_cross_attention,
    reference_decoder,
    reference_decoder_layer,
)
from repro.decoder.weights import DecoderLayerWeights, init_decoder_weights

__all__ = [
    "causal_cross_mha",
    "causal_self_mha",
    "causal_strip_problems",
    "cross_problems",
    "PackedKVCache",
    "decode_attention_launch",
    "decode_self_attention_step",
    "generation_traffic_ratio",
    "attend_to_cache",
    "DecodeCellWeights",
    "init_decode_cell",
    "generate_cell_reference",
    "max_decode_steps",
    "DEFAULT_KV_BLOCK_TOKENS",
    "KVPressureError",
    "PagedKVArena",
    "quantize_pow2",
    "canonical_decode_contexts",
    "estimate_decode_round",
    "estimate_decode_round_looped",
    "estimate_decode_round_tiled",
    "decoder_layer_packed",
    "Seq2SeqModel",
    "reference_causal_attention",
    "reference_cross_attention",
    "reference_decoder",
    "reference_decoder_layer",
    "DecoderLayerWeights",
    "init_decoder_weights",
]
