"""Packed decoder layer: the zero-padding algorithm applied to Figure 1's
decoder block (causal self-attention → cross-attention → FFN)."""

from __future__ import annotations

import numpy as np

from repro.core.config import BertConfig, OptimizationConfig
from repro.core.padding import PackedSeqs
from repro.decoder.causal import causal_cross_mha, causal_self_mha
from repro.decoder.weights import DecoderLayerWeights
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.activation import add_bias_gelu
from repro.kernels.gemm import gemm
from repro.kernels.grouped_gemm import SchedulerKind
from repro.kernels.layernorm import (
    add_bias_residual_layernorm,
    add_bias_residual_layernorm_unfused,
)


def _layernorm(
    x, bias, residual, gamma, beta, eps, fused, category, ctx
):
    if fused:
        return add_bias_residual_layernorm(
            x, bias, residual, gamma, beta, eps=eps, ctx=ctx,
            category=category,
        )
    return add_bias_residual_layernorm_unfused(
        x, bias, residual, gamma, beta, eps=eps, ctx=ctx, category=category
    )


def decoder_layer_packed(
    tgt_packed: np.ndarray,
    memory_packed: np.ndarray,
    weights: DecoderLayerWeights,
    config: BertConfig,
    opt: OptimizationConfig,
    tgt_packing: PackedSeqs,
    src_packing: PackedSeqs,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """One decoder layer on packed activations.

    ``tgt_packed``: ``[T_tgt, H]`` decoder-side activations;
    ``memory_packed``: ``[T_src, H]`` packed encoder output.  Everything
    stays packed; the causal and cross attentions are grouped-GEMM FMHA
    variants, so no padded work exists anywhere in the layer.
    """
    if not opt.remove_padding:
        raise ValueError(
            "the packed decoder layer requires remove_padding; the padded "
            "decoder baseline is intentionally not implemented"
        )
    if tgt_packed.shape[0] != tgt_packing.total_tokens:
        raise ValueError(
            f"{tgt_packed.shape[0]} target rows != packing "
            f"{tgt_packing.total_tokens}"
        )
    if memory_packed.shape[0] != src_packing.total_tokens:
        raise ValueError(
            f"{memory_packed.shape[0]} memory rows != packing "
            f"{src_packing.total_tokens}"
        )
    context = resolve_context(ctx)
    scheduler = (
        SchedulerKind.WARP_PREFETCH
        if opt.warp_prefetch_scheduler
        else SchedulerKind.PER_THREAD
    )
    eps = config.layernorm_eps

    # --- causal self-attention ---
    qkv = gemm(
        tgt_packed,
        weights.self_qkv_weight,
        ctx=context,
        name="dec_gemm_self_qkv",
        category="gemm0",
    )
    self_attn = causal_self_mha(
        qkv,
        weights.self_qkv_bias,
        tgt_packing,
        config.num_heads,
        scheduler=scheduler,
        ctx=context,
    )
    proj = gemm(
        self_attn,
        weights.self_out_weight,
        ctx=context,
        name="dec_gemm_self_out",
        category="gemm1",
    )
    ln0 = _layernorm(
        proj,
        weights.self_out_bias,
        tgt_packed,
        weights.ln0_gamma,
        weights.ln0_beta,
        eps,
        opt.fuse_layernorm,
        "layernorm0",
        context,
    )

    # --- cross-attention over the packed encoder memory ---
    q = gemm(
        ln0,
        weights.cross_q_weight,
        ctx=context,
        name="dec_gemm_cross_q",
        category="gemm0",
    )
    kv = gemm(
        memory_packed,
        weights.cross_kv_weight,
        ctx=context,
        name="dec_gemm_cross_kv",
        category="gemm0",
    )
    cross = causal_cross_mha(
        q,
        weights.cross_q_bias,
        kv,
        weights.cross_kv_bias,
        tgt_packing,
        src_packing,
        config.num_heads,
        scheduler=scheduler,
        ctx=context,
    )
    proj = gemm(
        cross,
        weights.cross_out_weight,
        ctx=context,
        name="dec_gemm_cross_out",
        category="gemm1",
    )
    ln1 = _layernorm(
        proj,
        weights.cross_out_bias,
        ln0,
        weights.ln1_gamma,
        weights.ln1_beta,
        eps,
        opt.fuse_layernorm,
        "layernorm1",
        context,
    )

    # --- FFN ---
    if opt.fuse_gelu:
        ffn = gemm(
            ln1,
            weights.ffn_in_weight,
            bias=weights.ffn_in_bias,
            activation="gelu",
            ctx=context,
            name="dec_gemm2_fused_bias_gelu",
            category="gemm2",
        )
    else:
        ffn = gemm(
            ln1, weights.ffn_in_weight, ctx=context, name="dec_gemm2",
            category="gemm2",
        )
        ffn = add_bias_gelu(
            ffn, weights.ffn_in_bias, ctx=context, category="activation"
        )
    down = gemm(
        ffn,
        weights.ffn_out_weight,
        ctx=context,
        name="dec_gemm3",
        category="gemm3",
    )
    return _layernorm(
        down,
        weights.ffn_out_bias,
        ln1,
        weights.ln2_gamma,
        weights.ln2_beta,
        eps,
        opt.fuse_layernorm,
        "layernorm2",
        context,
    )
