"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``experiments`` — list or run the paper's experiment harnesses;
* ``profile`` — run one configuration and print the kernel breakdown,
  optionally dumping a chrome://tracing JSON;
* ``compare`` — one-line end-to-end framework comparison for a shape;
* ``bench`` — wall-clock benchmark of the host execution engines
  (``--quick`` for a CI smoke run, ``--out`` to write the JSON,
  ``--check`` to gate on the output/stream-identity invariants,
  ``--workers``/``--executor`` to pick the fan-out: a thread pool or
  forked processes over shared-memory arena segments); prints the
  cache hit/miss/eviction table;
* ``serve-chaos`` — chaos-replay a serving trace with injected kernel
  faults, deadlines, retry/backoff and graceful degradation
  (``--workers``/``--executor`` compute independent requests in
  parallel); prints the cache hit/miss/eviction table and the SLO
  summary, and can export the observed replay (``--trace-out`` Chrome
  trace, ``--metrics-out`` JSONL);
* ``generate`` — serve autoregressive generation streams (synthetic
  traffic or ``--prompt-file``, one whitespace-tokenised prompt per
  line) through the mixed prefill/decode runtime: paged KV arena,
  continuous batching with a decode-priority knob, optional kernel
  chaos.  Prints the per-token latency table (TTFT + inter-token gaps);
  ``--check`` gates conservation, zero KV overflow allocations and
  bitwise equality of every served stream against the per-request
  decode loop; ``--out`` writes the report JSON for CI artifacts;
* ``metrics`` — replay a small serving trace with telemetry on and emit
  the metrics registry (``--format prom|json|text``, ``--check`` parses
  the Prometheus exposition back);
* ``loadtest`` — replay open-loop multi-tenant traffic (Poisson /
  bursty / diurnal arrivals, seeded flash crowds) through the admission
  gateway and print per-tenant SLO reports; the scenario is sized as
  fractions of the modelled GPU capacity so the flash crowd genuinely
  overloads the system.  ``--check`` gates conservation, SLO-tenant
  deadline attainment, batch-first shedding and (with ``--oracle``)
  bitwise equality of served outputs against the per-request oracle;
  ``--report-out`` writes the per-tenant report JSON for CI artifacts;
* ``devices`` — show the simulated device presets.

``bench`` accepts the same ``--trace-out``/``--metrics-out`` pair; there
they observe the continuous-serving steady-state run.

Command functions raise ``ValueError``/``GpuSimError`` on bad input;
:func:`main` converts those into a one-line message and exit code 2, the
same contract argparse uses for unparseable arguments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro.core.config import FAST_GELU, STEPWISE_PRESETS, BertConfig
from repro.core.parallel import EXECUTOR_KINDS
from repro.core.estimator import estimate_model
from repro.experiments import ALL_EXPERIMENTS
from repro.frameworks import all_frameworks
from repro.gpusim import (
    A10_SPEC,
    A100_SPEC,
    V100_SPEC,
    ExecutionContext,
    GpuSimError,
    ProfileReport,
)
from repro.gpusim.roofline import roofline_report
from repro.gpusim.trace import write_chrome_trace
from repro.serving.sharded import SHARD_MODES
from repro.workloads.generator import uniform_lengths

DEVICES = {spec.name: spec for spec in (A100_SPEC, V100_SPEC, A10_SPEC)}
#: CLI-selectable presets: the Figure 13 ladder plus the opt-in
#: fast-GELU preset (approximate within FAST_GELU_ATOL, never implied)
PRESETS = {
    preset.label: preset for preset in (*STEPWISE_PRESETS, FAST_GELU)
}


def _add_shape_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--max-seq-len", type=int, default=256)
    parser.add_argument("--alpha", type=float, default=0.6)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--device", choices=sorted(DEVICES), default=A100_SPEC.name
    )


def _workload(args: argparse.Namespace) -> tuple[BertConfig, np.ndarray]:
    config = BertConfig(num_layers=args.layers)
    rng = np.random.default_rng(args.seed)
    lens = uniform_lengths(args.batch, args.max_seq_len, args.alpha, rng)
    return config, lens


def cmd_experiments(args: argparse.Namespace) -> int:
    """List or run the experiment harnesses."""
    if args.summary:
        from repro.experiments.report import collect

        report = collect(fast=args.fast)
        print(
            report.render_markdown() if args.markdown
            else report.render_text()
        )
        return 0
    if args.list or not args.names:
        print("available experiments:")
        for name, module in ALL_EXPERIMENTS.items():
            print(f"  {name:<12} {module.__doc__.splitlines()[0]}")
        return 0
    unknown = [n for n in args.names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    for name in args.names:
        ALL_EXPERIMENTS[name].main()
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one pipeline configuration on one device."""
    config, lens = _workload(args)
    preset = PRESETS[args.preset]
    ctx = ExecutionContext(DEVICES[args.device])
    total = estimate_model(ctx, config, preset, lens, args.max_seq_len)
    print(
        f"{preset.label!r} on {args.device}: {total:.1f} us, "
        f"{ctx.kernel_count()} kernels, "
        f"{ctx.total_flops() / 1e9:.2f} GFLOP, "
        f"{ctx.total_dram_bytes() / 1e6:.1f} MB DRAM"
    )
    print(ProfileReport.from_context(ctx).to_table("breakdown"))
    if args.roofline:
        print(roofline_report(ctx).to_table())
    if args.trace:
        path = write_chrome_trace(ctx, args.trace)
        print(f"chrome trace written to {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compare every framework model on one shape."""
    config, lens = _workload(args)
    device = DEVICES[args.device]
    print(
        f"end-to-end BERT ({config.num_layers} layers), batch {args.batch}, "
        f"max seq {args.max_seq_len}, alpha {args.alpha}, {args.device}"
    )
    rows = []
    for fw in all_frameworks():
        if not fw.supports(args.max_seq_len):
            rows.append((fw.name, None))
            continue
        ctx = ExecutionContext(device)
        fw.estimate(ctx, config, lens, args.max_seq_len)
        rows.append((fw.name, ctx.elapsed_us()))
    best = min(t for _, t in rows if t is not None)
    for name, t in rows:
        if t is None:
            print(f"  {name:<20} unsupported shape")
        else:
            print(f"  {name:<20} {t / 1000:9.2f} ms   ({t / best:4.2f}x)")
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    """Quick numerical cross-validation: every pipeline == the oracle."""
    del args
    from repro.core.config import STEPWISE_PRESETS
    from repro.core.model import BertEncoderModel
    from repro.core.reference import reference_encoder
    from repro.core.weights import init_model_weights
    from repro.workloads.generator import make_batch

    config = BertConfig(num_heads=4, head_size=16, num_layers=2)
    weights = init_model_weights(config, seed=0)
    batch = make_batch(4, 48, config.hidden_size, alpha=0.6, seed=1)
    oracle = reference_encoder(batch.x, weights, config, batch.mask)
    valid = batch.mask.astype(bool)
    failed = False
    for preset in STEPWISE_PRESETS:
        model = BertEncoderModel(config, preset, weights=weights)
        out = model.forward(batch.x, batch.mask)
        err = float(np.abs(out[valid] - oracle[valid]).max())
        ok = err < 1e-3
        failed |= not ok
        print(
            f"  {preset.label:<26} max|err| vs oracle = {err:.2e}  "
            f"{'ok' if ok else 'FAIL'}"
        )
    print("selftest " + ("FAILED" if failed else "passed"))
    return 1 if failed else 0


def _export_telemetry(tel, trace_out, metrics_out, process_name) -> None:
    """Write the Chrome trace and/or JSONL dump a command was asked for."""
    if trace_out:
        from repro.gpusim.trace import write_telemetry_trace

        path = write_telemetry_trace(tel, trace_out, process_name=process_name)
        print(f"telemetry trace written to {path}")
    if metrics_out:
        from repro.telemetry import write_telemetry_jsonl

        path = write_telemetry_jsonl(tel, metrics_out)
        print(f"telemetry JSONL written to {path}")


def _git_sha() -> str:
    """Short sha of HEAD, or "" outside a git checkout."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return proc.stdout.strip() if proc.returncode == 0 else ""


def cmd_bench(args: argparse.Namespace) -> int:
    """Wall-clock benchmark: vectorized engine vs looped reference."""
    from repro.bench.wallclock import (
        QUICK_OVERRIDES,
        check_invariants,
        check_warnings,
        format_summary,
        run_wallclock_bench,
        write_bench_json,
    )
    from repro.core.parallel import use_workers
    from repro.gpusim.profiler import CacheStats, format_cache_stats

    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    kwargs = dict(
        batch=args.batch,
        max_seq_len=args.max_seq_len,
        alpha=args.alpha,
        layers=args.layers,
        preset=args.preset,
        repeats=args.repeats,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        devices=args.devices,
        shard=args.shard,
    )
    if args.quick:
        # --quick shrinks shapes but never the device count: the CI
        # smoke leg pins --devices explicitly and must keep it
        kwargs.update(QUICK_OVERRIDES)
    tel = None
    if args.trace_out or args.metrics_out:
        from repro.telemetry import Telemetry

        tel = Telemetry()
        kwargs["telemetry"] = tel
    with use_workers(args.workers, kind=args.executor):
        result = run_wallclock_bench(**kwargs)
    print(format_summary(result))
    if tel is not None:
        _export_telemetry(
            tel, args.trace_out, args.metrics_out, "bench continuous serving"
        )
    print(
        format_cache_stats(
            [CacheStats(**d) for d in result.get("cache_stats", [])]
        )
    )
    if args.out:
        path = write_bench_json(result, args.out)
        print(f"wrote {path}")
    exit_code = 0
    if args.baseline is not None:
        from repro.observe.history import (
            append_record,
            baseline_gate,
            load_history,
            record_from_result,
        )

        record = record_from_result(result, git_sha=_git_sha())
        gate = baseline_gate(
            record,
            load_history(args.baseline),
            k=args.history_k,
            history_dir=str(args.baseline),
        )
        # append before judging: a regressed run is still a data point
        record_path = append_record(args.baseline, record)
        print(f"bench history record appended: {record_path}")
        print(gate.render_text())
        if not gate.passed:
            exit_code = 1
    if args.check:
        failures = check_invariants(result)
        for warning in check_warnings(result):
            # Amdahl-capped floor breaches: visible, but not fatal
            print(f"invariant WARNING: {warning}", file=sys.stderr)
        if failures:
            for failure in failures:
                print(f"invariant FAILED: {failure}", file=sys.stderr)
            return 1
        print("all invariants hold")
    return exit_code


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    """Chaos-replay a serving trace through the fault-tolerant runtime."""
    from repro.serving import (
        AdmissionController,
        DegradationLadder,
        FaultSpec,
        RetryPolicy,
        ServingRuntime,
    )
    from repro.telemetry import SloPolicy, SloReport, Telemetry
    from repro.workloads.batching import (
        BucketBatcher,
        ContinuousBatcher,
        FifoBatcher,
        TimeoutBatcher,
    )
    from repro.workloads.serving import make_trace

    if args.requests <= 0:
        raise ValueError(f"--requests must be positive, got {args.requests}")
    if args.quick:
        # CI smoke shape: a few dozen requests on a small model
        args.requests = min(args.requests, 24)
        args.layers = min(args.layers, 2)
        args.max_seq_len = min(args.max_seq_len, 64)
    trace = make_trace(
        args.requests,
        args.max_seq_len,
        alpha=args.alpha,
        mean_interarrival_us=args.mean_interarrival_us,
        seed=args.seed,
        deadline_us=args.deadline_us if args.deadline_us > 0 else None,
    )
    if args.batcher == "continuous":
        batcher = ContinuousBatcher(
            token_budget=args.token_budget, timeout_us=args.timeout_us
        )
    elif args.batcher == "bucket":
        batcher = BucketBatcher(
            batch_size=args.batch_size, timeout_us=args.timeout_us
        )
    elif args.batcher == "fifo":
        batcher = FifoBatcher(batch_size=args.batch_size)
    else:
        batcher = TimeoutBatcher(
            batch_size=args.batch_size, timeout_us=args.timeout_us
        )
    spec = FaultSpec(
        launch_failure_rate=args.fault_rate / 2.0,
        transient_oom_rate=args.fault_rate / 2.0,
        slow_rate=args.slow_rate,
        slow_factor=args.slow_factor,
        target_prefixes=(
            tuple(args.target) if args.target else ("fused_mha", "fmha_")
        ),
    )
    sharding = None
    if args.devices > 1:
        from repro.serving.sharded import ShardConfig

        sharding = ShardConfig(
            devices=args.devices,
            mode=args.shard,
            tp_size=2 if args.shard == "both" else None,
        )
    tel = Telemetry()
    runtime = ServingRuntime(
        BertConfig(num_layers=args.layers),
        batcher=batcher,
        retry=RetryPolicy(max_retries=args.max_retries),
        admission=(
            AdmissionController(high_water_us=args.high_water_us)
            if args.high_water_us > 0
            else None
        ),
        ladder=DegradationLadder(
            trip_threshold=args.trip_threshold,
            window_us=args.ladder_window_us,
            cooldown_us=args.ladder_cooldown_us,
        ),
        faults=spec,
        device=DEVICES[args.device],
        seed=args.seed,
        workers=args.workers,
        executor=args.executor,
        telemetry=tel,
        sharding=sharding,
    )
    print(
        f"chaos replay: {args.requests} requests, fault rate "
        f"{args.fault_rate:.0%} (+{args.slow_rate:.0%} slow), seed {args.seed}"
        + (
            f", {args.devices} devices ({args.shard})"
            if args.devices > 1
            else ""
        )
    )
    report = runtime.run(trace)
    print(report.render_text())
    if args.devices > 1:
        busy = report.device_busy_us
        mean_busy = sum(busy) / len(busy) if busy else 0.0
        imbalance = (max(busy) / mean_busy) if mean_busy else 1.0
        print(
            "  devices: "
            + ", ".join(f"d{i} {b / 1000:.2f} ms" for i, b in enumerate(busy))
            + f"; imbalance {imbalance:.3f}, steals {report.work_steals}"
        )
    from repro.core.padding import default_packing_cache
    from repro.gpusim.profiler import CacheStats, format_cache_stats

    stats = [CacheStats.from_cache("packing", default_packing_cache())]
    if runtime.graph_cache is not None:
        stats.append(CacheStats.from_cache("launch_graphs", runtime.graph_cache))
    print(format_cache_stats(stats))
    if runtime.graph_cache is not None:
        kinds = runtime.graph_cache.kind_counts()
        if kinds:
            parts = ", ".join(
                f"{kind}: {c['captures']} captured / {c['replays']} replayed"
                for kind, c in sorted(kinds.items())
            )
            print(f"graph kinds: {parts}")
    policy = SloPolicy(
        success_target=args.slo_target,
        latency_target_us=(
            args.deadline_us if args.deadline_us > 0 else None
        ),
    )
    print(SloReport.from_registry(tel.metrics, policy).render_text())
    _export_telemetry(tel, args.trace_out, args.metrics_out, "serve-chaos")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Attribute a replay's microseconds: critical path, tail, knobs."""
    import json
    from pathlib import Path

    from repro.core.config import BertConfig
    from repro.gpusim.profiler import ProfileReport
    from repro.observe import (
        CriticalPathReport,
        KnobConfig,
        format_knob_table,
        sweep_knobs,
        tail_forensics,
    )
    from repro.serving import FaultSpec, RetryPolicy, ServingRuntime
    from repro.telemetry import SloPolicy, SloReport, Telemetry
    from repro.workloads.batching import ContinuousBatcher
    from repro.workloads.serving import make_trace

    if args.requests <= 0:
        raise ValueError(f"--requests must be positive, got {args.requests}")
    if args.quick:
        args.requests = min(args.requests, 24)
        args.layers = min(args.layers, 2)
        args.max_seq_len = min(args.max_seq_len, 64)
        args.token_budget = min(args.token_budget, 512)
    trace = make_trace(
        args.requests,
        args.max_seq_len,
        alpha=args.alpha,
        mean_interarrival_us=args.mean_interarrival_us,
        seed=args.seed,
        deadline_us=args.deadline_us if args.deadline_us > 0 else None,
    )
    sharding = None
    if args.devices > 1:
        from repro.serving.sharded import ShardConfig

        sharding = ShardConfig(devices=args.devices, mode=args.shard)
    tel = Telemetry()
    runtime = ServingRuntime(
        BertConfig(num_layers=args.layers),
        batcher=ContinuousBatcher(
            token_budget=args.token_budget, timeout_us=args.timeout_us
        ),
        retry=RetryPolicy(max_retries=args.max_retries),
        faults=FaultSpec(
            launch_failure_rate=args.fault_rate / 2.0,
            transient_oom_rate=args.fault_rate / 2.0,
            target_prefixes=("fused_mha", "fmha_"),
        ),
        device=DEVICES[args.device],
        seed=args.seed,
        telemetry=tel,
        sharding=sharding,
    )
    print(
        f"explain: {args.requests} requests, fault rate "
        f"{args.fault_rate:.0%}, seed {args.seed}"
        + (
            f", {args.devices} devices ({args.shard})"
            if args.devices > 1
            else ""
        )
    )
    report = runtime.run(trace)
    cp = CriticalPathReport.from_telemetry(tel)
    print(cp.render_text(top=args.top))
    print(
        ProfileReport.from_segments(tel.kernel_segments).to_table(
            "kernel profile"
        )
    )
    tail = tail_forensics(cp)
    print(SloReport.from_registry(tel.metrics, SloPolicy())
          .with_tail(tail).render_text())

    knob_results = None
    if args.knobs:
        cfg = (
            KnobConfig.quick()
            if args.quick
            else KnobConfig(
                token_budget=args.token_budget, timeout_us=args.timeout_us
            )
        )
        knob_results = sweep_knobs(cfg)
        print(format_knob_table(knob_results))

    if args.json:
        payload = {
            "critical_path": cp.to_json(),
            "tail": tail.to_dict() if tail is not None else None,
        }
        if knob_results is not None:
            payload["knobs"] = [s.to_dict() for s in knob_results]
        out = Path(args.json)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"explain report written to {out}")
    if args.trace_out:
        from repro.gpusim.trace import write_telemetry_trace

        path = write_telemetry_trace(
            tel,
            args.trace_out,
            process_name="explain",
            critical_path=cp.critical_request(),
        )
        print(f"telemetry trace written to {path}")

    if args.check:
        failures: list[str] = []
        latency = {
            o.request_id: o.latency_us
            for o in report.outcomes
            if o.latency_us is not None
        }
        outcomes = {o.request_id: o.outcome.value for o in report.outcomes}
        paths = {p.request_id: p for p in cp.requests}
        for rid, outcome in outcomes.items():
            path = paths.get(rid)
            if path is None:
                failures.append(f"request {rid} has no critical path")
                continue
            if outcome != "served":
                continue
            gap = path.path_us - latency[rid]
            if gap > 1e-6:
                failures.append(
                    f"request {rid}: path {path.path_us:.3f} us exceeds "
                    f"latency {latency[rid]:.3f} us"
                )
            elif path.decomposed and abs(gap) > 1e-6:
                failures.append(
                    f"request {rid}: decomposed path {path.path_us:.3f} us "
                    f"!= latency {latency[rid]:.3f} us"
                )
        if failures:
            for failure in failures:
                print(f"explain check FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"all explain checks hold ({len(outcomes)} request paths "
            "sum-checked against the serving report)"
        )
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay open-loop multi-tenant traffic through the gateway."""
    import json
    from pathlib import Path

    from repro.core.config import FUSED_MHA
    from repro.core.model import BertEncoderModel
    from repro.serving import (
        AdmissionGateway,
        Outcome,
        QosClass,
        REASON_QUEUE_OVERFLOW,
        ServingRuntime,
        TenantPolicy,
    )
    from repro.telemetry import SloPolicy, SloReport, Telemetry
    from repro.workloads.batching import ContinuousBatcher
    from repro.workloads.generator import LengthDistribution
    from repro.workloads.traffic import (
        DiurnalArrivals,
        FlashCrowd,
        LengthProfile,
        MmppArrivals,
        PoissonArrivals,
        TenantTraffic,
        generate_traffic,
    )

    if args.horizon_us <= 0:
        raise ValueError(f"--horizon-us must be positive, got {args.horizon_us}")
    if not 0.0 < args.slo_load < 1.0 or not 0.0 < args.batch_load < 1.0:
        raise ValueError("--slo-load and --batch-load must be in (0, 1)")
    if not 0.0 < args.batch_limit < 1.0:
        raise ValueError(f"--batch-limit must be in (0, 1), got {args.batch_limit}")
    if args.quick:
        # CI smoke shape: tiny hidden size so the bitwise oracle is
        # cheap, a short horizon, and a throttled virtual service rate
        # so the capacity-relative scenario stays a few hundred requests
        args.horizon_us = min(args.horizon_us, 150_000.0)
        args.layers = min(args.layers, 2)
        args.max_seq_len = min(args.max_seq_len, 128)
        args.heads = min(args.heads, 2)
        args.head_size = min(args.head_size, 16)
        args.oracle = True
        if args.service_tokens_per_s <= 0:
            args.service_tokens_per_s = 250_000.0

    config = BertConfig(
        num_heads=args.heads, head_size=args.head_size, num_layers=args.layers
    )
    batcher = ContinuousBatcher(
        token_budget=args.token_budget, timeout_us=args.timeout_us
    )
    tel = Telemetry()
    numerics = (
        BertEncoderModel(config, FUSED_MHA, seed=args.seed)
        if args.oracle
        else None
    )
    runtime = ServingRuntime(
        config,
        batcher=batcher,
        device=DEVICES[args.device],
        numerics=numerics,
        seed=args.seed,
        telemetry=tel,
    )
    # virtual drain rate the scenario is sized against: the cost model's
    # capacity by default, an explicit throttle for the CI smoke shape
    if args.service_tokens_per_s > 0:
        rate = args.service_tokens_per_s / 1e6
    else:
        rate = runtime.estimate_service_rate(args.max_seq_len)
    capacity_s = rate * 1e6  # sequence tokens per simulated second

    # -- scenario: 2 tenants, sized as fractions of capacity -----------
    slo_profile = LengthProfile.zipf_mixed(args.max_seq_len)
    batch_profile = LengthProfile.single(
        args.max_seq_len, LengthDistribution.UNIFORM, alpha=0.7
    )
    mean_slo = float(slo_profile.sample(4096, np.random.default_rng(0)).mean())
    mean_batch = float(
        batch_profile.sample(4096, np.random.default_rng(1)).mean()
    )
    slo_req_rate = args.slo_load * capacity_s / mean_slo
    batch_req_rate = args.batch_load * capacity_s / mean_batch
    crowd = FlashCrowd(
        start_us=0.35 * args.horizon_us,
        duration_us=0.25 * args.horizon_us,
        multiplier=args.crowd_multiplier,
    )
    if args.quick:
        slo_arrivals = PoissonArrivals(slo_req_rate)
        batch_arrivals = PoissonArrivals(batch_req_rate)
    else:
        # richer arrival mix off the CI path: a diurnal swing for the
        # interactive tenant (phased so the flash crowd lands on the
        # downslope, not on top of the peak) and bursty MMPP batch
        slo_arrivals = DiurnalArrivals(
            slo_req_rate, period_us=args.horizon_us, depth=0.2, phase=0.5
        )
        probe = MmppArrivals(1.0)
        batch_arrivals = MmppArrivals(
            batch_req_rate / (probe.mean_rate_per_us * 1e6)
        )
    tenants = [
        TenantTraffic(
            "interactive",
            slo_arrivals,
            slo_profile,
            deadline_us=args.deadline_us,
            flash_crowds=(crowd,),
        ),
        TenantTraffic("analytics", batch_arrivals, batch_profile),
    ]
    trace = generate_traffic(tenants, args.horizon_us, seed=args.seed)

    limit_tokens_s = args.batch_limit * capacity_s
    policies = [
        TenantPolicy(
            "interactive",
            qos=QosClass.LATENCY_SLO,
            weight=args.slo_weight,
            max_queue_tokens=1 << 30,  # bounded only by global pressure
            slo_target=args.slo_target,
            attainment_target=args.attainment_target,
        ),
        TenantPolicy(
            "analytics",
            qos=QosClass.THROUGHPUT_BATCH,
            weight=1.0,
            rate_tokens_per_s=limit_tokens_s,
            # a small burst so the crowd actually empties the bucket
            # inside the horizon; never below one max-length request
            burst_tokens=max(args.max_seq_len, 0.01 * limit_tokens_s),
            # ~3 ms of capacity queued before oldest-shed kicks in
            max_queue_tokens=max(4 * args.max_seq_len, int(rate * 3_000.0)),
            slo_target=0.5,  # bulk traffic: no availability promise
        ),
    ]
    runtime.gateway = AdmissionGateway(
        policies,
        service_rate_tokens_per_us=rate,
        quantum_tokens=args.quantum,
        max_total_queue_tokens=max(
            8 * args.max_seq_len, int(rate * 40_000.0)
        ),
    )

    crowd_end_ms = (crowd.start_us + crowd.duration_us) / 1000
    print(
        f"loadtest: {trace.num_requests} requests / "
        f"{args.horizon_us / 1000:.0f} ms horizon, capacity "
        f"{capacity_s / 1e6:.2f}M tokens/s"
        f"{' (throttled)' if args.service_tokens_per_s > 0 else ''}, "
        f"seed {args.seed}"
    )
    print(
        f"  interactive: latency-slo, {args.slo_load:.0%} load, "
        f"{args.crowd_multiplier:g}x flash crowd "
        f"{crowd.start_us / 1000:.0f}-{crowd_end_ms:.0f} ms, "
        f"deadline {args.deadline_us / 1000:.0f} ms"
    )
    print(
        f"  analytics:   throughput-batch, {args.batch_load:.0%} load, "
        f"rate-limited to {args.batch_limit:.0%}"
    )
    report = runtime.run(trace)
    print(report.render_text())

    # -- per-tenant SLO table ------------------------------------------
    tenant_reports: dict[str, SloReport] = {}
    print("== per-tenant SLO ==")
    print(
        f"  {'tenant':<13}{'qos':<18}{'total':>6}{'served':>7}{'shed':>6}"
        f"{'rej':>5}{'avail':>8}{'attain':>8}{'p99 ms':>8}{'burn':>7}"
    )
    for policy in policies:
        slo = SloReport.for_tenant(
            tel.metrics,
            policy.name,
            SloPolicy(success_target=policy.slo_target),
        )
        tenant_reports[policy.name] = slo
        attainment = slo.deadline_attainment
        burn = slo.budget_burn
        p99 = slo.latency_quantile_us
        print(
            f"  {policy.name:<13}{policy.qos.value:<18}{slo.total:>6}"
            f"{slo.served:>7}{slo.shed:>6}{slo.rejected:>5}"
            f"{slo.availability:>8.2%}"
            + (
                f"{attainment:>8.2%}"
                if attainment is not None
                else f"{'n/a':>8}"
            )
            + (f"{p99 / 1000:>8.2f}" if p99 is not None else f"{'n/a':>8}")
            + (f"{burn:>6.2f}x" if burn is not None else f"{'n/a':>7}")
        )

    # -- gates ----------------------------------------------------------
    failures: list[str] = []
    counts = report.counts()
    settled = (
        counts["served"] + counts["shed"] + counts["failed"]
        + counts["rejected"]
    )
    if settled != trace.num_requests:
        failures.append(
            f"conservation: {settled} settled of {trace.num_requests}"
        )
    if counts["failed"]:
        failures.append(f"{counts['failed']} requests failed")
    for policy in policies:
        slo = tenant_reports[policy.name]
        if policy.qos is QosClass.LATENCY_SLO:
            attainment = slo.deadline_attainment
            if attainment is None or attainment < policy.attainment_target:
                got = "n/a" if attainment is None else f"{attainment:.2%}"
                failures.append(
                    f"{policy.name}: deadline attainment {got} < target "
                    f"{policy.attainment_target:.2%}"
                )
            overflow = sum(
                1
                for o in report.by_tenant(policy.name)
                if o.outcome is Outcome.SHED
                and o.reason == REASON_QUEUE_OVERFLOW
            )
            if overflow:
                failures.append(
                    f"{policy.name}: {overflow} latency-slo requests shed "
                    "by overload while batch traffic remained"
                )
    if args.crowd_multiplier > 1.0:
        absorbed = sum(
            tenant_reports[p.name].shed + tenant_reports[p.name].rejected
            for p in policies
            if p.qos is QosClass.THROUGHPUT_BATCH
        )
        if absorbed == 0:
            failures.append(
                "flash crowd produced no batch-tenant sheds/rejections "
                "(overload never materialised)"
            )
    oracle_checked = 0
    if numerics is not None:
        oracle = BertEncoderModel(config, FUSED_MHA, seed=args.seed)
        by_id = {r.request_id: r for r in trace.requests}
        for rid in sorted(report.outputs):
            request = by_id[rid]
            rng = np.random.default_rng([args.seed, rid])
            x = rng.standard_normal((1, request.seq_len, config.hidden_size))
            mask = np.ones((1, request.seq_len))
            if not np.array_equal(report.outputs[rid], oracle.forward(x, mask)[0]):
                failures.append(
                    f"request {rid}: served output != per-request oracle"
                )
                break
            oracle_checked += 1
        print(
            f"oracle: {oracle_checked}/{len(report.outputs)} served outputs "
            "bitwise-equal to the per-request forward"
        )

    if args.report_out:
        payload = {
            "seed": args.seed,
            "horizon_us": args.horizon_us,
            "capacity_tokens_per_s": capacity_s,
            "crowd_multiplier": args.crowd_multiplier,
            "totals": counts,
            "oracle_checked": oracle_checked,
            "gate_failures": failures,
            "tenants": {
                policy.name: {
                    "qos": policy.qos.value,
                    "weight": policy.weight,
                    "total": tenant_reports[policy.name].total,
                    "served": tenant_reports[policy.name].served,
                    "shed": tenant_reports[policy.name].shed,
                    "rejected": tenant_reports[policy.name].rejected,
                    "availability": tenant_reports[policy.name].availability,
                    "deadline_attainment": (
                        tenant_reports[policy.name].deadline_attainment
                    ),
                    "p99_latency_us": (
                        tenant_reports[policy.name].latency_quantile_us
                    ),
                    "error_budget_burn": (
                        tenant_reports[policy.name].budget_burn
                    ),
                    "attainment_target": policy.attainment_target,
                }
                for policy in policies
            },
        }
        out = Path(args.report_out)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"per-tenant SLO report written to {out}")

    if args.check:
        if failures:
            for failure in failures:
                print(f"loadtest gate FAILED: {failure}", file=sys.stderr)
            return 1
        print("all loadtest gates hold")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Serve an autoregressive generation trace through the decode runtime."""
    import json
    from pathlib import Path

    from repro.serving import FaultSpec, RetryPolicy
    from repro.serving.generation import (
        GenerationRuntime,
        generate_reference_outputs,
    )
    from repro.workloads.batching import MixedContinuousBatcher
    from repro.workloads.serving import (
        GenerationRequest,
        ServingTrace,
        make_generation_trace,
    )

    if args.quick:
        # CI smoke shape: a dozen short streams on a tiny model
        args.requests = min(args.requests, 12)
        args.layers = min(args.layers, 2)
        args.max_seq_len = min(args.max_seq_len, 64)
        args.decode_tokens = min(args.decode_tokens, 8)
    if args.requests <= 0:
        raise ValueError(f"--requests must be positive, got {args.requests}")
    if args.decode_tokens < 1:
        raise ValueError(
            f"--decode-tokens must be >= 1, got {args.decode_tokens}"
        )
    deadline = args.deadline_us if args.deadline_us > 0 else None
    if args.prompt_file:
        path = Path(args.prompt_file)
        if not path.is_file():
            raise ValueError(f"prompt file not found: {path}")
        prompts = [
            line for line in path.read_text().splitlines() if line.strip()
        ]
        if not prompts:
            raise ValueError(f"prompt file {path} has no non-empty lines")
        lens = [len(line.split()) for line in prompts]
        for i, n in enumerate(lens):
            if n > args.max_seq_len:
                raise ValueError(
                    f"prompt line {i + 1} has {n} tokens "
                    f"> --max-seq-len {args.max_seq_len}"
                )
        rng = np.random.default_rng(args.seed)
        arrivals = np.cumsum(
            rng.exponential(args.mean_interarrival_us, size=len(lens))
        )
        trace = ServingTrace(
            requests=tuple(
                GenerationRequest(
                    request_id=i,
                    arrival_us=float(arrivals[i]),
                    seq_len=lens[i],
                    deadline_us=deadline,
                    decode_tokens=args.decode_tokens,
                )
                for i in range(len(lens))
            ),
            max_seq_len=args.max_seq_len,
        )
    else:
        trace = make_generation_trace(
            args.requests,
            args.max_seq_len,
            decode_tokens=args.decode_tokens,
            alpha=args.alpha,
            mean_interarrival_us=args.mean_interarrival_us,
            seed=args.seed,
            deadline_us=deadline,
        )
    runtime = GenerationRuntime(
        BertConfig(num_layers=args.layers),
        batcher=MixedContinuousBatcher(
            token_budget=args.token_budget,
            decode_priority=args.decode_priority,
        ),
        retry=RetryPolicy(max_retries=args.max_retries),
        faults=FaultSpec(
            launch_failure_rate=args.fault_rate / 2.0,
            transient_oom_rate=args.fault_rate / 2.0,
            # by default only the batched decode-attention kernel is
            # flaky, so stepping the ladder to the looped path escapes
            target_prefixes=(
                tuple(args.target) if args.target else ("paged_decode",)
            ),
        ),
        device=DEVICES[args.device],
        seed=args.seed,
        kv_block_tokens=args.kv_block,
        kv_capacity_tokens=(
            args.kv_capacity_tokens if args.kv_capacity_tokens > 0 else None
        ),
    )
    print(
        f"generate: {trace.num_requests} streams "
        f"({'prompt file' if args.prompt_file else 'synthetic'}), "
        f"~{args.decode_tokens} tokens each, fault rate "
        f"{args.fault_rate:.0%}, seed {args.seed}"
    )
    report = runtime.run(trace)
    print(report.render_text())

    # -- per-token latency table ---------------------------------------
    by_id = {r.request_id: r for r in trace.requests}
    print("== per-token latency ==")
    print(
        f"  {'req':>4}{'prompt':>8}{'tokens':>8}{'ttft ms':>9}"
        f"{'itl us':>9}  outcome"
    )
    itl_all: list[float] = []
    ttft_all: list[float] = []
    for outcome in report.outcomes:
        rid = outcome.request_id
        times = report.token_times.get(rid, ())
        gaps = [b - a for a, b in zip(times, times[1:])]
        itl_all.extend(gaps)
        ttft = report.ttft_us(rid, by_id[rid].arrival_us)
        if ttft is not None:
            ttft_all.append(ttft)
        print(
            f"  {rid:>4}{by_id[rid].seq_len:>8}{len(times):>8}"
            + (f"{ttft / 1000:>9.2f}" if ttft is not None else f"{'-':>9}")
            + (
                f"{sum(gaps) / len(gaps):>9.1f}"
                if gaps
                else f"{'-':>9}"
            )
            + f"  {outcome.outcome.value}"
            + (f" ({outcome.reason})" if outcome.reason else "")
        )
    if ttft_all:
        print(
            f"  ttft p50/p99: {np.percentile(ttft_all, 50) / 1000:.2f}/"
            f"{np.percentile(ttft_all, 99) / 1000:.2f} ms"
            + (
                f"; itl p50/p99: {np.percentile(itl_all, 50):.1f}/"
                f"{np.percentile(itl_all, 99):.1f} us"
                if itl_all
                else ""
            )
        )

    # -- caches (same columns bench/serve-chaos print, incl. the
    #    decode graph kind) ---------------------------------------------
    from repro.core.padding import default_packing_cache
    from repro.gpusim.profiler import CacheStats, format_cache_stats

    stats = [CacheStats.from_cache("packing", default_packing_cache())]
    if runtime.graph_cache is not None:
        stats.append(
            CacheStats.from_cache("launch_graphs", runtime.graph_cache)
        )
    print(format_cache_stats(stats))
    if runtime.graph_cache is not None:
        kinds = runtime.graph_cache.kind_counts()
        if kinds:
            parts = ", ".join(
                f"{kind}: {c['captures']} captured / {c['replays']} replayed"
                for kind, c in sorted(kinds.items())
            )
            print(f"graph kinds: {parts}")

    # -- gates ----------------------------------------------------------
    failures: list[str] = []
    counts = report.counts()
    settled = sum(counts.values())
    if settled != trace.num_requests:
        failures.append(
            f"conservation: {settled} settled of {trace.num_requests}"
        )
    overflow = int(report.kv_stats.get("overflow_allocs", 0))
    if overflow:
        failures.append(f"paged KV arena made {overflow} overflow allocs")
    oracle_checked = 0
    if args.check:
        oracle = generate_reference_outputs(runtime, trace)
        for rid in sorted(report.outputs):
            if not np.array_equal(report.outputs[rid], oracle[rid]):
                failures.append(
                    f"request {rid}: generated tokens != per-request oracle"
                )
                break
            oracle_checked += 1
        print(
            f"oracle: {oracle_checked}/{len(report.outputs)} served streams "
            "bitwise-equal to the per-request decode loop"
        )
    if args.out:
        payload = {
            "seed": args.seed,
            "streams": trace.num_requests,
            "totals": counts,
            "generated_tokens": report.generated_tokens,
            "rounds": report.rounds,
            "us_per_token": report.us_per_token,
            "graph_hit_rate": report.graph_hit_rate,
            "kv_stats": report.kv_stats,
            "ttft_p50_us": (
                float(np.percentile(ttft_all, 50)) if ttft_all else None
            ),
            "ttft_p99_us": (
                float(np.percentile(ttft_all, 99)) if ttft_all else None
            ),
            "itl_p50_us": (
                float(np.percentile(itl_all, 50)) if itl_all else None
            ),
            "itl_p99_us": (
                float(np.percentile(itl_all, 99)) if itl_all else None
            ),
            "oracle_checked": oracle_checked,
            "gate_failures": failures,
        }
        out = Path(args.out)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"generation report written to {out}")
    if args.check:
        if failures:
            for failure in failures:
                print(f"generate gate FAILED: {failure}", file=sys.stderr)
            return 1
        print("all generate gates hold")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Replay a small serving trace with telemetry on; emit the registry."""
    import json
    from pathlib import Path

    from repro.serving import FaultSpec, ServingRuntime
    from repro.telemetry import (
        SloPolicy,
        SloReport,
        Telemetry,
        parse_prometheus,
    )
    from repro.workloads.batching import ContinuousBatcher, TimeoutBatcher
    from repro.workloads.serving import make_trace

    if args.requests <= 0:
        raise ValueError(f"--requests must be positive, got {args.requests}")
    if args.quick:
        args.requests = min(args.requests, 24)
        args.layers = min(args.layers, 2)
        args.max_seq_len = min(args.max_seq_len, 64)
    trace = make_trace(
        args.requests,
        args.max_seq_len,
        alpha=args.alpha,
        seed=args.seed,
        deadline_us=args.deadline_us if args.deadline_us > 0 else None,
    )
    batcher = (
        ContinuousBatcher(token_budget=args.token_budget)
        if args.batcher == "continuous"
        else TimeoutBatcher()
    )
    tel = Telemetry()
    runtime = ServingRuntime(
        BertConfig(num_layers=args.layers),
        batcher=batcher,
        faults=FaultSpec(
            launch_failure_rate=args.fault_rate / 2.0,
            transient_oom_rate=args.fault_rate / 2.0,
            target_prefixes=("fused_mha", "fmha_"),
        ),
        device=DEVICES[args.device],
        seed=args.seed,
        telemetry=tel,
    )
    runtime.run(trace)
    exposition = tel.metrics.to_prometheus()
    if args.format == "prom":
        text = exposition
    elif args.format == "json":
        text = json.dumps(tel.metrics.snapshot(), indent=2, sort_keys=True)
    else:
        report = SloReport.from_registry(tel.metrics, SloPolicy())
        text = report.render_text()
    if args.out:
        out = Path(args.out)
        out.write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {out}")
    else:
        print(text)
    if args.check:
        series = parse_prometheus(exposition)
        if not series:
            print("metrics check FAILED: empty exposition", file=sys.stderr)
            return 1
        print(f"prometheus exposition OK: {len(series)} series parsed")
    return 0


def cmd_devices(args: argparse.Namespace) -> int:
    """Print the simulated device presets."""
    del args
    header = (
        f"{'device':<18}{'SMs':>5}{'TC TFLOPS':>11}{'DRAM GB/s':>11}"
        f"{'L2 MB':>7}{'smem/SM KB':>12}"
    )
    print(header)
    for spec in DEVICES.values():
        print(
            f"{spec.name:<18}{spec.num_sms:>5}"
            f"{spec.tensor_fp16_tflops:>11.0f}"
            f"{spec.dram_bandwidth_gbs:>11.0f}"
            f"{spec.l2_bytes / 1e6:>7.0f}"
            f"{spec.shared_mem_per_sm / 1024:>12.0f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ByteTransformer reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="list or run experiment harnesses")
    p.add_argument("names", nargs="*", help="experiment ids (empty = list)")
    p.add_argument("--list", action="store_true")
    p.add_argument(
        "--summary",
        action="store_true",
        help="one consolidated paper-vs-measured table",
    )
    p.add_argument("--fast", action="store_true", help="smaller sweeps")
    p.add_argument("--markdown", action="store_true")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("profile", help="profile one pipeline configuration")
    _add_shape_args(p)
    p.add_argument(
        "--preset", choices=sorted(PRESETS), default="fused MHA"
    )
    p.add_argument("--trace", help="write a chrome://tracing JSON here")
    p.add_argument(
        "--roofline",
        action="store_true",
        help="classify each kernel as compute/memory/launch bound",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compare", help="compare all frameworks on a shape")
    _add_shape_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "bench",
        help="wall-clock benchmark: vectorized engine vs looped reference",
    )
    p.add_argument("--batch", type=int, default=16)
    p.add_argument("--max-seq-len", type=int, default=256)
    p.add_argument("--alpha", type=float, default=0.6)
    p.add_argument("--layers", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--preset", choices=sorted(PRESETS), default="fused MHA")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--quick",
        action="store_true",
        help="tiny-shape smoke run (overrides batch/seq/layers/repeats)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="also write the result JSON here (e.g. BENCH_wallclock.json)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor fan-out width (1 = serial)",
    )
    p.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="thread",
        help="how --workers fan out: thread pool or forked processes "
        "over shared-memory arena segments",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any output/stream-identity invariant fails",
    )
    p.add_argument(
        "--devices",
        type=int,
        default=8,
        help="device count for the sharded-serving section "
        "(1 skips the section; --quick never overrides this)",
    )
    p.add_argument(
        "--shard",
        choices=SHARD_MODES,
        default="dp",
        help="sharding mode of the headline scaling leg: data parallel "
        "(hard-floored), tensor parallel, or both (tp groups of 2)",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace of the continuous-serving steady run",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write the steady run's span/metric JSONL dump here",
    )
    p.add_argument(
        "--baseline",
        nargs="?",
        const="benchmarks/history",
        default=None,
        metavar="DIR",
        help="gate this run against the bench history in DIR "
        "(default benchmarks/history) and append it as a new record; "
        "exits 1 on a hard (modelled-metric) regression",
    )
    p.add_argument(
        "--history-k",
        type=int,
        default=5,
        help="same-shape history records the baseline median uses",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve-chaos",
        help="chaos-replay a serving trace with injected kernel faults",
    )
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--max-seq-len", type=int, default=256)
    p.add_argument("--alpha", type=float, default=0.6)
    p.add_argument("--layers", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--device", choices=sorted(DEVICES), default=A100_SPEC.name
    )
    p.add_argument("--mean-interarrival-us", type=float, default=400.0)
    p.add_argument(
        "--deadline-us",
        type=float,
        default=0.0,
        help="per-request latency budget in us (0 = no deadlines)",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.1,
        help="transient fault probability per targeted launch "
        "(split evenly between launch failures and OOMs)",
    )
    p.add_argument("--slow-rate", type=float, default=0.05)
    p.add_argument("--slow-factor", type=float, default=4.0)
    p.add_argument(
        "--target",
        action="append",
        help="kernel-name prefix eligible for faults (repeatable; "
        "default: the fused attention kernels, so degradation can "
        "escape them; pass '' to make every kernel eligible)",
    )
    p.add_argument(
        "--batcher",
        choices=("timeout", "fifo", "bucket", "continuous"),
        default="timeout",
        help="batching policy; 'continuous' packs requests into "
        "token-budget megabatches quantized to graph-cached tiles",
    )
    p.add_argument(
        "--token-budget",
        type=int,
        default=2048,
        help="valid-token budget per continuous megabatch",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape (caps requests/layers/seq-len)",
    )
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--timeout-us", type=float, default=2000.0)
    p.add_argument("--max-retries", type=int, default=3)
    p.add_argument(
        "--high-water-us",
        type=float,
        default=0.0,
        help="admission-control backlog high-water mark (0 = admit all)",
    )
    p.add_argument("--trip-threshold", type=int, default=3)
    p.add_argument("--ladder-window-us", type=float, default=50_000.0)
    p.add_argument("--ladder-cooldown-us", type=float, default=100_000.0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel request-compute workers (1 = serial)",
    )
    p.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="thread",
        help="how --workers fan out: thread pool or forked processes "
        "over shared-memory arena segments",
    )
    p.add_argument(
        "--slo-target",
        type=float,
        default=0.99,
        help="success-rate SLO target for the error-budget summary",
    )
    p.add_argument(
        "--devices",
        type=int,
        default=1,
        help="spread the replay over this many simulated devices",
    )
    p.add_argument(
        "--shard",
        choices=SHARD_MODES,
        default="dp",
        help="how --devices shard: data parallel (Σlen²-routed "
        "replicas), tensor parallel (one group), or both (tp=2 groups)",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="write the merged span + kernel Chrome trace here",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write the span/metric JSONL dump here",
    )
    p.set_defaults(func=cmd_serve_chaos)

    p = sub.add_parser(
        "explain",
        help="attribute a serving replay's microseconds: per-request "
        "critical path, p99-vs-p50 tail forensics, knob sensitivity",
    )
    p.add_argument("--requests", type=int, default=48)
    p.add_argument("--max-seq-len", type=int, default=256)
    p.add_argument("--alpha", type=float, default=0.6)
    p.add_argument("--layers", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--device", choices=sorted(DEVICES), default=A100_SPEC.name
    )
    p.add_argument("--mean-interarrival-us", type=float, default=400.0)
    p.add_argument(
        "--deadline-us",
        type=float,
        default=0.0,
        help="per-request latency budget in us (0 = no deadlines)",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.1,
        help="transient fault probability per targeted launch, so the "
        "report has retry- and ladder-penalty edges to attribute",
    )
    p.add_argument(
        "--token-budget",
        type=int,
        default=2048,
        help="valid-token budget per continuous megabatch",
    )
    p.add_argument("--timeout-us", type=float, default=2000.0)
    p.add_argument("--max-retries", type=int, default=3)
    p.add_argument(
        "--devices",
        type=int,
        default=1,
        help="spread the replay over this many simulated devices",
    )
    p.add_argument(
        "--shard",
        choices=SHARD_MODES,
        default="dp",
        help="how --devices shard",
    )
    p.add_argument(
        "--top",
        type=int,
        default=5,
        help="slowest served requests to tabulate",
    )
    p.add_argument(
        "--knobs",
        action="store_true",
        help="also sweep the policy knobs and print the ranked "
        "sensitivity table",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape (caps requests/layers/seq-len/budget)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full attribution report as JSON here",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="write the Chrome trace with the highlighted "
        "critical-path lane here",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every request's critical path sum-checks "
        "against its served latency",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "loadtest",
        help="replay open-loop multi-tenant traffic through the "
        "admission gateway; per-tenant SLO report and CI gates",
    )
    p.add_argument(
        "--horizon-us",
        type=float,
        default=1_000_000.0,
        help="simulated traffic horizon in us",
    )
    p.add_argument("--max-seq-len", type=int, default=256)
    p.add_argument("--layers", type=int, default=4)
    p.add_argument("--heads", type=int, default=12)
    p.add_argument("--head-size", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--device", choices=sorted(DEVICES), default=A100_SPEC.name
    )
    p.add_argument("--token-budget", type=int, default=1024)
    p.add_argument("--timeout-us", type=float, default=2000.0)
    p.add_argument(
        "--deadline-us",
        type=float,
        default=25_000.0,
        help="latency budget attached to every interactive request",
    )
    p.add_argument(
        "--slo-load",
        type=float,
        default=0.25,
        help="interactive steady offered load as a fraction of capacity",
    )
    p.add_argument(
        "--batch-load",
        type=float,
        default=0.55,
        help="analytics steady offered load as a fraction of capacity",
    )
    p.add_argument(
        "--batch-limit",
        type=float,
        default=0.4,
        help="analytics token-bucket sustained rate as a capacity fraction",
    )
    p.add_argument(
        "--slo-weight",
        type=float,
        default=3.0,
        help="interactive DRR weight (analytics is 1.0)",
    )
    p.add_argument(
        "--crowd-multiplier",
        type=float,
        default=3.0,
        help="flash-crowd arrival multiplier over the interactive "
        "steady rate (1.0 disables the crowd gate)",
    )
    p.add_argument(
        "--quantum", type=int, default=256, help="DRR quantum in tokens"
    )
    p.add_argument(
        "--service-tokens-per-s",
        type=float,
        default=0.0,
        help="override the virtual drain rate the scenario is sized "
        "against (0 = derive it from the cost model; --quick throttles "
        "it so the oracle-checked trace stays small)",
    )
    p.add_argument(
        "--slo-target",
        type=float,
        default=0.99,
        help="interactive availability target (error-budget burn)",
    )
    p.add_argument(
        "--attainment-target",
        type=float,
        default=0.99,
        help="interactive deadline-attainment floor --check enforces",
    )
    p.add_argument(
        "--oracle",
        action="store_true",
        help="run the numeric plane and bitwise-compare every served "
        "output to its per-request forward (implied by --quick)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape: tiny model, short horizon, throttled "
        "capacity, oracle on",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any gate fails: conservation, zero failures, "
        "SLO-tenant attainment, batch-first shedding, oracle equality",
    )
    p.add_argument(
        "--report-out",
        default=None,
        help="write the per-tenant SLO report JSON here (CI artifact)",
    )
    p.set_defaults(func=cmd_loadtest)

    p = sub.add_parser(
        "generate",
        help="serve autoregressive generation streams through the mixed "
        "prefill/decode runtime; per-token latency table and CI gates",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=32,
        help="synthetic stream count (ignored with --prompt-file)",
    )
    p.add_argument(
        "--prompt-file",
        default=None,
        help="text file, one prompt per line; whitespace token count "
        "becomes the prompt length (replaces the synthetic trace)",
    )
    p.add_argument("--max-seq-len", type=int, default=256)
    p.add_argument(
        "--decode-tokens",
        type=int,
        default=32,
        help="tokens to generate per stream (the synthetic trace draws "
        "per-stream counts around this mean; --prompt-file uses it "
        "exactly); the context window may truncate a stream earlier",
    )
    p.add_argument("--alpha", type=float, default=0.6)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--device", choices=sorted(DEVICES), default=A100_SPEC.name
    )
    p.add_argument("--mean-interarrival-us", type=float, default=25.0)
    p.add_argument(
        "--deadline-us",
        type=float,
        default=0.0,
        help="per-request latency budget in us (0 = no deadlines)",
    )
    p.add_argument(
        "--token-budget",
        type=int,
        default=2048,
        help="valid-token budget per mixed prefill/decode round",
    )
    p.add_argument(
        "--decode-priority",
        type=float,
        default=0.75,
        help="fraction of the round budget reserved for in-flight "
        "decodes when prefills are waiting",
    )
    p.add_argument(
        "--kv-block",
        type=int,
        default=16,
        help="paged KV arena block size in tokens",
    )
    p.add_argument(
        "--kv-capacity-tokens",
        type=int,
        default=0,
        help="paged KV arena capacity in tokens (0 = size to the trace; "
        "smaller values force eviction/preemption under pressure)",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="transient fault probability per targeted launch "
        "(split evenly between launch failures and OOMs)",
    )
    p.add_argument(
        "--target",
        action="append",
        help="kernel-name prefix eligible for faults (repeatable; "
        "default: the batched paged-decode attention kernel, so the "
        "looped decode rung genuinely escapes)",
    )
    p.add_argument("--max-retries", type=int, default=3)
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape (caps streams/layers/seq-len/tokens)",
    )
    p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any gate fails: conservation, zero KV overflow "
        "allocs, bitwise equality of every served stream vs the "
        "per-request decode loop",
    )
    p.add_argument(
        "--out",
        default=None,
        help="write the generation report JSON here (CI artifact)",
    )
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "metrics",
        help="replay a small serving trace and emit the metrics registry",
    )
    p.add_argument("--requests", type=int, default=64)
    p.add_argument("--max-seq-len", type=int, default=128)
    p.add_argument("--alpha", type=float, default=0.6)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--device", choices=sorted(DEVICES), default=A100_SPEC.name
    )
    p.add_argument(
        "--deadline-us",
        type=float,
        default=0.0,
        help="per-request latency budget in us (0 = no deadlines)",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=0.08,
        help="transient fault probability per targeted launch",
    )
    p.add_argument(
        "--batcher",
        choices=("timeout", "continuous"),
        default="continuous",
    )
    p.add_argument("--token-budget", type=int, default=1024)
    p.add_argument(
        "--format",
        choices=("prom", "json", "text"),
        default="prom",
        help="prom = Prometheus text exposition, json = exact snapshot, "
        "text = the SLO summary",
    )
    p.add_argument("--out", default=None, help="write the output here")
    p.add_argument(
        "--check",
        action="store_true",
        help="re-parse the Prometheus exposition; exit 1 if it is "
        "malformed or empty",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke shape (caps requests/layers/seq-len)",
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("devices", help="show device presets")
    p.set_defaults(func=cmd_devices)

    p = sub.add_parser(
        "selftest",
        help="numerically validate every pipeline against the oracle",
    )
    p.set_defaults(func=cmd_selftest)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Invalid arguments — whether rejected by argparse or by a command's
    own validation — exit with code 2 and a one-line message rather than
    a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, GpuSimError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
