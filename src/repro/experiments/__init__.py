"""Experiment harnesses — one module per table/figure of the paper.

Each module exposes ``run()`` (structured result), ``format_result()``
(the same rows/series the paper reports, plus paper-vs-measured
comparison lines) and ``main()``.

| module              | reproduces                                     |
|---------------------|------------------------------------------------|
| table1_features     | Table I (framework feature matrix)             |
| fig3_breakdown      | Figure 3 (single-layer profiling breakdown)    |
| fig9_layernorm_fusion | Figure 9 (add-bias+layernorm fusion)         |
| fig10_gelu_fusion   | Figure 10 (GEMM+bias+GELU epilogue fusion)     |
| table2_flops        | Table II (FLOP counts under zero padding)      |
| fig11_mha_short     | Figure 11 (fused MHA, short sequences)         |
| fig12_mha_long      | Figure 12 (fused MHA, long sequences)          |
| fig13_stepwise      | Figure 13 (step-wise single-layer gains)       |
| fig14_end_to_end    | Figure 14 (end-to-end framework comparison)    |
| ablation_scheduler  | §III-E.2 (warp prefetch, full reduction share) |
| ablation_alpha      | extension: fill-ratio sensitivity              |
| ablation_devices    | extension: V100/A10 device sensitivity         |
| ablation_memory     | extension: activation-memory footprint         |
| ablation_flash      | extension: FlashAttention varlen waste (§II-B) |
| ablation_decode     | extension: decode-time KV-cache zero padding   |
"""

from repro.experiments import (
    ablation_alpha,
    ablation_decode,
    ablation_devices,
    ablation_flash,
    ablation_memory,
    ablation_scheduler,
    fig3_breakdown,
    fig9_layernorm_fusion,
    fig10_gelu_fusion,
    fig11_mha_short,
    fig12_mha_long,
    fig13_stepwise,
    fig14_end_to_end,
    table1_features,
    table2_flops,
)

ALL_EXPERIMENTS = {
    "table1": table1_features,
    "fig3": fig3_breakdown,
    "fig9": fig9_layernorm_fusion,
    "fig10": fig10_gelu_fusion,
    "table2": table2_flops,
    "fig11": fig11_mha_short,
    "fig12": fig12_mha_long,
    "fig13": fig13_stepwise,
    "fig14": fig14_end_to_end,
    "scheduler": ablation_scheduler,
    "alpha": ablation_alpha,
    "devices": ablation_devices,
    "memory": ablation_memory,
    "flash": ablation_flash,
    "decode": ablation_decode,
}

__all__ = ["ALL_EXPERIMENTS"] + [m.__name__.split(".")[-1] for m in ALL_EXPERIMENTS.values()]
