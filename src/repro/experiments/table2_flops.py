"""Table II — computation counts under the zero-padding algorithm.

Regenerates the paper's FLOP table (baseline / zero padding /
zero padding + fused MHA) for the standard configuration and verifies
two things the paper asserts:

* the analytic α-formulas match the FLOPs the simulator actually meters
  when running the corresponding pipelines on a concrete batch whose
  average length is exactly ``α x max`` (checked in the tests with exact
  per-batch counts);
* the §III-D claim that enabling zero padding at α = 0.6 removes ~40% of
  the non-MHA GEMM work (the computations go from ``m`` to ``α·m``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BertConfig
from repro.core.flops import LayerFlops, format_table2, table2
from repro.experiments.runner import Comparison


@dataclass(frozen=True)
class Table2Result:
    batch: int
    max_seq_len: int
    alpha: float
    columns: dict[str, LayerFlops]

    @property
    def zero_padding_total_ratio(self) -> float:
        return (
            self.columns["Zero Padding"].total
            / self.columns["Baseline"].total
        )

    @property
    def fused_total_ratio(self) -> float:
        return (
            self.columns["Zero Padding + fused MHA"].total
            / self.columns["Baseline"].total
        )


def run(
    batch: int = 16,
    max_seq_len: int = 1024,
    alpha: float = 0.6,
    config: BertConfig | None = None,
) -> Table2Result:
    """Run the experiment sweep and return its structured result."""
    cfg = config or BertConfig()
    return Table2Result(
        batch=batch,
        max_seq_len=max_seq_len,
        alpha=alpha,
        columns=table2(batch, max_seq_len, alpha, cfg),
    )


def comparisons(result: Table2Result) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    base = result.columns["Baseline"]
    packed = result.columns["Zero Padding"]
    fused = result.columns["Zero Padding + fused MHA"]
    return [
        Comparison(
            "Table II: GEMM0 packed/baseline ratio",
            f"{result.alpha:.2f}",
            f"{packed.gemm0 / base.gemm0:.2f}",
        ),
        Comparison(
            "Table II: MHA unchanged without fused MHA",
            "1.00",
            f"{packed.mha / base.mha:.2f}",
        ),
        Comparison(
            "Table II: MHA fused/baseline ratio",
            f"{result.alpha ** 2:.2f}",
            f"{fused.mha / base.mha:.2f}",
        ),
    ]


def format_result(result: Table2Result) -> str:
    """Render the result as the paper-style text block."""
    header = (
        f"== Table II: FLOPs per single layer (batch {result.batch}, "
        f"max seq {result.max_seq_len}, alpha {result.alpha}) =="
    )
    body = format_table2(result.columns)
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{header}\n{body}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
