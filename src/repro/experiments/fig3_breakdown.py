"""Figure 3 — performance breakdown of a single-layer BERT Transformer.

Profiles the unoptimised baseline pipeline (Figure 2 (a)) on fixed-length
batches at sequence lengths 256 and 1024 (batch 16, 12 heads, head size
64) and reports the per-category time shares the paper plots: the four
projection/FFN GEMMs, the attention block, and the memory-bound
layernorm/activation groups.

Paper reference points: GEMM0-3 account for 61% (seq 256) and 40%
(seq 1024) of the layer; attention grows from ~22% to 49%; the remaining
memory-bound operations take 11-17%; the two add-bias+layernorm groups
take ~10% / ~6% and add-bias+activation ~7% / ~5%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BASELINE
from repro.core.estimator import estimate_model
from repro.experiments.runner import SINGLE_LAYER_CONFIG, Comparison
from repro.gpusim import ExecutionContext, ProfileReport

#: the figure's two profiled sequence lengths
PROFILED_SEQS = (256, 1024)
PROFILE_BATCH = 16

#: paper-reported shares: (gemm_total, attention, memory_bound)
PAPER_SHARES = {256: (0.61, 0.32, 0.17), 1024: (0.40, 0.49, 0.11)}


@dataclass(frozen=True)
class BreakdownResult:
    seq_len: int
    total_us: float
    fractions: dict[str, float]
    report: ProfileReport

    @property
    def gemm_share(self) -> float:
        return sum(
            self.fractions.get(g, 0.0)
            for g in ("gemm0", "gemm1", "gemm2", "gemm3")
        )

    @property
    def attention_share(self) -> float:
        return self.fractions.get("attention", 0.0)

    @property
    def memory_bound_share(self) -> float:
        return sum(
            self.fractions.get(g, 0.0)
            for g in ("layernorm0", "layernorm1", "activation")
        )


def run(seq_len: int = 256, batch: int = PROFILE_BATCH) -> BreakdownResult:
    """Profile one fixed-length single-layer baseline forward pass."""
    lens = np.full(batch, seq_len, dtype=np.int64)
    ctx = ExecutionContext()
    estimate_model(ctx, SINGLE_LAYER_CONFIG, BASELINE, lens, seq_len)
    report = ProfileReport.from_context(ctx)
    return BreakdownResult(
        seq_len=seq_len,
        total_us=report.total_us,
        fractions=report.fractions(),
        report=report,
    )


def run_all() -> list[BreakdownResult]:
    """Run the experiment at every profiled configuration."""
    return [run(seq) for seq in PROFILED_SEQS]


def comparisons(results: list[BreakdownResult]) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    out = []
    for res in results:
        paper_gemm, paper_attn, paper_mem = PAPER_SHARES[res.seq_len]
        out.extend(
            [
                Comparison(
                    f"Fig 3 seq {res.seq_len}: GEMM0-3 share",
                    f"{paper_gemm:.0%}",
                    f"{res.gemm_share:.0%}",
                ),
                Comparison(
                    f"Fig 3 seq {res.seq_len}: attention share",
                    f"~{paper_attn:.0%}",
                    f"{res.attention_share:.0%}",
                ),
                Comparison(
                    f"Fig 3 seq {res.seq_len}: memory-bound share",
                    f"{paper_mem:.0%}",
                    f"{res.memory_bound_share:.0%}",
                ),
            ]
        )
    return out


def format_result(results: list[BreakdownResult]) -> str:
    """Render the result as the paper-style text block."""
    lines = ["== Figure 3: single-layer BERT breakdown (batch 16) =="]
    for res in results:
        lines.append(res.report.to_table(f"seq_len = {res.seq_len}"))
    for comp in comparisons(results):
        lines.append(comp.render())
    return "\n".join(lines)


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run_all()))


if __name__ == "__main__":
    main()
