"""Figure 14 — end-to-end 12-layer BERT across frameworks.

Sweeps batch sizes 1/8/16 (sub-figures a/b/c) and sequence lengths
128-1024 with average length 0.6 x max, timing all five framework models.
TurboTransformer rows stop at 512, as in the paper ("TurboTransformer
only supports sequence lengths smaller than 512").

Paper reference (averages over the sweep): ByteTransformer outperforms
PyTorch JIT, TensorFlow XLA, TurboTransformer and FasterTransformer by
87%, 131%, 138% and 46%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    BATCH_GRID,
    SEQ_GRID,
    STANDARD_CONFIG,
    Comparison,
    geomean_speedup,
    paper_workload,
    render_table,
)
from repro.frameworks import all_frameworks
from repro.frameworks.base import Framework

PAPER_GAINS = {
    "PyTorch JIT": 0.87,
    "TensorFlow XLA": 1.31,
    "TurboTransformer": 1.38,
    "FasterTransformer": 0.46,
}


@dataclass(frozen=True)
class EndToEndPoint:
    batch: int
    max_seq_len: int
    #: framework name -> latency (us); absent if unsupported
    times_us: dict[str, float]


@dataclass(frozen=True)
class EndToEndResult:
    points: tuple[EndToEndPoint, ...]

    def average_gain(self, framework_name: str) -> float:
        pairs = [
            (p.times_us[framework_name], p.times_us["ByteTransformer"])
            for p in self.points
            if framework_name in p.times_us
        ]
        return geomean_speedup(pairs)

    def points_for_batch(self, batch: int) -> list[EndToEndPoint]:
        return [p for p in self.points if p.batch == batch]


def run(
    batches: tuple[int, ...] = BATCH_GRID,
    seq_lens: tuple[int, ...] = SEQ_GRID,
    frameworks: list[Framework] | None = None,
    seed: int = 0,
) -> EndToEndResult:
    """Run the experiment sweep and return its structured result."""
    fws = frameworks if frameworks is not None else all_frameworks()
    points = []
    for batch in batches:
        for seq in seq_lens:
            lens = paper_workload(batch, seq, seed)
            times = {
                fw.name: fw.latency_us(STANDARD_CONFIG, lens, seq)
                for fw in fws
                if fw.supports(seq)
            }
            points.append(
                EndToEndPoint(batch=batch, max_seq_len=seq, times_us=times)
            )
    return EndToEndResult(points=tuple(points))


def comparisons(result: EndToEndResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    return [
        Comparison(
            f"Fig 14: ByteTransformer vs {name}",
            f"+{paper:.0%}",
            f"+{result.average_gain(name):.0%}",
        )
        for name, paper in PAPER_GAINS.items()
    ]


def format_result(result: EndToEndResult) -> str:
    """Render the result as the paper-style text block."""
    blocks = []
    names = [fw.name for fw in all_frameworks()]
    for batch in sorted({p.batch for p in result.points}):
        rows = []
        for p in result.points_for_batch(batch):
            rows.append(
                [p.max_seq_len]
                + [
                    f"{p.times_us[n] / 1000:.2f}" if n in p.times_us else "-"
                    for n in names
                ]
            )
        blocks.append(
            render_table(
                ["max_seq"] + names,
                rows,
                title=f"Figure 14: end-to-end BERT latency (ms), batch {batch}",
                col_width=19,
            )
        )
    comp = "\n".join(c.render() for c in comparisons(result))
    return "\n\n".join(blocks) + "\n" + comp


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
