"""Extension ablation: activation-memory footprint, padded vs packed.

The paper motivates zero padding with memory as well as compute: padded
zeros "introduce significant memory overhead that can hinder a large
Transformer model from being efficiently deployed".  This experiment
quantifies that on the reproduction: peak live activation bytes and the
TurboTransformer-style reusing-arena size for the baseline padded
pipeline vs the packed fused pipeline, across sequence lengths.

Expected shape: the padded pipeline is dominated by the quadratic
``B x H x S x S`` score tensor, so the packed fused variant wins by a
growing factor while the short kernel applies (it never materialises
scores at all); at the 384→512 dispatch boundary the grouped kernel
starts storing the *packed* score tensor (``sum len_i^2``), so the gain
steps down to ~α²-driven levels and then stays flat — both regimes well
above 2x at the paper's α = 0.6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BASELINE, FUSED_MHA
from repro.core.memory_planner import MemoryReport, memory_report
from repro.experiments.runner import (
    SEQ_GRID,
    STANDARD_CONFIG,
    paper_workload,
    render_table,
)

MEMORY_BATCH = 16


@dataclass(frozen=True)
class MemoryPoint:
    max_seq_len: int
    baseline: MemoryReport
    fused: MemoryReport

    @property
    def peak_reduction(self) -> float:
        return self.baseline.peak_bytes / self.fused.peak_bytes

    @property
    def arena_reduction(self) -> float:
        return self.baseline.arena_bytes / self.fused.arena_bytes


@dataclass(frozen=True)
class MemorySweepResult:
    batch: int
    points: tuple[MemoryPoint, ...]

    def reduction_grows_within_short_regime(self) -> bool:
        """Monotone gain while the short fused kernel (no score tensor)
        is dispatched; the grouped kernel re-materialises packed scores,
        so the trend restarts past the dispatch boundary."""
        short = [
            p.peak_reduction for p in self.points if p.max_seq_len <= 384
        ]
        return all(a <= b + 1e-9 for a, b in zip(short, short[1:]))

    def reduction_substantial(self, threshold: float = 1.5) -> bool:
        return all(p.peak_reduction >= threshold for p in self.points)


def run(
    batch: int = MEMORY_BATCH,
    seq_lens: tuple[int, ...] = SEQ_GRID,
    seed: int = 0,
) -> MemorySweepResult:
    """Run the experiment sweep and return its structured result."""
    points = []
    for seq in seq_lens:
        lens = paper_workload(batch, seq, seed)
        points.append(
            MemoryPoint(
                max_seq_len=seq,
                baseline=memory_report(
                    STANDARD_CONFIG, BASELINE, lens, seq
                ),
                fused=memory_report(STANDARD_CONFIG, FUSED_MHA, lens, seq),
            )
        )
    return MemorySweepResult(batch=batch, points=tuple(points))


def format_result(result: MemorySweepResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (
            p.max_seq_len,
            p.baseline.peak_mb,
            p.fused.peak_mb,
            f"{p.peak_reduction:.2f}x",
            p.baseline.arena_mb,
            p.fused.arena_mb,
            f"{p.arena_reduction:.2f}x",
        )
        for p in result.points
    ]
    table = render_table(
        (
            "max_seq",
            "base_peak_MB",
            "fused_peak_MB",
            "peak gain",
            "base_arena_MB",
            "fused_arena_MB",
            "arena gain",
        ),
        rows,
        title=(
            f"Activation memory, padded baseline vs packed fused "
            f"(batch {result.batch}, alpha 0.6)"
        ),
        col_width=16,
    )
    trend = (
        "gain grows within the short-kernel regime: "
        + ("yes" if result.reduction_grows_within_short_regime() else "NO")
        + "; >=1.5x everywhere: "
        + ("yes" if result.reduction_substantial() else "NO")
    )
    return f"{table}\n{trend}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
