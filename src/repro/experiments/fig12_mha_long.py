"""Figure 12 — fused MHA for long sequences.

Same four variants as Figure 11, but with maximal sequence lengths of
512 and beyond, where ByteTransformer dispatches the grouped-GEMM FMHA
(§III-E.2) instead of the shared-memory kernel.

Paper reference (average): fused MHA beats PyTorch / cuBLAS /
cuBLAS+zero-padding by 451%, 110% and 79%; cuBLAS only triples PyTorch
here (the quadratic score tensor dominates); zero-padding softmax adds
~17% over cuBLAS.
"""

from __future__ import annotations

from repro.experiments.fig11_mha_short import (
    MhaComparisonResult,
    format_result as _format_short,
    measure_point,
)
from repro.experiments.runner import LONG_SEQS, Comparison

PAPER_GAINS = {"pytorch": 4.51, "cublas": 1.10, "zeropad": 0.79}
FIG12_BATCH = 16

from repro.experiments.fig11_mha_short import VARIANTS  # noqa: E402


def run(
    seq_lens: tuple[int, ...] = LONG_SEQS, batch: int = FIG12_BATCH
) -> MhaComparisonResult:
    """Run the experiment sweep and return its structured result."""
    return MhaComparisonResult(
        points=tuple(measure_point(seq, batch) for seq in seq_lens)
    )


def comparisons(result: MhaComparisonResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    return [
        Comparison(
            f"Fig 12: fused MHA vs {VARIANTS[variant]}",
            f"+{paper:.0%}",
            f"+{result.average_gain(variant):.0%}",
        )
        for variant, paper in PAPER_GAINS.items()
    ]


def format_result(result: MhaComparisonResult) -> str:
    """Render the result as the paper-style text block."""
    table = _format_short(
        result, title="Figure 12: fused MHA, long sequences"
    )
    # replace the short-figure comparison block with the long one
    table_only = table.split("\nFig 11")[0]
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{table_only}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
