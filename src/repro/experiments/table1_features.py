"""Table I — feature matrix of state-of-the-art Transformers.

Unlike the timing figures, Table I is a statement about what each
framework *implements*; the experiment checks our framework models expose
exactly the paper's feature rows and renders the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frameworks import all_frameworks, table1_rows
from repro.frameworks.base import Framework

#: the paper's Table I, row by row: (variable-len, tuning, fused MHA,
#: kernel fusion) — fused MHA is None / max-seq / -1 (any length)
PAPER_TABLE1: dict[str, tuple[bool, bool, int | None, str]] = {
    "TensorFlow XLA": (False, True, None, "no"),
    "PyTorch JIT": (False, True, None, "no"),
    "FasterTransformer": (True, True, 512, "no"),
    "TurboTransformer": (True, True, None, "partially"),
    "ByteTransformer": (True, True, -1, "yes"),
}


@dataclass(frozen=True)
class Table1Result:
    frameworks: tuple[Framework, ...]
    matches_paper: bool
    mismatches: tuple[str, ...]


def run() -> Table1Result:
    """Check every framework model against the paper's Table I row."""
    frameworks = tuple(all_frameworks())
    mismatches = []
    for fw in frameworks:
        expected = PAPER_TABLE1.get(fw.name)
        if expected is None:
            mismatches.append(f"{fw.name}: not in the paper's table")
            continue
        actual = (
            fw.features.variable_length_support,
            fw.features.kernel_tuning,
            fw.features.fused_mha_max_seq,
            fw.features.kernel_fusion,
        )
        if actual != expected:
            mismatches.append(
                f"{fw.name}: model says {actual}, paper says {expected}"
            )
    return Table1Result(
        frameworks=frameworks,
        matches_paper=not mismatches,
        mismatches=tuple(mismatches),
    )


def format_result(result: Table1Result) -> str:
    """Render the result as the paper-style text block."""
    lines = ["== Table I: framework feature matrix =="]
    lines.append(table1_rows(list(result.frameworks)))
    lines.append(
        "matches paper: yes"
        if result.matches_paper
        else "MISMATCHES: " + "; ".join(result.mismatches)
    )
    return "\n".join(lines)


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
