"""Extension ablation: sensitivity to the fill ratio α = avg/max length.

The paper evaluates only at α = 0.6.  This sweep varies α from 0.3 to
1.0 on the 12-layer end-to-end model and reports ByteTransformer's gain
over its own padded baseline and over FasterTransformer.  The expected
shape: gains shrink toward α = 1 (no padding to remove — only the fusion
wins remain) and grow as α falls (padding waste scales as 1/α for the
linear modules and 1/α² inside attention).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BASELINE, FUSED_MHA
from repro.core.estimator import estimate_model
from repro.experiments.runner import (
    STANDARD_CONFIG,
    render_table,
)
from repro.frameworks import FasterTransformer
from repro.gpusim import ExecutionContext
from repro.workloads.generator import uniform_lengths

ALPHA_GRID = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class AlphaPoint:
    alpha: float
    realised_alpha: float
    baseline_us: float
    faster_transformer_us: float
    byte_transformer_us: float

    @property
    def gain_vs_baseline(self) -> float:
        return self.baseline_us / self.byte_transformer_us - 1.0

    @property
    def gain_vs_ft(self) -> float:
        return self.faster_transformer_us / self.byte_transformer_us - 1.0


@dataclass(frozen=True)
class AlphaSweepResult:
    batch: int
    max_seq_len: int
    points: tuple[AlphaPoint, ...]

    def gains_monotone_decreasing(self) -> bool:
        """Padding-removal gains should shrink as α rises toward 1."""
        gains = [p.gain_vs_baseline for p in self.points]
        return all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))


def run(
    batch: int = 16,
    max_seq_len: int = 512,
    alphas: tuple[float, ...] = ALPHA_GRID,
    seed: int = 0,
) -> AlphaSweepResult:
    """Run the experiment sweep and return its structured result."""
    ft = FasterTransformer()
    points = []
    for alpha in alphas:
        rng = np.random.default_rng(seed)
        lens = uniform_lengths(batch, max_seq_len, alpha, rng)
        ctx = ExecutionContext()
        base = estimate_model(ctx, STANDARD_CONFIG, BASELINE, lens, max_seq_len)
        ft_us = ft.latency_us(STANDARD_CONFIG, lens, max_seq_len)
        ctx = ExecutionContext()
        bt = estimate_model(ctx, STANDARD_CONFIG, FUSED_MHA, lens, max_seq_len)
        points.append(
            AlphaPoint(
                alpha=alpha,
                realised_alpha=float(np.mean(lens)) / max_seq_len,
                baseline_us=base,
                faster_transformer_us=ft_us,
                byte_transformer_us=bt,
            )
        )
    return AlphaSweepResult(
        batch=batch, max_seq_len=max_seq_len, points=tuple(points)
    )


def format_result(result: AlphaSweepResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (
            f"{p.alpha:.1f}",
            f"{p.realised_alpha:.2f}",
            p.baseline_us / 1000,
            p.faster_transformer_us / 1000,
            p.byte_transformer_us / 1000,
            f"+{p.gain_vs_baseline:.0%}",
            f"+{p.gain_vs_ft:.0%}",
        )
        for p in result.points
    ]
    table = render_table(
        (
            "alpha",
            "realised",
            "baseline_ms",
            "FT_ms",
            "BT_ms",
            "vs base",
            "vs FT",
        ),
        rows,
        title=(
            f"Alpha sweep: end-to-end BERT, batch {result.batch}, "
            f"max seq {result.max_seq_len}"
        ),
    )
    trend = (
        "gain shrinks monotonically toward alpha = 1: "
        + ("yes" if result.gains_monotone_decreasing() else "NO")
    )
    return f"{table}\n{trend}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
