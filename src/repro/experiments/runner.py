"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes ``run()`` returning a structured result
and ``format_result()`` rendering the same rows/series the paper reports,
plus paper-reported reference numbers so EXPERIMENTS.md can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import BertConfig
from repro.workloads.generator import uniform_lengths

#: the sequence-length grid the paper sweeps (Figures 9-14)
SEQ_GRID: tuple[int, ...] = (128, 256, 384, 512, 768, 1024)
#: short-sequence subset (Figure 11's regime)
SHORT_SEQS: tuple[int, ...] = (128, 192, 256, 320, 384)
#: long-sequence subset (Figure 12's regime)
LONG_SEQS: tuple[int, ...] = (512, 640, 768, 896, 1024)
#: the paper's evaluation batch sizes (Figure 14 a/b/c)
BATCH_GRID: tuple[int, ...] = (1, 8, 16)
#: the paper's average/maximum length ratio
PAPER_ALPHA = 0.6

#: standard BERT-base configuration (12 heads, head size 64, 12 layers)
STANDARD_CONFIG = BertConfig()
#: single-layer variant used by Figures 3 and 13
SINGLE_LAYER_CONFIG = BertConfig(num_layers=1)


def paper_workload(
    batch: int, max_seq_len: int, seed: int = 0, alpha: float = PAPER_ALPHA
) -> np.ndarray:
    """Seeded variable-length batch matching the paper's setting."""
    rng = np.random.default_rng(seed)
    return uniform_lengths(batch, max_seq_len, alpha, rng)


def speedup(baseline_us: float, optimised_us: float) -> float:
    """Relative improvement, reported the paper's way (+X%)."""
    if optimised_us <= 0:
        raise ValueError("optimised time must be positive")
    return baseline_us / optimised_us - 1.0


def geomean_speedup(pairs: Iterable[tuple[float, float]]) -> float:
    """Geometric-mean speedup over (baseline, optimised) pairs."""
    ratios = [b / o for b, o in pairs]
    if not ratios:
        raise ValueError("need at least one pair")
    return float(np.exp(np.mean(np.log(ratios)))) - 1.0


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured line of EXPERIMENTS.md."""

    metric: str
    paper: str
    measured: str

    def render(self) -> str:
        return f"{self.metric:<52} paper: {self.paper:>10}   ours: {self.measured:>10}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    col_width: int = 14,
) -> str:
    """Fixed-width text table used by every experiment's formatter."""
    lines: list[str] = []
    if title:
        lines.append(f"== {title} ==")
    lines.append(
        "".join(f"{str(h):>{col_width}}" for h in headers)
    )
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>{col_width}.1f}")
            else:
                cells.append(f"{str(value):>{col_width}}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_us(value: float) -> str:
    """Microseconds with sensible units."""
    if value >= 10_000:
        return f"{value / 1000:.2f} ms"
    return f"{value:.1f} us"
