"""Extension ablation: FlashAttention vs the padding-free fused MHA.

§II-B's related-work claim: "FlashAttention ... assumes identical shapes
of inputs and assigns the workload of a whole attention unit to a single
CTA.  However, FlashAttention brings significant wasted computations if
input sequence lengths are variable."

This sweep holds the padded shape fixed and varies the fill ratio α: the
fixed-shape FlashAttention kernel's cost is α-independent (it always
computes the padded ``S x S`` scores), while ByteTransformer's fused MHA
scales with the valid work — so the gap should widen as α falls, and
close (or invert, since Flash never materialises statistics) as α → 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FUSED_MHA
from repro.core.estimator import estimate_byte_mha
from repro.experiments.runner import SINGLE_LAYER_CONFIG, render_table
from repro.gpusim import ExecutionContext, KernelLaunch
from repro.gpusim.kernel import ComputeUnit
from repro.gpusim.memory import BYTES_PER_ELEMENT
from repro.workloads.generator import normal_lengths

ALPHAS = (0.3, 0.45, 0.6, 0.8, 1.0)
FLASH_BATCH = 16


def flash_launch(batch: int, seq_len: int) -> KernelLaunch:
    """The fixed-shape FlashAttention launch for this padded shape."""
    from repro.attention.flash import _FLASH_EFFICIENCY

    cfg = SINGLE_LAYER_CONFIG
    return KernelLaunch(
        name="flash_mha",
        category="attention",
        grid=batch * cfg.num_heads,
        block_threads=128,
        flops=4.0 * batch * cfg.num_heads * seq_len * seq_len * cfg.head_size,
        dram_bytes=4.0
        * batch
        * cfg.num_heads
        * seq_len
        * cfg.head_size
        * BYTES_PER_ELEMENT,
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=_FLASH_EFFICIENCY,
        regs_per_thread=128,
    )


@dataclass(frozen=True)
class FlashPoint:
    alpha: float
    flash_us: float
    fused_us: float

    @property
    def byte_gain(self) -> float:
        return self.flash_us / self.fused_us - 1.0


@dataclass(frozen=True)
class FlashComparisonResult:
    max_seq_len: int
    points: tuple[FlashPoint, ...]

    def gap_widens_as_alpha_falls(self) -> bool:
        gains = [p.byte_gain for p in self.points]  # alpha ascending
        return all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def flash_cost_alpha_independent(self) -> bool:
        times = {round(p.flash_us, 6) for p in self.points}
        return len(times) == 1


def run(
    max_seq_len: int = 512,
    batch: int = FLASH_BATCH,
    alphas: tuple[float, ...] = ALPHAS,
    seed: int = 0,
) -> FlashComparisonResult:
    """Run the experiment sweep and return its structured result."""
    points = []
    for alpha in alphas:
        # clipped-normal lengths: unlike the uniform generator, it can
        # realise means well below 0.5 x max
        rng = np.random.default_rng(seed)
        lens = normal_lengths(batch, max_seq_len, alpha, rng)

        ctx = ExecutionContext()
        ctx.launch(flash_launch(batch, max_seq_len))
        flash_us = ctx.elapsed_us()

        ctx = ExecutionContext()
        estimate_byte_mha(ctx, lens, SINGLE_LAYER_CONFIG, FUSED_MHA)
        fused_us = ctx.elapsed_us()
        points.append(
            FlashPoint(alpha=alpha, flash_us=flash_us, fused_us=fused_us)
        )
    return FlashComparisonResult(max_seq_len=max_seq_len, points=tuple(points))


def format_result(result: FlashComparisonResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (
            f"{p.alpha:.2f}",
            p.flash_us,
            p.fused_us,
            f"{p.byte_gain:+.0%}",
        )
        for p in result.points
    ]
    table = render_table(
        ("alpha", "flash_us", "byte_fused_us", "BT gain"),
        rows,
        title=(
            f"FlashAttention (fixed-shape) vs padding-free fused MHA, "
            f"batch {FLASH_BATCH}, max seq {result.max_seq_len}"
        ),
    )
    notes = [
        "flash cost independent of alpha: "
        + ("yes" if result.flash_cost_alpha_independent() else "NO"),
        "ByteTransformer's edge grows as alpha falls: "
        + ("yes" if result.gap_widens_as_alpha_falls() else "NO"),
    ]
    return table + "\n" + "\n".join(notes)


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
