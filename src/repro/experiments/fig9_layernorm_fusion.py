"""Figure 9 — kernel fusion for the add-bias + layernorm group.

Compares the two-kernel baseline (add-bias-and-residual, then layernorm)
against the fused single kernel on a ``(batch*seq) x hidden`` tensor,
batch 16, hidden 768, sequence lengths 128-1024.

Paper reference: the fused kernel improves this group by ~69% on average
over the unfused baseline (61% quoted at the kernel level in §III-C.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    SEQ_GRID,
    Comparison,
    geomean_speedup,
    render_table,
    speedup,
)
from repro.gpusim import ExecutionContext
from repro.kernels.layernorm import (
    add_bias_residual_launch,
    fused_layernorm_launch,
    layernorm_launch,
)

PAPER_AVG_GAIN = 0.69
FIG9_BATCH = 16
FIG9_HIDDEN = 768


@dataclass(frozen=True)
class LayernormFusionPoint:
    seq_len: int
    unfused_us: float
    fused_us: float

    @property
    def gain(self) -> float:
        return speedup(self.unfused_us, self.fused_us)


@dataclass(frozen=True)
class LayernormFusionResult:
    points: tuple[LayernormFusionPoint, ...]

    @property
    def average_gain(self) -> float:
        return geomean_speedup(
            (p.unfused_us, p.fused_us) for p in self.points
        )


def run(
    seq_lens: tuple[int, ...] = SEQ_GRID,
    batch: int = FIG9_BATCH,
    hidden: int = FIG9_HIDDEN,
) -> LayernormFusionResult:
    """Run the experiment sweep and return its structured result."""
    points = []
    for seq in seq_lens:
        rows = batch * seq
        ctx = ExecutionContext()
        ctx.launch(add_bias_residual_launch(rows, hidden))
        ctx.launch(layernorm_launch(rows, hidden))
        unfused = ctx.elapsed_us()

        ctx = ExecutionContext()
        ctx.launch(fused_layernorm_launch(rows, hidden))
        fused = ctx.elapsed_us()
        points.append(
            LayernormFusionPoint(
                seq_len=seq, unfused_us=unfused, fused_us=fused
            )
        )
    return LayernormFusionResult(points=tuple(points))


def comparisons(result: LayernormFusionResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    return [
        Comparison(
            "Fig 9: fused add-bias+layernorm avg gain",
            f"+{PAPER_AVG_GAIN:.0%}",
            f"+{result.average_gain:.0%}",
        )
    ]


def format_result(result: LayernormFusionResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (p.seq_len, p.unfused_us, p.fused_us, f"+{p.gain:.0%}")
        for p in result.points
    ]
    table = render_table(
        ("seq_len", "unfused_us", "fused_us", "gain"),
        rows,
        title="Figure 9: add-bias + layernorm fusion (batch 16, hidden 768)",
    )
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{table}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
