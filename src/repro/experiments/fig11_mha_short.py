"""Figure 11 — fused MHA for short sequences.

Four MHA implementations on variable-length batches (batch 16, average
length 0.6 x max) with maximal sequence lengths up to 384 (the short
fused kernel's regime):

* ``PyTorch`` — standard FP32 eager MHA (many kernels, padded);
* ``cuBLAS`` — FP16 batched GEMM + fused masked softmax (padded);
* ``cuBLAS + zero padding`` — same GEMMs, softmax touches valid tokens;
* ``fused MHA`` — Algorithm III.1, one padding-free kernel.

Paper reference (average over its swept lengths): fused MHA beats the
three variants by 617%, 42% and 30%; cuBLAS beats standard PyTorch by
~5x; zero-padding softmax adds ~9% over cuBLAS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FUSED_MHA
from repro.core.estimator import (
    estimate_byte_mha,
    estimate_standard_mha,
    estimate_unfused_cublas_mha,
    estimate_zeropad_mha,
)
from repro.experiments.runner import (
    SHORT_SEQS,
    SINGLE_LAYER_CONFIG,
    Comparison,
    geomean_speedup,
    paper_workload,
    render_table,
)
from repro.gpusim import ExecutionContext

PAPER_GAINS = {"pytorch": 6.17, "cublas": 0.42, "zeropad": 0.30}
FIG11_BATCH = 16

#: implementation key -> display label (paper legend order)
VARIANTS = {
    "pytorch": "PyTorch",
    "cublas": "cuBLAS",
    "zeropad": "cuBLAS + zero padding",
    "fused": "fused MHA",
}


@dataclass(frozen=True)
class MhaPoint:
    max_seq_len: int
    times_us: dict[str, float]

    def gain_over(self, variant: str) -> float:
        return self.times_us[variant] / self.times_us["fused"] - 1.0


@dataclass(frozen=True)
class MhaComparisonResult:
    points: tuple[MhaPoint, ...]

    def average_gain(self, variant: str) -> float:
        return geomean_speedup(
            (p.times_us[variant], p.times_us["fused"]) for p in self.points
        )


def measure_point(
    max_seq_len: int, batch: int = FIG11_BATCH, seed: int = 0
) -> MhaPoint:
    """Time all four MHA variants on one workload."""
    config = SINGLE_LAYER_CONFIG
    lens = paper_workload(batch, max_seq_len, seed)
    times: dict[str, float] = {}

    ctx = ExecutionContext()
    estimate_standard_mha(ctx, batch, max_seq_len, config)
    times["pytorch"] = ctx.elapsed_us()

    ctx = ExecutionContext()
    estimate_unfused_cublas_mha(ctx, batch, max_seq_len, config)
    times["cublas"] = ctx.elapsed_us()

    ctx = ExecutionContext()
    estimate_zeropad_mha(ctx, lens, max_seq_len, config)
    times["zeropad"] = ctx.elapsed_us()

    ctx = ExecutionContext()
    estimate_byte_mha(ctx, lens, config, FUSED_MHA)
    times["fused"] = ctx.elapsed_us()
    return MhaPoint(max_seq_len=max_seq_len, times_us=times)


def run(
    seq_lens: tuple[int, ...] = SHORT_SEQS, batch: int = FIG11_BATCH
) -> MhaComparisonResult:
    """Run the experiment sweep and return its structured result."""
    return MhaComparisonResult(
        points=tuple(measure_point(seq, batch) for seq in seq_lens)
    )


def comparisons(result: MhaComparisonResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    return [
        Comparison(
            f"Fig 11: fused MHA vs {VARIANTS[variant]}",
            f"+{paper:.0%}",
            f"+{result.average_gain(variant):.0%}",
        )
        for variant, paper in PAPER_GAINS.items()
    ]


def format_result(
    result: MhaComparisonResult, title: str = "Figure 11: fused MHA, short sequences"
) -> str:
    """Render the result as the paper-style text block."""
    headers = ["max_seq"] + [VARIANTS[v] for v in VARIANTS]
    rows = []
    for p in result.points:
        rows.append(
            [p.max_seq_len] + [p.times_us[v] for v in VARIANTS]
        )
    table = render_table(headers, rows, title=title, col_width=22)
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{table}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
