"""Extension ablation: device sensitivity (A100 vs V100 vs A10).

The paper evaluates on an A100 only.  This sweep re-runs the end-to-end
framework comparison on the V100 and A10 device presets to check that
ByteTransformer's advantage is not an artefact of one balance point —
the zero-padding and fusion wins are structural, so the ordering should
hold while absolute latencies scale with each part's throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    STANDARD_CONFIG,
    paper_workload,
    render_table,
)
from repro.frameworks import all_frameworks
from repro.gpusim import A10_SPEC, A100_SPEC, V100_SPEC, DeviceSpec, ExecutionContext

DEVICE_GRID: tuple[DeviceSpec, ...] = (A100_SPEC, V100_SPEC, A10_SPEC)


@dataclass(frozen=True)
class DevicePoint:
    device: str
    batch: int
    max_seq_len: int
    times_us: dict[str, float]

    def byte_transformer_wins(self) -> bool:
        bt = self.times_us["ByteTransformer"]
        return all(
            bt <= t
            for name, t in self.times_us.items()
            if name != "ByteTransformer"
        )


@dataclass(frozen=True)
class DeviceSweepResult:
    points: tuple[DevicePoint, ...]

    def wins_everywhere(self) -> bool:
        return all(p.byte_transformer_wins() for p in self.points)


def run(
    batch: int = 16,
    seq_lens: tuple[int, ...] = (256, 512, 1024),
    devices: tuple[DeviceSpec, ...] = DEVICE_GRID,
    seed: int = 0,
) -> DeviceSweepResult:
    """Run the experiment sweep and return its structured result."""
    points = []
    for device in devices:
        for seq in seq_lens:
            lens = paper_workload(batch, seq, seed)
            times = {}
            for fw in all_frameworks():
                if not fw.supports(seq):
                    continue
                ctx = ExecutionContext(device)
                fw.estimate(ctx, STANDARD_CONFIG, lens, seq)
                times[fw.name] = ctx.elapsed_us()
            points.append(
                DevicePoint(
                    device=device.name,
                    batch=batch,
                    max_seq_len=seq,
                    times_us=times,
                )
            )
    return DeviceSweepResult(points=tuple(points))


def format_result(result: DeviceSweepResult) -> str:
    """Render the result as the paper-style text block."""
    names = [fw.name for fw in all_frameworks()]
    rows = []
    for p in result.points:
        rows.append(
            [p.device, p.max_seq_len]
            + [
                f"{p.times_us[n] / 1000:.2f}" if n in p.times_us else "-"
                for n in names
            ]
        )
    table = render_table(
        ["device", "max_seq"] + names,
        rows,
        title="Device sweep: end-to-end BERT latency (ms), batch 16",
        col_width=19,
    )
    verdict = (
        "ByteTransformer fastest on every device/shape: "
        + ("yes" if result.wins_everywhere() else "NO")
    )
    return f"{table}\n{verdict}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
