"""Consolidated paper-vs-measured report.

Collects the :class:`~repro.experiments.runner.Comparison` lines from
every experiment that has paper-reported numbers and renders them as one
table — the executable version of EXPERIMENTS.md's headline section.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import (
    ablation_scheduler,
    fig3_breakdown,
    fig9_layernorm_fusion,
    fig10_gelu_fusion,
    fig11_mha_short,
    fig12_mha_long,
    fig13_stepwise,
    fig14_end_to_end,
    table2_flops,
)
from repro.experiments.runner import Comparison


@dataclass(frozen=True)
class PaperReport:
    comparisons: tuple[Comparison, ...]

    def render_text(self) -> str:
        lines = ["== paper vs measured (all comparable claims) =="]
        lines.extend(comp.render() for comp in self.comparisons)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            "| claim | paper | ours |",
            "|---|---|---|",
        ]
        for comp in self.comparisons:
            lines.append(
                f"| {comp.metric} | {comp.paper} | {comp.measured} |"
            )
        return "\n".join(lines)


def collect(fast: bool = False) -> PaperReport:
    """Run every comparable experiment and gather its comparison lines.

    ``fast`` shrinks the sweeps (fewer sequence lengths, fewer batches)
    for quick smoke runs; the full report takes ~1 minute.
    """
    comparisons: list[Comparison] = []

    comparisons.extend(fig3_breakdown.comparisons(fig3_breakdown.run_all()))
    comparisons.extend(
        fig9_layernorm_fusion.comparisons(fig9_layernorm_fusion.run())
    )
    comparisons.extend(
        fig10_gelu_fusion.comparisons(fig10_gelu_fusion.run())
    )
    comparisons.extend(table2_flops.comparisons(table2_flops.run()))

    short_seqs = (128, 256) if fast else fig11_mha_short.SHORT_SEQS
    comparisons.extend(
        fig11_mha_short.comparisons(fig11_mha_short.run(seq_lens=short_seqs))
    )
    long_seqs = (512, 1024) if fast else fig12_mha_long.LONG_SEQS
    comparisons.extend(
        fig12_mha_long.comparisons(fig12_mha_long.run(seq_lens=long_seqs))
    )

    stepwise_seqs = (128, 512) if fast else fig13_stepwise.SEQ_GRID
    comparisons.extend(
        fig13_stepwise.comparisons(fig13_stepwise.run(seq_lens=stepwise_seqs))
    )

    batches = (8,) if fast else fig14_end_to_end.BATCH_GRID
    e2e_seqs = (128, 512) if fast else fig14_end_to_end.SEQ_GRID
    comparisons.extend(
        fig14_end_to_end.comparisons(
            fig14_end_to_end.run(batches=batches, seq_lens=e2e_seqs)
        )
    )

    sched_seqs = (512, 1024) if fast else ablation_scheduler.LONG_SEQS
    comparisons.extend(
        ablation_scheduler.comparisons(
            ablation_scheduler.run(seq_lens=sched_seqs)
        )
    )
    return PaperReport(comparisons=tuple(comparisons))


def main() -> None:
    """Print the experiment's formatted result."""
    print(collect().render_text())


if __name__ == "__main__":
    main()
