"""Figure 13 — single-layer BERT with step-wise optimisations.

Runs the five cumulative presets (baseline, +layernorm fusion,
+bias&GELU epilogue fusion, +zero padding, +fused MHA) on variable-length
single-layer workloads (batch 16, α = 0.6) across the sequence grid.

Paper reference (averages): layernorm fusion +3.2%, bias&GELU fusion
+3.8%, zero padding +24%/24.7%, fused MHA +20%; the final version is 60%
faster than the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import STEPWISE_PRESETS, OptimizationConfig
from repro.core.estimator import estimate_model
from repro.experiments.runner import (
    SEQ_GRID,
    SINGLE_LAYER_CONFIG,
    Comparison,
    geomean_speedup,
    paper_workload,
    render_table,
)
from repro.gpusim import ExecutionContext

FIG13_BATCH = 16

PAPER_STEP_GAINS = (0.032, 0.038, 0.247, 0.20)
PAPER_TOTAL_GAIN = 0.60


@dataclass(frozen=True)
class StepwisePoint:
    max_seq_len: int
    #: times in preset order (baseline first)
    times_us: tuple[float, ...]

    def step_gain(self, step: int) -> float:
        """Improvement of preset ``step`` over preset ``step - 1``."""
        return self.times_us[step - 1] / self.times_us[step] - 1.0

    @property
    def total_gain(self) -> float:
        return self.times_us[0] / self.times_us[-1] - 1.0


@dataclass(frozen=True)
class StepwiseResult:
    presets: tuple[OptimizationConfig, ...]
    points: tuple[StepwisePoint, ...]

    def average_step_gain(self, step: int) -> float:
        return geomean_speedup(
            (p.times_us[step - 1], p.times_us[step]) for p in self.points
        )

    @property
    def average_total_gain(self) -> float:
        return geomean_speedup(
            (p.times_us[0], p.times_us[-1]) for p in self.points
        )


def run(
    seq_lens: tuple[int, ...] = SEQ_GRID,
    batch: int = FIG13_BATCH,
    seed: int = 0,
) -> StepwiseResult:
    """Run the experiment sweep and return its structured result."""
    points = []
    for seq in seq_lens:
        lens = paper_workload(batch, seq, seed)
        times = []
        for preset in STEPWISE_PRESETS:
            ctx = ExecutionContext()
            times.append(
                estimate_model(ctx, SINGLE_LAYER_CONFIG, preset, lens, seq)
            )
        points.append(
            StepwisePoint(max_seq_len=seq, times_us=tuple(times))
        )
    return StepwiseResult(presets=STEPWISE_PRESETS, points=tuple(points))


def comparisons(result: StepwiseResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    labels = [p.label for p in result.presets[1:]]
    out = [
        Comparison(
            f"Fig 13: {label} step gain",
            f"+{paper:.1%}",
            f"+{result.average_step_gain(i + 1):.1%}",
        )
        for i, (label, paper) in enumerate(zip(labels, PAPER_STEP_GAINS))
    ]
    out.append(
        Comparison(
            "Fig 13: total vs baseline",
            f"+{PAPER_TOTAL_GAIN:.0%}",
            f"+{result.average_total_gain:.0%}",
        )
    )
    return out


def format_result(result: StepwiseResult) -> str:
    """Render the result as the paper-style text block."""
    headers = ["max_seq"] + [p.label for p in result.presets]
    rows = [
        [point.max_seq_len, *point.times_us] for point in result.points
    ]
    table = render_table(
        headers,
        rows,
        title="Figure 13: single-layer step-wise optimisations (us)",
        col_width=24,
    )
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{table}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
