"""§III-E.2 ablations: the grouped-GEMM scheduler and the full reduction.

Two claims from the paper's fused-MHA section:

* the **warp-prefetch** problem visitor (32 lanes compute 32 upcoming
  tile assignments at once) improves grouped GEMM by ~10% over the
  original CUTLASS per-thread visitor on standard BERT configurations;
* the separate **full-reduction kernel** (phase 2 of the two-phase
  softmax) accounts for only ~2% of total fused-MHA execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FUSED_MHA, OptimizationConfig
from repro.core.estimator import estimate_fused_long_mha
from repro.experiments.runner import (
    LONG_SEQS,
    SINGLE_LAYER_CONFIG,
    Comparison,
    geomean_speedup,
    paper_workload,
    render_table,
)
from repro.gpusim import ExecutionContext
from repro.kernels.grouped_gemm import SchedulerKind

PAPER_SCHEDULER_GAIN = 0.10
PAPER_FULL_REDUCTION_SHARE = 0.02
ABLATION_BATCH = 16


@dataclass(frozen=True)
class SchedulerPoint:
    max_seq_len: int
    per_thread_us: float
    warp_prefetch_us: float
    full_reduction_us: float

    @property
    def scheduler_gain(self) -> float:
        return self.per_thread_us / self.warp_prefetch_us - 1.0

    @property
    def full_reduction_share(self) -> float:
        return self.full_reduction_us / self.warp_prefetch_us


@dataclass(frozen=True)
class SchedulerAblationResult:
    points: tuple[SchedulerPoint, ...]

    @property
    def average_gain(self) -> float:
        return geomean_speedup(
            (p.per_thread_us, p.warp_prefetch_us) for p in self.points
        )

    @property
    def average_full_reduction_share(self) -> float:
        return sum(p.full_reduction_share for p in self.points) / len(
            self.points
        )


def run(
    seq_lens: tuple[int, ...] = LONG_SEQS,
    batch: int = ABLATION_BATCH,
    seed: int = 0,
) -> SchedulerAblationResult:
    """Run the experiment sweep and return its structured result."""
    config = SINGLE_LAYER_CONFIG
    points = []
    for seq in seq_lens:
        lens = paper_workload(batch, seq, seed)
        times = {}
        reduction_us = 0.0
        for kind in SchedulerKind:
            ctx = ExecutionContext()
            estimate_fused_long_mha(ctx, lens, config, kind)
            times[kind] = ctx.elapsed_us()
            if kind is SchedulerKind.WARP_PREFETCH:
                reduction_us = sum(
                    r.time_us
                    for r in ctx.records
                    if r.launch.name == "softmax_full_reduction"
                )
        points.append(
            SchedulerPoint(
                max_seq_len=seq,
                per_thread_us=times[SchedulerKind.PER_THREAD],
                warp_prefetch_us=times[SchedulerKind.WARP_PREFETCH],
                full_reduction_us=reduction_us,
            )
        )
    return SchedulerAblationResult(points=tuple(points))


def comparisons(result: SchedulerAblationResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    return [
        Comparison(
            "III-E.2: warp-prefetch scheduler gain",
            f"~+{PAPER_SCHEDULER_GAIN:.0%}",
            f"+{result.average_gain:.0%}",
        ),
        Comparison(
            "III-E.2: full-reduction share of fused MHA",
            f"~{PAPER_FULL_REDUCTION_SHARE:.0%}",
            f"{result.average_full_reduction_share:.1%}",
        ),
    ]


def format_result(result: SchedulerAblationResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (
            p.max_seq_len,
            p.per_thread_us,
            p.warp_prefetch_us,
            f"+{p.scheduler_gain:.1%}",
            f"{p.full_reduction_share:.1%}",
        )
        for p in result.points
    ]
    table = render_table(
        (
            "max_seq",
            "per_thread_us",
            "warp_prefetch_us",
            "sched gain",
            "full-red share",
        ),
        rows,
        title="Grouped-GEMM scheduler ablation (fused long MHA, batch 16)",
        col_width=18,
    )
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{table}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
