"""Figure 10 — kernel fusion for GEMM + add-bias + GELU.

Compares the unfused FFN front half (GEMM2, then a standalone
add-bias+GELU kernel over the ``(batch*seq) x (4*hidden)`` output)
against the version with bias and GELU fused into the GEMM epilogue.
Batch 16, hidden 768, expansion scale 4, sequence lengths 128-1024.

Paper reference: epilogue fusion improves this group by 24% on average.
Our model shows a larger kernel-level gain (see EXPERIMENTS.md): the
paper's unfused baseline evidently kept more of the GEMM output resident
in L2 than our 0.7x-capacity hot-read model allows at the larger
sequence lengths.  The layer-level effect (+3.8%, Figure 13's second
step) matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import (
    SEQ_GRID,
    Comparison,
    geomean_speedup,
    render_table,
    speedup,
)
from repro.gpusim import ExecutionContext
from repro.gpusim.memory import tensor_bytes
from repro.kernels.activation import add_bias_gelu_launch
from repro.kernels.gemm import gemm_launch

PAPER_AVG_GAIN = 0.24
FIG10_BATCH = 16
FIG10_HIDDEN = 768
FIG10_SCALE = 4


@dataclass(frozen=True)
class GeluFusionPoint:
    seq_len: int
    gemm_us: float
    bias_gelu_us: float
    fused_us: float

    @property
    def unfused_us(self) -> float:
        return self.gemm_us + self.bias_gelu_us

    @property
    def gain(self) -> float:
        return speedup(self.unfused_us, self.fused_us)


@dataclass(frozen=True)
class GeluFusionResult:
    points: tuple[GeluFusionPoint, ...]

    @property
    def average_gain(self) -> float:
        return geomean_speedup(
            (p.unfused_us, p.fused_us) for p in self.points
        )


def run(
    seq_lens: tuple[int, ...] = SEQ_GRID,
    batch: int = FIG10_BATCH,
    hidden: int = FIG10_HIDDEN,
    scale: int = FIG10_SCALE,
) -> GeluFusionResult:
    """Run the experiment sweep and return its structured result."""
    points = []
    out_cols = scale * hidden
    for seq in seq_lens:
        rows = batch * seq
        ctx = ExecutionContext()
        ctx.launch(gemm_launch(rows, out_cols, hidden, name="gemm2"))
        gemm_us = ctx.elapsed_us()
        ctx.launch(add_bias_gelu_launch(rows, out_cols))
        bias_gelu_us = ctx.elapsed_us() - gemm_us

        ctx = ExecutionContext()
        ctx.launch(
            gemm_launch(
                rows,
                out_cols,
                hidden,
                name="gemm2_fused_bias_gelu",
                epilogue_bytes=tensor_bytes(out_cols),
            )
        )
        fused_us = ctx.elapsed_us()
        points.append(
            GeluFusionPoint(
                seq_len=seq,
                gemm_us=gemm_us,
                bias_gelu_us=bias_gelu_us,
                fused_us=fused_us,
            )
        )
    return GeluFusionResult(points=tuple(points))


def comparisons(result: GeluFusionResult) -> list[Comparison]:
    """Paper-vs-measured comparison lines for EXPERIMENTS.md."""
    return [
        Comparison(
            "Fig 10: GEMM+bias+GELU epilogue-fusion avg gain",
            f"+{PAPER_AVG_GAIN:.0%}",
            f"+{result.average_gain:.0%}",
        )
    ]


def format_result(result: GeluFusionResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (
            p.seq_len,
            p.gemm_us,
            p.bias_gelu_us,
            p.fused_us,
            f"+{p.gain:.0%}",
        )
        for p in result.points
    ]
    table = render_table(
        ("seq_len", "gemm_us", "bias_gelu_us", "fused_us", "gain"),
        rows,
        title=(
            "Figure 10: GEMM + add-bias + GELU fusion "
            "(batch 16, hidden 768, scale 4)"
        ),
    )
    comp = "\n".join(c.render() for c in comparisons(result))
    return f"{table}\n{comp}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
