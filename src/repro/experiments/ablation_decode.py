"""Extension ablation: zero padding at decode time (KV-cache traffic).

Applies the paper's idea to autoregressive generation: at every decode
step, sequences have different context lengths (prompt + generated so
far).  A padded KV cache streams ``batch x max_context`` rows per step;
the packed cache streams only real context.  This sweep reports the
padded/packed traffic ratio and per-step modelled latency for prompt
distributions of varying raggedness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decoder.generation import (
    decode_attention_launch,
    generation_traffic_ratio,
)
from repro.experiments.runner import STANDARD_CONFIG, render_table
from repro.gpusim import ExecutionContext
from repro.workloads.generator import normal_lengths

DECODE_BATCH = 16
MAX_CONTEXT = 1024
GEN_STEPS = 64
ALPHAS = (0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class DecodePoint:
    alpha: float
    packed_step_us: float
    padded_step_us: float
    traffic_ratio: float

    @property
    def step_gain(self) -> float:
        return self.padded_step_us / self.packed_step_us - 1.0


@dataclass(frozen=True)
class DecodeSweepResult:
    batch: int
    max_context: int
    steps: int
    points: tuple[DecodePoint, ...]

    def gain_shrinks_with_alpha(self) -> bool:
        gains = [p.step_gain for p in self.points]
        return all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))


def run(
    batch: int = DECODE_BATCH,
    max_context: int = MAX_CONTEXT,
    steps: int = GEN_STEPS,
    alphas: tuple[float, ...] = ALPHAS,
    seed: int = 0,
) -> DecodeSweepResult:
    """Run the experiment sweep and return its structured result."""
    cfg = STANDARD_CONFIG
    points = []
    for alpha in alphas:
        rng = np.random.default_rng(seed)
        prompts = normal_lengths(
            batch, max_context - steps, alpha, rng
        )
        # mid-generation snapshot: half the new tokens appended
        contexts = prompts + steps // 2

        ctx = ExecutionContext()
        ctx.launch(
            decode_attention_launch(
                contexts, cfg.num_heads, cfg.head_size, padded=False
            )
        )
        packed_us = ctx.elapsed_us()

        ctx = ExecutionContext()
        ctx.launch(
            decode_attention_launch(
                np.full(batch, max_context), cfg.num_heads, cfg.head_size,
                padded=True,
            )
        )
        padded_us = ctx.elapsed_us()
        points.append(
            DecodePoint(
                alpha=alpha,
                packed_step_us=packed_us,
                padded_step_us=padded_us,
                traffic_ratio=generation_traffic_ratio(
                    prompts, steps, max_context
                ),
            )
        )
    return DecodeSweepResult(
        batch=batch, max_context=max_context, steps=steps,
        points=tuple(points),
    )


def format_result(result: DecodeSweepResult) -> str:
    """Render the result as the paper-style text block."""
    rows = [
        (
            f"{p.alpha:.1f}",
            p.packed_step_us,
            p.padded_step_us,
            f"+{p.step_gain:.0%}",
            f"{p.traffic_ratio:.2f}x",
        )
        for p in result.points
    ]
    table = render_table(
        ("alpha", "packed_us/step", "padded_us/step", "step gain", "traffic"),
        rows,
        title=(
            f"Decode-time zero padding: batch {result.batch}, "
            f"max context {result.max_context}, {result.steps} steps"
        ),
        col_width=16,
    )
    trend = "gain shrinks as prompts fill the context: " + (
        "yes" if result.gain_shrinks_with_alpha() else "NO"
    )
    return f"{table}\n{trend}"


def main() -> None:
    """Print the experiment's formatted result."""
    print(format_result(run()))


if __name__ == "__main__":
    main()
