"""Text exporters: the JSONL span/metric dump and the exposition parser.

Two flat-file formats complement the Chrome/Perfetto trace (which lives
in :mod:`repro.gpusim.trace`, next to the kernel-timeline exporter it
extends):

* **JSONL** — one JSON object per line, ``kind: "span"`` records first
  (in begin order) followed by ``kind: "metric"`` snapshots.  Greppable,
  streamable, and the format CI uploads as a workflow artifact.
* **Prometheus text exposition** — produced by
  :meth:`~repro.telemetry.metrics.MetricsRegistry.to_prometheus`;
  :func:`parse_prometheus` here is the strict reader the CI smoke test
  runs over it (line grammar + duplicate-series detection), so a
  malformed exposition fails the build rather than a scrape.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.telemetry.context import Telemetry


def telemetry_to_jsonl(telemetry: Telemetry) -> str:
    """Serialise spans then metric snapshots, one JSON object per line."""
    lines = [
        json.dumps({"kind": "span", **span.to_dict()}, sort_keys=True)
        for span in telemetry.tracer.spans
    ]
    # the snapshot's own "kind" (counter/gauge/histogram) moves to
    # metric_kind so "kind" stays the span/metric record discriminator
    lines.extend(
        json.dumps(
            {**entry, "metric_kind": entry["kind"], "kind": "metric"},
            sort_keys=True,
        )
        for entry in telemetry.metrics.snapshot()
    )
    return "\n".join(lines) + ("\n" if lines else "")


def write_telemetry_jsonl(telemetry: Telemetry, path: str | Path) -> Path:
    """Write the JSONL span/metric dump to ``path``."""
    out = Path(path)
    out.write_text(telemetry_to_jsonl(telemetry))
    return out


def read_telemetry_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL dump back into a list of record dicts."""
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# Prometheus exposition parsing (the CI smoke contract)


class PrometheusFormatError(ValueError):
    """The exposition text violates the line grammar or repeats a series."""


_COMMENT_RE = re.compile(
    r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$"
)
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"           # metric name
    r"(?:\{((?:[a-zA-Z_][a-zA-Z0-9_]*="      # label name
    r'"(?:[^"\\]|\\.)*"'                     # quoted, escaped value
    r",?)*)\})?"                             # optional label block
    r" (\S+)$"                               # value
)
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"}
)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError as exc:
        raise PrometheusFormatError(
            f"unparseable sample value {raw!r}"
        ) from exc


def parse_prometheus(text: str) -> dict[str, float]:
    """Strictly parse a text exposition into ``{series: value}``.

    A *series* key is the sample line's name + label block verbatim
    (e.g. ``serving_requests_total{outcome="served"}``).  Raises
    :class:`PrometheusFormatError` on any line that is neither a valid
    comment nor a valid sample, on a ``TYPE`` naming an unknown type,
    on a duplicate ``TYPE``/``HELP`` for a name, and on a duplicate
    series — the failure modes a real scraper would reject.
    """
    series: dict[str, float] = {}
    typed: dict[str, str] = {}
    helped: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _COMMENT_RE.match(line)
            if not match:
                raise PrometheusFormatError(
                    f"line {lineno}: malformed comment {line!r}"
                )
            keyword, name = match.group(1), match.group(2)
            if keyword == "TYPE":
                declared = (match.group(3) or "").strip()
                if declared not in _VALID_TYPES:
                    raise PrometheusFormatError(
                        f"line {lineno}: unknown metric type {declared!r}"
                    )
                if name in typed:
                    raise PrometheusFormatError(
                        f"line {lineno}: duplicate TYPE for {name!r}"
                    )
                typed[name] = declared
            else:
                if name in helped:
                    raise PrometheusFormatError(
                        f"line {lineno}: duplicate HELP for {name!r}"
                    )
                helped.add(name)
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise PrometheusFormatError(
                f"line {lineno}: malformed sample {line!r}"
            )
        key = line.rsplit(" ", 1)[0]
        if key in series:
            raise PrometheusFormatError(
                f"line {lineno}: duplicate series {key!r}"
            )
        series[key] = _parse_value(match.group(3))
    return series
