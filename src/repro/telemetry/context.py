"""The :class:`Telemetry` bundle and the ambient-installation helpers.

One :class:`Telemetry` object carries everything a run observes: the
span tracer, the metrics registry and the kernel-timeline segments that
let the Chrome exporter nest request/stage spans *above* the kernel
events.  The serving runtime installs it as the *current* telemetry
(:func:`use_telemetry`) for the duration of a replay, so instrumented
library code — the batcher's admit/cut path, cross-request packing,
launch-graph capture/replay, the degradation ladder — can record
without the telemetry object being threaded through every signature:

.. code-block:: python

    tel = current_telemetry()
    if tel is not None and tel.owns_current_thread():
        tel.tracer.instant("batch.cut", ...)

The ``owns_current_thread`` guard keeps recording confined to the
thread that created the telemetry: forwards fanned out across the
parallel bucket executor must not interleave into the span stack.
When no telemetry is installed every call site short-circuits on the
``None`` check — the off state costs one attribute read and leaves the
run bitwise-identical.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer


@dataclass(frozen=True)
class KernelSegment:
    """One attempt's kernel records, offset onto the global sim clock.

    ``records`` duck-type :class:`~repro.gpusim.stream.KernelRecord`
    (``launch`` / ``time_us`` / ``start_us``); the segment's
    ``offset_us`` is the simulated instant the attempt started, so a
    record's global timestamp is ``offset_us + record.start_us``.
    ``device`` is the data-parallel replica the attempt executed on —
    the Chrome exporter renders one kernel lane per device.
    """

    offset_us: float
    records: tuple
    device: int = 0


class Telemetry:
    """Tracer + registry + kernel timeline for one observed run."""

    def __init__(
        self,
        *,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.kernel_segments: list[KernelSegment] = []
        self._owner = threading.get_ident()

    def owns_current_thread(self) -> bool:
        """Whether the calling thread may record into this telemetry."""
        return threading.get_ident() == self._owner

    def add_kernel_segment(
        self, offset_us: float, records: Sequence, device: int = 0
    ) -> None:
        """Adopt an execution context's records at ``offset_us``."""
        if not self.owns_current_thread():
            return
        if records:
            self.kernel_segments.append(
                KernelSegment(
                    offset_us=offset_us,
                    records=tuple(records),
                    device=device,
                )
            )

    def kernel_event_count(self) -> int:
        return sum(len(seg.records) for seg in self.kernel_segments)


_current: list[Telemetry] = []


def current_telemetry() -> Telemetry | None:
    """The innermost installed telemetry, or ``None`` (the off state)."""
    return _current[-1] if _current else None


@contextlib.contextmanager
def use_telemetry(telemetry: Telemetry | None) -> Iterator[Telemetry | None]:
    """Install ``telemetry`` as current within the block.

    ``None`` is accepted and installs nothing, so call sites can write
    ``with use_telemetry(self.telemetry):`` unconditionally.
    """
    if telemetry is None:
        yield None
        return
    _current.append(telemetry)
    try:
        yield telemetry
    finally:
        popped = _current.pop()
        assert popped is telemetry, "use_telemetry stack corrupted"
