"""End-to-end telemetry: spans, metrics and SLO accounting.

The paper's methodology is profiling-first (the Figure 3 per-category
breakdown justified every fusion); this package is the serving-side
continuation of that discipline.  One :class:`Telemetry` object observes
a whole replay:

* :mod:`~repro.telemetry.spans` — request-scoped span tracing on the
  simulated clock, with request/megabatch correlation ids;
* :mod:`~repro.telemetry.metrics` — a counter/gauge/histogram registry
  with exact quantile snapshots;
* :mod:`~repro.telemetry.slo` — deadline attainment and error-budget
  burn computed from the registry;
* :mod:`~repro.telemetry.export` — the JSONL dump and the strict
  Prometheus-exposition parser (the Chrome/Perfetto exporter lives in
  :mod:`repro.gpusim.trace`, stacked above the kernel timeline).

The package imports nothing from the execution stack, so any module —
kernels, packing, batchers, the graph cache — can call
:func:`current_telemetry` without creating an import cycle.  The hard
invariant everywhere: telemetry **observes**; it never launches, never
advances the simulated clock, never draws randomness.  Enabling it is
bitwise-neutral to model outputs and to the modelled timeline.
"""

from repro.telemetry.context import (
    KernelSegment,
    Telemetry,
    current_telemetry,
    use_telemetry,
)
from repro.telemetry.export import (
    PrometheusFormatError,
    parse_prometheus,
    read_telemetry_jsonl,
    telemetry_to_jsonl,
    write_telemetry_jsonl,
)
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.slo import SloPolicy, SloReport
from repro.telemetry.spans import REQUEST_CATEGORY, Span, SpanTracer

__all__ = [
    "KernelSegment",
    "Telemetry",
    "current_telemetry",
    "use_telemetry",
    "PrometheusFormatError",
    "parse_prometheus",
    "read_telemetry_jsonl",
    "telemetry_to_jsonl",
    "write_telemetry_jsonl",
    "COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS_US",
    "RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SloPolicy",
    "SloReport",
    "REQUEST_CATEGORY",
    "Span",
    "SpanTracer",
]
