"""The SLO layer: deadline attainment and error-budget burn.

An :class:`SloPolicy` states the objectives (minimum served fraction,
optionally a latency objective at a quantile); :class:`SloReport`
evaluates one replay against them, computed straight from the metrics
registry the serving runtime populated — the same counters and the same
exact-quantile histogram the Prometheus exposition exports, so the SLO
verdict can never disagree with the exported series.

Error-budget semantics follow the SRE convention: a policy with a 99%
success target grants a 1% error budget per trace; the *burn* is the
achieved bad fraction divided by that budget (1.0 = exactly spent,
>1 = violated).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry

if TYPE_CHECKING:  # avoid the telemetry -> observe -> telemetry cycle
    from repro.observe.tail import TailForensics

# ----------------------------------------------------------------------
# canonical serving metric names (what the runtime populates and the
# SLO layer + exporters read)

REQUESTS_TOTAL = "serving_requests_total"
SHED_TOTAL = "serving_shed_total"
FAULTS_TOTAL = "serving_faults_total"
RETRIES_TOTAL = "serving_retries_total"
DEADLINE_REQUESTS_TOTAL = "serving_deadline_requests_total"
DEADLINE_MET_TOTAL = "serving_deadline_met_total"
DEGRADATIONS_TOTAL = "serving_degradations_total"
REQUEST_LATENCY_US = "serving_request_latency_us"
REQUEST_RETRIES = "serving_request_retries"
BATCH_FILL_RATIO = "serving_batch_fill_ratio"
VALID_TOKEN_UTILIZATION = "serving_valid_token_utilization"
US_PER_TOKEN = "serving_us_per_token"
BACKOFF_US = "serving_backoff_us"
ADMISSION_BACKLOG_US = "serving_admission_backlog_us"
QUEUE_DEPTH = "batcher_queue_depth"
GRAPH_REPLAY_HIT_RATE = "serving_graph_replay_hit_rate"
GPU_BUSY_US = "serving_gpu_busy_us"
MAKESPAN_US = "serving_makespan_us"
GPU_UTILIZATION = "serving_gpu_utilization"

# per-tenant series the multi-tenant gateway path populates (labelled
# by ``tenant`` — and ``outcome``/``reason`` where noted); the global
# single-tenant series above stay exactly as they were, so every
# pre-gateway consumer is untouched
TENANT_REQUESTS_TOTAL = "serving_tenant_requests_total"
TENANT_SHED_TOTAL = "serving_tenant_shed_total"
TENANT_DEADLINE_REQUESTS_TOTAL = "serving_tenant_deadline_requests_total"
TENANT_DEADLINE_MET_TOTAL = "serving_tenant_deadline_met_total"
TENANT_REQUEST_LATENCY_US = "serving_tenant_request_latency_us"
GATEWAY_REJECTED_TOTAL = "gateway_rejected_total"
GATEWAY_RETRY_AFTER_US = "gateway_retry_after_us"
GATEWAY_RELEASE_WAIT_US = "gateway_release_wait_us"
EXECUTOR_WORKER_RECOVERIES_TOTAL = "executor_worker_recoveries_total"

# decode serving & the paged KV arena; only populated by the
# generation runtime, so encoder-only consumers see an unchanged
# registry
DECODE_TOKENS_TOTAL = "serving_decode_tokens_total"
TTFT_US = "serving_ttft_us"
INTER_TOKEN_US = "serving_inter_token_us"
TENANT_DECODE_TOKEN_LATENCY_US = "serving_tenant_decode_token_latency_us"
KV_BYTES_LIVE = "kv_arena_bytes_live"
KV_BYTES_PEAK = "kv_arena_bytes_peak"
KV_BLOCK_OCCUPANCY = "kv_arena_block_occupancy"
KV_EVICTIONS_TOTAL = "kv_arena_evictions_total"

# multi-device sharded serving (labelled by ``device`` where noted);
# only populated when the runtime runs with > 1 device, so every
# single-device consumer sees an unchanged registry
DEVICE_BUSY_US = "serving_device_busy_us"
DEVICE_IMBALANCE = "serving_device_imbalance"
STEALS_TOTAL = "serving_work_steals_total"


@dataclass(frozen=True)
class SloPolicy:
    """Objectives one serving trace is judged against."""

    #: minimum fraction of requests that must be served (availability)
    success_target: float = 0.99
    #: optional latency objective in microseconds for served requests
    latency_target_us: float | None = None
    #: quantile (percent) the latency objective applies to
    latency_quantile: float = 99.0

    def __post_init__(self) -> None:
        if not 0.0 < self.success_target <= 1.0:
            raise ValueError(
                f"success_target must be in (0, 1], got {self.success_target}"
            )
        if self.latency_target_us is not None and self.latency_target_us <= 0:
            raise ValueError("latency_target_us must be positive")
        if not 0.0 < self.latency_quantile <= 100.0:
            raise ValueError(
                f"latency_quantile must be in (0, 100], got "
                f"{self.latency_quantile}"
            )


def _counter_sum(registry: MetricsRegistry, name: str) -> float:
    return sum(
        m.value for m in registry.family(name) if isinstance(m, Counter)
    )


@dataclass(frozen=True)
class SloReport:
    """One replay's attainment against an :class:`SloPolicy`."""

    policy: SloPolicy
    total: int
    served: int
    shed: int
    failed: int
    #: requests that carried a deadline / of those, finished inside it
    with_deadline: int
    deadline_met: int
    #: observed latency at ``policy.latency_quantile`` (``None`` when
    #: nothing was served)
    latency_quantile_us: float | None
    #: gateway rejections (rate limit / unknown tenant); they count
    #: against availability like sheds do
    rejected: int = 0
    #: tenant the report covers ("" = the whole replay)
    tenant: str = ""
    #: optional p99-vs-p50 cohort decomposition (attached by
    #: :meth:`with_tail`); excluded from equality so reports with and
    #: without forensics still compare on their SLO verdicts
    tail: "TailForensics | None" = field(default=None, compare=False)

    @classmethod
    def from_registry(
        cls, registry: MetricsRegistry, policy: SloPolicy | None = None
    ) -> "SloReport":
        """Evaluate the counters/histograms a runtime run populated."""
        policy = policy if policy is not None else SloPolicy()

        def outcome_count(outcome: str) -> int:
            return int(
                getattr(
                    registry.find(REQUESTS_TOTAL, outcome=outcome),
                    "value",
                    0,
                )
            )

        served = outcome_count("served")
        shed = outcome_count("shed")
        failed = outcome_count("failed")
        rejected = outcome_count("rejected")
        latency = registry.find(REQUEST_LATENCY_US)
        quantile_us = None
        if isinstance(latency, Histogram) and latency.count:
            quantile_us = latency.percentile(policy.latency_quantile)
        return cls(
            policy=policy,
            total=served + shed + failed + rejected,
            served=served,
            shed=shed,
            failed=failed,
            rejected=rejected,
            with_deadline=int(
                _counter_sum(registry, DEADLINE_REQUESTS_TOTAL)
            ),
            deadline_met=int(_counter_sum(registry, DEADLINE_MET_TOTAL)),
            latency_quantile_us=quantile_us,
        )

    @classmethod
    def for_tenant(
        cls,
        registry: MetricsRegistry,
        tenant: str,
        policy: SloPolicy | None = None,
    ) -> "SloReport":
        """One tenant's attainment, from the tenant-labelled series.

        Reads the ``serving_tenant_*`` counters/histogram the gateway
        path populates — the same registry the exporters dump, so the
        per-tenant verdict printed by ``repro loadtest`` can never
        disagree with the exported metrics.
        """
        policy = policy if policy is not None else SloPolicy()

        def outcome_count(outcome: str) -> int:
            return int(
                getattr(
                    registry.find(
                        TENANT_REQUESTS_TOTAL, tenant=tenant, outcome=outcome
                    ),
                    "value",
                    0,
                )
            )

        served = outcome_count("served")
        shed = outcome_count("shed")
        failed = outcome_count("failed")
        rejected = outcome_count("rejected")
        latency = registry.find(TENANT_REQUEST_LATENCY_US, tenant=tenant)
        quantile_us = None
        if isinstance(latency, Histogram) and latency.count:
            quantile_us = latency.percentile(policy.latency_quantile)
        with_deadline = int(
            getattr(
                registry.find(TENANT_DEADLINE_REQUESTS_TOTAL, tenant=tenant),
                "value",
                0,
            )
        )
        met = int(
            getattr(
                registry.find(TENANT_DEADLINE_MET_TOTAL, tenant=tenant),
                "value",
                0,
            )
        )
        return cls(
            policy=policy,
            total=served + shed + failed + rejected,
            served=served,
            shed=shed,
            failed=failed,
            rejected=rejected,
            with_deadline=with_deadline,
            deadline_met=met,
            latency_quantile_us=quantile_us,
            tenant=tenant,
        )

    # ------------------------------------------------------------------

    @property
    def availability(self) -> float:
        """Served fraction of all settled requests."""
        return self.served / self.total if self.total else 1.0

    @property
    def deadline_attainment(self) -> float | None:
        """Met fraction of deadline-carrying requests (``None`` if none)."""
        if not self.with_deadline:
            return None
        return self.deadline_met / self.with_deadline

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction per trace (``1 - success_target``)."""
        return 1.0 - self.policy.success_target

    @property
    def budget_burn(self) -> float | None:
        """Bad fraction over budget; ``None`` for a zero-budget policy
        (a 100% target has no budget to burn)."""
        if self.error_budget == 0.0:
            return None
        return (1.0 - self.availability) / self.error_budget

    @property
    def availability_met(self) -> bool:
        return self.availability >= self.policy.success_target

    @property
    def latency_met(self) -> bool | None:
        """Latency objective verdict (``None`` when no objective/data)."""
        if (
            self.policy.latency_target_us is None
            or self.latency_quantile_us is None
        ):
            return None
        return self.latency_quantile_us <= self.policy.latency_target_us

    def with_tail(self, tail: "TailForensics | None") -> "SloReport":
        """The same report with tail forensics attached."""
        return replace(self, tail=tail)

    def render_text(self) -> str:
        """Human-readable SLO summary (printed next to the cache tables)."""
        policy = self.policy
        lines = [
            "== SLO ==",
            f"  availability: {self.availability:.2%} of "
            f"{self.total} requests served "
            f"(target {policy.success_target:.2%}: "
            f"{'met' if self.availability_met else 'MISSED'})",
        ]
        burn = self.budget_burn
        if burn is not None:
            lines.append(
                f"  error budget: {self.error_budget:.2%} allowed, "
                f"{1.0 - self.availability:.2%} spent "
                f"(burn {burn:.2f}x)"
            )
        attainment = self.deadline_attainment
        if attainment is not None:
            lines.append(
                f"  deadline attainment: {attainment:.2%} of "
                f"{self.with_deadline} deadline-carrying requests"
            )
        else:
            lines.append("  deadline attainment: n/a (no deadlines)")
        if self.latency_quantile_us is not None:
            verdict = ""
            if self.latency_met is not None:
                verdict = (
                    f" (target {policy.latency_target_us / 1000:.2f} ms: "
                    f"{'met' if self.latency_met else 'MISSED'})"
                )
            lines.append(
                f"  latency p{policy.latency_quantile:g}: "
                f"{self.latency_quantile_us / 1000:.2f} ms{verdict}"
            )
        if self.tail is not None:
            lines.extend(self.tail.render_lines())
        return "\n".join(lines)
