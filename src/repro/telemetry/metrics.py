"""The metrics registry: counters, gauges and histograms.

Prometheus-shaped in-process metrics for the serving pipeline: a metric
is ``(name, labels)`` — the registry deduplicates, so two call sites
asking for ``counter("serving_requests_total", outcome="served")`` get
the *same* counter object.  Three instrument types:

* :class:`Counter` — monotone accumulator (requests, faults, sheds);
* :class:`Gauge` — last-write-wins level (queue depth, hit rate);
* :class:`Histogram` — fixed upper-bound buckets for the Prometheus
  exposition **plus** the raw samples, so quantile snapshots are
  *exact* (``np.percentile`` over the samples) rather than
  bucket-interpolated.  That is what lets
  :meth:`~repro.serving.report.ServingReport.latency_summary` render
  from the same type the registry aggregates — report and registry can
  never disagree on a percentile.

Everything is plain Python floats and lists; observing a sample never
allocates ndarray memory on the hot path and never touches the
simulated clock, preserving the telemetry-neutrality invariant.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Sequence

import numpy as np

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets for microsecond latencies: 100 us .. 1 s in
#: a 1-2.5-5 ladder (upper bounds; +Inf is implicit)
DEFAULT_LATENCY_BUCKETS_US: tuple[float, ...] = (
    100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0,
    10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0,
    1_000_000.0,
)

#: default buckets for ratios in [0, 1] (fill ratio, utilization)
RATIO_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)

#: default buckets for small non-negative counts (retries, queue depth)
COUNT_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0,
)


def _labels_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared identity: a name plus a sorted label tuple."""

    kind = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.labels = labels

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter(_Metric):
    """Monotonically increasing accumulator."""

    kind = "counter"

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge(_Metric):
    """Last-write-wins level."""

    kind = "gauge"

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Metric):
    """Fixed-bucket histogram that also keeps exact samples.

    ``buckets`` are finite ascending upper bounds; an implicit ``+Inf``
    bucket catches the rest.  Bucket counts are **cumulative** in the
    exposition (Prometheus ``le`` semantics) but stored per-bucket here.
    Quantiles come from the retained samples (``np.percentile``, linear
    interpolation) and are therefore exact, not bucket-approximated.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
    ):
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be ascending, got {bounds}")
        self.buckets = bounds
        #: per-bucket (non-cumulative) counts; index ``len(buckets)`` is
        #: the +Inf overflow bucket
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self._samples: list[float] = []

    @property
    def count(self) -> int:
        return len(self._samples)

    def observe(self, value: float) -> None:
        value = float(value)
        self._samples.append(value)
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> list[int]:
        """Prometheus ``le`` counts: cumulative, ending at ``count``."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out

    @property
    def samples(self) -> tuple[float, ...]:
        return tuple(self._samples)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile of the observed samples."""
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return float(np.percentile(np.asarray(self._samples), q))

    def percentiles(
        self, qs: Iterable[float] = (50.0, 95.0, 99.0)
    ) -> dict[str, float]:
        return {f"p{g:g}": self.percentile(g) for g in qs}


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Sequence[tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Get-or-create store of every metric a run produced."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], _Metric] = {}
        self._kinds: dict[str, str] = {}
        self._helps: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get_or_create(self, cls, name, help_text, labels, **kwargs):
        kind = cls.kind
        seen = self._kinds.get(name)
        if seen is not None and seen != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {seen}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = kind
            if help_text:
                self._helps[name] = help_text
        elif help_text and name not in self._helps:
            self._helps[name] = help_text
        return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    def find(self, name: str, **labels) -> _Metric | None:
        """Existing metric for ``(name, labels)``, or ``None`` (never
        creates — the read path for exporters and the SLO layer)."""
        return self._metrics.get((name, _labels_key(labels)))

    def collect(self) -> list[_Metric]:
        """All metrics, grouped by name, label-sorted within a name."""
        return [
            self._metrics[key]
            for key in sorted(self._metrics, key=lambda k: (k[0], k[1]))
        ]

    def family(self, name: str) -> list[_Metric]:
        """Every label variant registered under ``name``."""
        return [m for m in self.collect() if m.name == name]

    # ------------------------------------------------------------------
    # exposition

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, one series per line.

        Histograms expand into ``_bucket``/``_sum``/``_count`` series
        with cumulative ``le`` labels, exactly as a Prometheus client
        library would expose them.
        """
        lines: list[str] = []
        last_name = None
        for metric in self.collect():
            if metric.name != last_name:
                help_text = self._helps.get(metric.name)
                if help_text:
                    lines.append(f"# HELP {metric.name} {help_text}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                last_name = metric.name
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative_counts()
                bounds = [*metric.buckets, math.inf]
                for bound, count in zip(bounds, cumulative):
                    labels = (
                        *metric.labels,
                        ("le", _format_value(bound)),
                    )
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(labels)} {count}"
                    )
                lines.append(
                    f"{metric.name}_sum{_format_labels(metric.labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_format_labels(metric.labels)} "
                    f"{metric.count}"
                )
            else:
                lines.append(
                    f"{metric.name}{_format_labels(metric.labels)} "
                    f"{_format_value(metric.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> list[dict]:
        """JSON-able dump of every metric (the JSONL exporter payload).

        Histogram entries carry both the fixed-bucket counts and the
        exact quantile snapshot.
        """
        out = []
        for metric in self.collect():
            entry: dict = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": metric.labels_dict,
            }
            if isinstance(metric, Histogram):
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                entry["buckets"] = {
                    _format_value(b): c
                    for b, c in zip(
                        [*metric.buckets, math.inf],
                        metric.cumulative_counts(),
                    )
                }
                if metric.count:
                    entry["mean"] = metric.mean
                    entry.update(metric.percentiles())
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out
