"""Request-scoped span tracing on the simulated clock.

A :class:`Span` is one named interval on the *simulated* timeline —
microseconds of modelled GPU/serving time, never host wall time — with
optional correlation IDs tying it to the request it serves
(``request_id``) and the dispatch/megabatch it rode (``batch_id``).
Spans nest: the :class:`SpanTracer` keeps an open-span stack, so a
``graph.replay`` span recorded while a dispatch attempt is open becomes
that attempt's child, and the whole chaos replay of one request yields a
causal tree from arrival to scatter-back.

Two properties make the tracer safe to leave on in production runs:

* **Observation only.**  Spans never launch kernels, never advance the
  simulated clock and never touch the RNG streams — the tracer reads
  times the runtime already computed.  Telemetry on/off is therefore
  bitwise-neutral to model outputs and to the modelled timeline (the
  neutrality regression test asserts exactly that).
* **Thread confinement.**  A tracer records only from the thread that
  created it.  Instrumented library code (packing, graph replay) may run
  inside the parallel bucket executor; calls from foreign threads are
  ignored rather than corrupting the span stack.

The tracer has no clock of its own: the serving runtime *sets* the
cursor (:meth:`SpanTracer.set_now`) as its simulated clock advances, and
spans opened without an explicit ``start_us`` begin at the cursor.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import Iterator

#: span category for request-root spans; the Chrome exporter renders
#: these as async events keyed by request id (they overlap freely),
#: while every other category becomes a nested complete event
REQUEST_CATEGORY = "request"


@dataclass
class Span:
    """One named interval on the simulated timeline."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start_us: float
    #: ``None`` while the span is still open
    end_us: float | None = None
    #: correlation ids: the request this span serves / the dispatch it
    #: rode; inherited from the enclosing span when not given explicitly
    request_id: int | None = None
    batch_id: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return 0.0 if self.end_us is None else self.end_us - self.start_us

    @property
    def is_instant(self) -> bool:
        return self.end_us == self.start_us

    def to_dict(self) -> dict:
        """JSON-able form (the JSONL exporter's record payload)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "request_id": self.request_id,
            "batch_id": self.batch_id,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Records nestable spans; owned by (and confined to) one thread."""

    def __init__(self) -> None:
        #: completed and open spans, in begin order
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        #: the simulated-clock cursor spans default their times to
        self.now_us = 0.0
        self._owner = threading.get_ident()

    def owns_current_thread(self) -> bool:
        """Whether the calling thread may record into this tracer."""
        return threading.get_ident() == self._owner

    def set_now(self, now_us: float) -> None:
        """Advance (or rewind) the simulated-clock cursor."""
        if self.owns_current_thread():
            self.now_us = now_us

    @property
    def depth(self) -> int:
        return len(self._stack)

    def begin(
        self,
        name: str,
        *,
        category: str = "stage",
        start_us: float | None = None,
        request_id: int | None = None,
        batch_id: int | None = None,
        **attrs,
    ) -> Span:
        """Open a span nested under the innermost open one.

        Correlation ids default to the parent's.  From a foreign thread
        the span is detached: returned (so call sites stay unconditional)
        but never recorded.
        """
        parent = self._stack[-1] if self._stack else None
        if start_us is None:
            start_us = self.now_us
        if parent is not None:
            if request_id is None:
                request_id = parent.request_id
            if batch_id is None:
                batch_id = parent.batch_id
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            category=category,
            start_us=start_us,
            request_id=request_id,
            batch_id=batch_id,
            attrs=dict(attrs),
        )
        if not self.owns_current_thread():
            return span
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, end_us: float | None = None, **attrs) -> Span | None:
        """Close the innermost open span (at the cursor by default)."""
        if not self.owns_current_thread():
            return None
        if not self._stack:
            raise RuntimeError("no open span to end")
        span = self._stack.pop()
        if end_us is None:
            end_us = max(span.start_us, self.now_us)
        if end_us < span.start_us:
            raise ValueError(
                f"span {span.name!r} cannot end at {end_us} before its "
                f"start {span.start_us}"
            )
        span.end_us = end_us
        span.attrs.update(attrs)
        return span

    @contextlib.contextmanager
    def span(self, name: str, **kwargs) -> Iterator[Span]:
        """``with``-scoped :meth:`begin`/:meth:`end` pair."""
        opened = self.begin(name, **kwargs)
        try:
            yield opened
        finally:
            if self.owns_current_thread():
                self.end()

    def instant(
        self,
        name: str,
        *,
        category: str = "mark",
        t_us: float | None = None,
        request_id: int | None = None,
        batch_id: int | None = None,
        **attrs,
    ) -> Span | None:
        """A zero-duration marker at ``t_us`` (cursor by default)."""
        span = self.begin(
            name,
            category=category,
            start_us=t_us,
            request_id=request_id,
            batch_id=batch_id,
            **attrs,
        )
        if not self.owns_current_thread():
            return None
        return self.end(end_us=span.start_us)

    def add_span(
        self,
        name: str,
        *,
        category: str,
        start_us: float,
        end_us: float,
        request_id: int | None = None,
        batch_id: int | None = None,
        parent_id: int | None = None,
        **attrs,
    ) -> Span | None:
        """Record a closed span directly, outside the nesting stack.

        Request-root spans overlap arbitrarily (requests queue while
        others are served), so they cannot live on the stack; the
        runtime records them with this once the request settles.
        """
        if not self.owns_current_thread():
            return None
        if end_us < start_us:
            raise ValueError(
                f"span {name!r} cannot end at {end_us} before {start_us}"
            )
        span = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            category=category,
            start_us=start_us,
            end_us=end_us,
            request_id=request_id,
            batch_id=batch_id,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def completed(self) -> list[Span]:
        """Spans that have been closed, in begin order."""
        return [s for s in self.spans if s.end_us is not None]

    def by_request(self, request_id: int) -> list[Span]:
        """Every span correlated to one request, in begin order."""
        return [s for s in self.spans if s.request_id == request_id]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]
