"""ByteTransformer itself, as a framework model for Figure 14."""

from __future__ import annotations

import numpy as np

from repro.core.config import FUSED_MHA, BertConfig, OptimizationConfig
from repro.core.estimator import estimate_model
from repro.frameworks.base import Framework, FrameworkFeatures
from repro.gpusim.stream import ExecutionContext


class ByteTransformer(Framework):
    """The paper's system: zero padding + fused MHA + full kernel fusion."""

    name = "ByteTransformer"
    features = FrameworkFeatures(
        variable_length_support=True,
        kernel_tuning=True,
        fused_mha_max_seq=-1,
        kernel_fusion="yes",
    )

    def __init__(self, opt: OptimizationConfig | None = None) -> None:
        self.opt = opt or FUSED_MHA

    def estimate(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> float:
        return estimate_model(ctx, config, self.opt, seq_lens, max_seq_len)
