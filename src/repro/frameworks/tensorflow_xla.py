"""TensorFlow-with-XLA framework model.

XLA clusters element-wise HLO into fused kernels, but the BERT graph it
compiles is padded end-to-end, its GEMM algorithm selection is less tuned
than hand-picked cuBLAS heuristics, and layout-assignment inserts extra
transpose/copy ops around the attention einsums.  Measured TF-XLA BERT
inference trails PyTorch by ~20-25% at these shapes, which is what the
extra kernels and the GEMM penalty reproduce (Table I row: variable-len
no, tuning yes, fused MHA no, fusion no).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks.base import Framework, FrameworkFeatures
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.stream import ExecutionContext
from repro.kernels.activation import add_bias_gelu_launch, add_bias_launch
from repro.kernels.batched_gemm import batched_gemm_launch
from repro.kernels.gemm import gemm_launch
from repro.kernels.layernorm import (
    add_bias_residual_launch,
    layernorm_launch,
)
from repro.kernels.softmax import add_mask_launch, softmax_launch
from repro.kernels.transpose import split_heads_launch

#: multiplier on GEMM compute efficiency relative to hand-tuned cuBLAS
#: (XLA's gemm algorithm picker and padding-to-tile behaviour)
XLA_GEMM_PENALTY = 0.80


def _degrade(launch: KernelLaunch) -> KernelLaunch:
    """Apply the XLA GEMM-selection penalty to a GEMM launch."""
    return dataclasses.replace(
        launch,
        compute_efficiency=launch.compute_efficiency * XLA_GEMM_PENALTY,
    )


class TensorFlowXLA(Framework):
    """Google TensorFlow 2.8 with XLA JIT compilation."""

    name = "TensorFlow XLA"
    features = FrameworkFeatures(
        variable_length_support=False,
        kernel_tuning=True,
        fused_mha_max_seq=None,
        kernel_fusion="no",
    )

    def _estimate_mha(
        self,
        ctx: ExecutionContext,
        batch: int,
        seq_len: int,
        config: BertConfig,
    ) -> None:
        rows = batch * seq_len
        hidden = config.hidden_size
        score_rows = batch * config.num_heads * seq_len
        ctx.launch(add_bias_launch(rows, 3 * hidden, category="attention"))
        # layout assignment materialises Q, K, V copies
        for name in ("xla_copy_q", "xla_copy_k", "xla_copy_v"):
            ctx.launch(split_heads_launch(rows, hidden, name=name))
        ctx.launch(
            _degrade(
                batched_gemm_launch(
                    batch * config.num_heads,
                    seq_len,
                    seq_len,
                    config.head_size,
                    name="xla_bmm_qk",
                )
            )
        )
        # mask add is a separate fused-elementwise cluster, then softmax
        ctx.launch(
            add_mask_launch(score_rows, seq_len, batch * seq_len)
        )
        ctx.launch(softmax_launch(score_rows, seq_len, name="xla_softmax"))
        ctx.launch(
            _degrade(
                batched_gemm_launch(
                    batch * config.num_heads,
                    seq_len,
                    config.head_size,
                    seq_len,
                    name="xla_bmm_pv",
                )
            )
        )
        ctx.launch(split_heads_launch(rows, hidden, name="xla_copy_out"))

    def estimate(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> float:
        batch = len(seq_lens)
        rows = batch * max_seq_len
        hidden = config.hidden_size
        before = ctx.elapsed_us()
        for _ in range(config.num_layers):
            ctx.launch(
                _degrade(
                    gemm_launch(
                        rows, 3 * hidden, hidden, name="gemm0_qkv",
                        category="gemm0",
                    )
                )
            )
            self._estimate_mha(ctx, batch, max_seq_len, config)
            ctx.launch(
                _degrade(
                    gemm_launch(
                        rows, hidden, hidden, name="gemm1_attn_out",
                        category="gemm1",
                    )
                )
            )
            ctx.launch(add_bias_residual_launch(rows, hidden, "layernorm0"))
            ctx.launch(layernorm_launch(rows, hidden, "layernorm0"))
            ctx.launch(
                _degrade(
                    gemm_launch(
                        rows, config.ffn_size, hidden, name="gemm2",
                        category="gemm2",
                    )
                )
            )
            ctx.launch(add_bias_gelu_launch(rows, config.ffn_size))
            ctx.launch(
                _degrade(
                    gemm_launch(
                        rows, hidden, config.ffn_size, name="gemm3_ffn_out",
                        category="gemm3",
                    )
                )
            )
            ctx.launch(add_bias_residual_launch(rows, hidden, "layernorm1"))
            ctx.launch(layernorm_launch(rows, hidden, "layernorm1"))
        return ctx.elapsed_us() - before
