"""Tencent TurboTransformer framework model.

TurboTransformer handles variable lengths with a *run-time batch
scheduler*: it sorts incoming sentences by length and partitions them
into groups of similar length, padding only within each group, then runs
the (padded) encoder once per group.  This caps padding waste but
multiplies kernel launches by the group count and shrinks each launch's
grid — which is exactly the "significant performance degradation for
models with large batch numbers and sequence lengths" the paper observes.

Its kernels fuse some memory-bound footprints ("partially" in Table I):
we give it the fused add-bias+layernorm kernel but an unfused FFN
epilogue and a plain padded batched-GEMM MHA.  TurboTransformer only
supports sequences shorter than 512.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks.base import Framework, FrameworkFeatures
from repro.gpusim.stream import ExecutionContext
from repro.kernels.activation import add_bias_gelu_launch
from repro.kernels.batched_gemm import batched_gemm_launch
from repro.kernels.gemm import gemm_launch
from repro.kernels.layernorm import fused_layernorm_launch
from repro.kernels.softmax import softmax_launch
from repro.kernels.transpose import (
    add_bias_split_heads_qkv_launch,
    split_heads_launch,
)

#: fixed per-group runtime cost of the batch scheduler itself
GROUP_OVERHEAD_US = 50.0
#: host-side cost of TurboTransformer's model-aware memory allocator and
#: operator dispatch, paid once per layer per group: the allocator plans
#: activation placement at run time, serialising with the GPU stream.
#: This is what makes "excessive kernel launches at run-time" hurt at
#: large batch counts (many groups) in Figure 14.
ALLOCATOR_OVERHEAD_PER_LAYER_US = 60.0


def smart_batching(
    seq_lens: np.ndarray, group_cost_tokens: int
) -> list[np.ndarray]:
    """TurboTransformer's length-aware grouping, as a 1-D partition DP.

    Sentences are sorted by length (descending) and split into contiguous
    groups; a group of ``g`` sentences padded to its own maximum costs
    ``g * group_max`` padded tokens plus a fixed per-group charge of
    ``group_cost_tokens`` (modelling the extra kernel launches a group
    adds).  Dynamic programming finds the partition minimising total
    cost — small fixed charges yield many tight groups, large ones yield
    fewer, more padded groups.

    Returns the groups as arrays of *original batch indices*.
    """
    lens = np.asarray(seq_lens, dtype=np.int64)
    if lens.ndim != 1 or lens.size == 0:
        raise ValueError("need a non-empty 1-D length vector")
    if group_cost_tokens < 0:
        raise ValueError("group_cost_tokens must be non-negative")
    order = np.argsort(-lens, kind="stable")
    sorted_lens = lens[order]
    n = lens.size

    # dp[i] = min cost of grouping sorted sentences [0, i)
    dp = np.full(n + 1, np.inf)
    split = np.zeros(n + 1, dtype=np.int64)
    dp[0] = 0.0
    for i in range(1, n + 1):
        # group (j, i]: max length is sorted_lens[j] (descending order)
        for j in range(i):
            cost = (
                dp[j]
                + (i - j) * int(sorted_lens[j])
                + group_cost_tokens
            )
            if cost < dp[i]:
                dp[i] = cost
                split[i] = j
    groups: list[np.ndarray] = []
    i = n
    while i > 0:
        j = int(split[i])
        groups.append(order[j:i])
        i = j
    groups.reverse()
    return groups


class TurboTransformer(Framework):
    """Tencent TurboTransformer 0.5.1 with smart batching enabled."""

    name = "TurboTransformer"
    features = FrameworkFeatures(
        variable_length_support=True,
        kernel_tuning=True,
        fused_mha_max_seq=None,
        kernel_fusion="partially",
    )
    max_supported_seq = 511

    def __init__(self, group_cost_tokens: int = 320) -> None:
        if group_cost_tokens < 0:
            raise ValueError("group_cost_tokens must be non-negative")
        self.group_cost_tokens = group_cost_tokens

    def _estimate_group(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        group_batch: int,
        group_max_len: int,
    ) -> None:
        """One encoder layer stack pass for one padded group."""
        rows = group_batch * group_max_len
        hidden = config.hidden_size
        heads = config.num_heads
        for _ in range(config.num_layers):
            ctx.launch(
                gemm_launch(
                    rows, 3 * hidden, hidden, name="gemm0_qkv",
                    category="gemm0",
                )
            )
            ctx.launch(add_bias_split_heads_qkv_launch(rows, 3 * hidden))
            ctx.launch(
                batched_gemm_launch(
                    group_batch * heads,
                    group_max_len,
                    group_max_len,
                    config.head_size,
                    name="turbo_bmm_qk",
                )
            )
            ctx.launch(
                softmax_launch(
                    group_batch * heads * group_max_len,
                    group_max_len,
                    name="masked_softmax",
                )
            )
            ctx.launch(
                batched_gemm_launch(
                    group_batch * heads,
                    group_max_len,
                    config.head_size,
                    group_max_len,
                    name="turbo_bmm_pv",
                )
            )
            ctx.launch(split_heads_launch(rows, hidden, name="merge_heads"))
            ctx.launch(
                gemm_launch(
                    rows, hidden, hidden, name="gemm1_attn_out",
                    category="gemm1",
                )
            )
            ctx.launch(fused_layernorm_launch(rows, hidden, "layernorm0"))
            ctx.launch(
                gemm_launch(
                    rows, config.ffn_size, hidden, name="gemm2",
                    category="gemm2",
                )
            )
            ctx.launch(add_bias_gelu_launch(rows, config.ffn_size))
            ctx.launch(
                gemm_launch(
                    rows, hidden, config.ffn_size, name="gemm3_ffn_out",
                    category="gemm3",
                )
            )
            ctx.launch(fused_layernorm_launch(rows, hidden, "layernorm1"))

    def estimate(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> float:
        groups = smart_batching(seq_lens, self.group_cost_tokens)
        before = ctx.elapsed_us()
        total_overhead = 0.0
        for group in groups:
            group_lens = np.asarray(seq_lens)[group]
            self._estimate_group(
                ctx, config, len(group), int(group_lens.max())
            )
            total_overhead += (
                GROUP_OVERHEAD_US
                + ALLOCATOR_OVERHEAD_PER_LAYER_US * config.num_layers
            )
        # the batch scheduler and allocator run on the host, serialising
        # with the GPU work
        return ctx.elapsed_us() - before + total_overhead
