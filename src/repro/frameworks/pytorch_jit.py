"""PyTorch-with-JIT framework model.

Eager/TorchScript BERT in FP16: every GEMM goes through cuBLAS (tensor
cores), the JIT fuses short element-wise chains (bias+mask into softmax,
bias+GELU into one kernel), but the pipeline is *padded* end-to-end and
MHA still launches separate transpose copies for Q/K/V — no cross-op
fusion, no variable-length support (Table I row: variable-len no, tuning
yes, fused MHA no, fusion no).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks.base import Framework, FrameworkFeatures
from repro.gpusim.stream import ExecutionContext
from repro.kernels.activation import add_bias_gelu_launch, add_bias_launch
from repro.kernels.batched_gemm import batched_gemm_launch
from repro.kernels.gemm import gemm_launch
from repro.kernels.layernorm import (
    add_bias_residual_launch,
    layernorm_launch,
)
from repro.kernels.softmax import softmax_launch
from repro.kernels.transpose import split_heads_launch


class PyTorchJIT(Framework):
    """Meta PyTorch 1.13 with TorchScript JIT."""

    name = "PyTorch JIT"
    features = FrameworkFeatures(
        variable_length_support=False,
        kernel_tuning=True,
        fused_mha_max_seq=None,
        kernel_fusion="no",
    )

    def _estimate_mha(
        self,
        ctx: ExecutionContext,
        batch: int,
        seq_len: int,
        config: BertConfig,
    ) -> None:
        """FP16 eager MHA: bias, 3 transposes, bmm, softmax, bmm, merge."""
        rows = batch * seq_len
        hidden = config.hidden_size
        ctx.launch(add_bias_launch(rows, 3 * hidden, category="attention"))
        for name in ("pt_transpose_q", "pt_transpose_k", "pt_transpose_v"):
            ctx.launch(split_heads_launch(rows, hidden, name=name))
        ctx.launch(
            batched_gemm_launch(
                batch * config.num_heads,
                seq_len,
                seq_len,
                config.head_size,
                name="pt_bmm_qk",
            )
        )
        # JIT fuses the mask add into the softmax pass
        ctx.launch(
            softmax_launch(
                batch * config.num_heads * seq_len,
                seq_len,
                name="masked_softmax",
            )
        )
        ctx.launch(
            batched_gemm_launch(
                batch * config.num_heads,
                seq_len,
                config.head_size,
                seq_len,
                name="pt_bmm_pv",
            )
        )
        ctx.launch(split_heads_launch(rows, hidden, name="pt_transpose_out"))

    def estimate(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> float:
        batch = len(seq_lens)
        rows = batch * max_seq_len
        hidden = config.hidden_size
        before = ctx.elapsed_us()
        for _ in range(config.num_layers):
            ctx.launch(
                gemm_launch(
                    rows, 3 * hidden, hidden, name="gemm0_qkv",
                    category="gemm0",
                )
            )
            self._estimate_mha(ctx, batch, max_seq_len, config)
            ctx.launch(
                gemm_launch(
                    rows, hidden, hidden, name="gemm1_attn_out",
                    category="gemm1",
                )
            )
            ctx.launch(add_bias_residual_launch(rows, hidden, "layernorm0"))
            ctx.launch(layernorm_launch(rows, hidden, "layernorm0"))
            ctx.launch(
                gemm_launch(
                    rows, config.ffn_size, hidden, name="gemm2",
                    category="gemm2",
                )
            )
            # JIT fuses bias + GELU into one element-wise kernel
            ctx.launch(add_bias_gelu_launch(rows, config.ffn_size))
            ctx.launch(
                gemm_launch(
                    rows, hidden, config.ffn_size, name="gemm3_ffn_out",
                    category="gemm3",
                )
            )
            ctx.launch(add_bias_residual_launch(rows, hidden, "layernorm1"))
            ctx.launch(layernorm_launch(rows, hidden, "layernorm1"))
        return ctx.elapsed_us() - before
