"""Framework cost models for the paper's end-to-end comparison (Fig. 14)."""

from repro.frameworks.base import Framework, FrameworkFeatures, table1_rows
from repro.frameworks.byte_transformer import ByteTransformer
from repro.frameworks.faster_transformer import FasterTransformer
from repro.frameworks.pytorch_jit import PyTorchJIT
from repro.frameworks.tensorflow_xla import TensorFlowXLA
from repro.frameworks.turbo_transformer import TurboTransformer, smart_batching


def all_frameworks() -> list[Framework]:
    """The five systems of Figure 14, in the paper's legend order."""
    return [
        PyTorchJIT(),
        TensorFlowXLA(),
        TurboTransformer(),
        FasterTransformer(),
        ByteTransformer(),
    ]


__all__ = [
    "Framework",
    "FrameworkFeatures",
    "table1_rows",
    "ByteTransformer",
    "FasterTransformer",
    "PyTorchJIT",
    "TensorFlowXLA",
    "TurboTransformer",
    "smart_batching",
    "all_frameworks",
]
