"""NVIDIA FasterTransformer framework model.

FasterTransformer supports variable lengths the same way ByteTransformer
does outside MHA — an effective-transformer-style packing — but its fused
MHA comes from the TensorRT BERT plugin, which only covers sequence
lengths up to 512 (register pressure): beyond that it falls back to a
*padded, unfused* batched-GEMM attention, which is why "its end-to-end
efficiency cannot be maintained when the sequence length becomes longer
than 512".  It also lacks ByteTransformer's comprehensive kernel fusion
(Table I: kernel fusion "no"): the layernorm and FFN epilogues run as
standalone kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks.base import Framework, FrameworkFeatures
from repro.gpusim.stream import ExecutionContext
from repro.kernels.activation import add_bias_gelu_launch
from repro.kernels.batched_gemm import batched_gemm_launch
from repro.kernels.gemm import gemm_launch
from repro.kernels.layernorm import (
    add_bias_residual_launch,
    layernorm_launch,
)
from repro.kernels.packing import pack_launch, unpack_launch
from repro.kernels.prefix_sum import prefix_sum_launch
from repro.kernels.softmax import softmax_launch
from repro.kernels.transpose import (
    add_bias_unpack_split_heads_qkv_launch,
    pack_merge_heads_launch,
)
from repro.attention.fused_short import (
    fused_short_launch,
    short_kernel_shared_mem,
)

#: largest sequence the TensorRT fused-MHA plugin covers
TRT_FUSED_MHA_MAX_SEQ = 512
#: sustained efficiency of the TRT fused MHA kernel — slightly below the
#: paper's hand-tuned short kernel on these shapes
TRT_FUSED_MHA_EFFICIENCY = 0.05


class FasterTransformer(Framework):
    """NVIDIA FasterTransformer 5.1."""

    name = "FasterTransformer"
    features = FrameworkFeatures(
        variable_length_support=True,
        kernel_tuning=True,
        fused_mha_max_seq=TRT_FUSED_MHA_MAX_SEQ,
        kernel_fusion="no",
    )

    def _estimate_mha(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> None:
        batch = len(seq_lens)
        tokens = int(np.sum(seq_lens))
        hidden = config.hidden_size
        smem_needed = short_kernel_shared_mem(
            max_seq_len, config.head_size, 32
        )
        if (
            max_seq_len <= TRT_FUSED_MHA_MAX_SEQ
            and smem_needed <= ctx.device.max_shared_mem_per_block
        ):
            # TRT varlen fused MHA: one kernel, padding-free
            ctx.launch(
                fused_short_launch(
                    np.asarray(seq_lens),
                    config.num_heads,
                    config.head_size,
                    efficiency=TRT_FUSED_MHA_EFFICIENCY,
                    name="trt_fused_mha",
                )
            )
            return
        # fallback: unpad -> padded batched-GEMM MHA -> repack, with a
        # plain padded softmax (no zero-padding inside MHA)
        padded_rows = batch * max_seq_len
        ctx.launch(
            add_bias_unpack_split_heads_qkv_launch(
                tokens, padded_rows, 3 * hidden
            )
        )
        ctx.launch(
            batched_gemm_launch(
                batch * config.num_heads,
                max_seq_len,
                max_seq_len,
                config.head_size,
                name="ft_bmm_qk",
            )
        )
        ctx.launch(
            softmax_launch(
                batch * config.num_heads * max_seq_len,
                max_seq_len,
                name="masked_softmax",
            )
        )
        ctx.launch(
            batched_gemm_launch(
                batch * config.num_heads,
                max_seq_len,
                config.head_size,
                max_seq_len,
                name="ft_bmm_pv",
            )
        )
        ctx.launch(pack_merge_heads_launch(tokens, hidden))

    def estimate(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> float:
        batch = len(seq_lens)
        tokens = int(np.sum(seq_lens))
        hidden = config.hidden_size
        before = ctx.elapsed_us()
        # effective-transformer packing once per forward pass
        ctx.launch(prefix_sum_launch(batch, max_seq_len))
        ctx.launch(pack_launch(tokens, hidden))
        for _ in range(config.num_layers):
            ctx.launch(
                gemm_launch(
                    tokens, 3 * hidden, hidden, name="gemm0_qkv",
                    category="gemm0",
                )
            )
            self._estimate_mha(ctx, config, seq_lens, max_seq_len)
            ctx.launch(
                gemm_launch(
                    tokens, hidden, hidden, name="gemm1_attn_out",
                    category="gemm1",
                )
            )
            ctx.launch(add_bias_residual_launch(tokens, hidden, "layernorm0"))
            ctx.launch(layernorm_launch(tokens, hidden, "layernorm0"))
            ctx.launch(
                gemm_launch(
                    tokens, config.ffn_size, hidden, name="gemm2",
                    category="gemm2",
                )
            )
            ctx.launch(add_bias_gelu_launch(tokens, config.ffn_size))
            ctx.launch(
                gemm_launch(
                    tokens, hidden, config.ffn_size, name="gemm3_ffn_out",
                    category="gemm3",
                )
            )
            ctx.launch(add_bias_residual_launch(tokens, hidden, "layernorm1"))
            ctx.launch(layernorm_launch(tokens, hidden, "layernorm1"))
        ctx.launch(unpack_launch(tokens, batch * max_seq_len, hidden))
        return ctx.elapsed_us() - before
