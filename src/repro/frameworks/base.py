"""Framework model base class and the Table I feature matrix.

A framework model is a *cost model* of one of the systems the paper
benchmarks against in Figure 14: it replays, for a given variable-length
batch, the kernel-launch chain that framework's documented structure
implies (padded vs packed, fused vs unfused, per-group re-batching, …)
into an execution context.  All frameworks compute the same mathematical
function — BERT — so numerical validation is delegated to
:mod:`repro.core.reference`; what differs, and what Figure 14 measures,
is the schedule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.config import BertConfig
from repro.gpusim.stream import ExecutionContext


@dataclass(frozen=True)
class FrameworkFeatures:
    """One row of the paper's Table I."""

    variable_length_support: bool
    kernel_tuning: bool
    #: None = no fused MHA; an int = fused MHA up to that sequence length;
    #: -1 = fused MHA for any length
    fused_mha_max_seq: int | None
    #: "no" / "partially" / "yes"
    kernel_fusion: str

    def fused_mha_label(self) -> str:
        if self.fused_mha_max_seq is None:
            return "no"
        if self.fused_mha_max_seq < 0:
            return "yes"
        return f"<= {self.fused_mha_max_seq}"


class Framework(abc.ABC):
    """A framework's end-to-end BERT cost model."""

    #: display name used in reports (matches the paper's legend)
    name: str = "framework"
    #: the framework's Table I row
    features: FrameworkFeatures

    #: largest max_seq_len the framework can serve (None = unlimited)
    max_supported_seq: int | None = None

    def supports(self, max_seq_len: int) -> bool:
        """Whether the framework can run this padded shape at all.

        TurboTransformer, for example, only supports sequences shorter
        than 512, so Figure 14 has no bars for it beyond that.
        """
        if self.max_supported_seq is None:
            return True
        return max_seq_len <= self.max_supported_seq

    @abc.abstractmethod
    def estimate(
        self,
        ctx: ExecutionContext,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
    ) -> float:
        """Replay the framework's launch chain; return modelled time (us)."""

    def latency_us(
        self,
        config: BertConfig,
        seq_lens: np.ndarray,
        max_seq_len: int,
        ctx: ExecutionContext | None = None,
    ) -> float:
        """Convenience: estimate on a fresh context."""
        if not self.supports(max_seq_len):
            raise ValueError(
                f"{self.name} does not support max_seq_len {max_seq_len}"
            )
        context = ctx if ctx is not None else ExecutionContext()
        return self.estimate(context, config, seq_lens, max_seq_len)


def table1_rows(frameworks: list[Framework]) -> str:
    """Render the Table I feature matrix for a list of frameworks."""
    header = (
        f"{'framework':<20}{'variable-len':>14}{'tuning':>9}"
        f"{'fused MHA':>12}{'fusion':>12}"
    )
    lines = [header]
    for fw in frameworks:
        f = fw.features
        lines.append(
            f"{fw.name:<20}"
            f"{'yes' if f.variable_length_support else 'no':>14}"
            f"{'yes' if f.kernel_tuning else 'no':>9}"
            f"{f.fused_mha_label():>12}"
            f"{f.kernel_fusion:>12}"
        )
    return "\n".join(lines)
