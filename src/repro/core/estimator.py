"""Shape-only cost estimation: the numeric pipelines without the numerics.

Full-scale NumPy numerics at BERT shapes cost seconds per forward pass;
the end-to-end sweeps of Figure 14 need hundreds of forwards.  The
estimator replays, for a given batch shape, the *exact* kernel-launch
sequence the numeric pipelines record — built from the same public
``*_launch`` descriptor builders — into an execution context, without
touching any tensor.

Consistency is enforced by tests: for small shapes, running the numeric
model and the estimator must record identical kernel sequences (same
names, grids, FLOPs, bytes) and therefore identical modelled times.

The estimated chain depends only on the *shape-relevant* parts of
:class:`~repro.core.config.OptimizationConfig` (fusion flags, padding
removal, MHA dispatch).  ``gelu_variant`` is deliberately invisible
here: the exact and tanh GELU formulas are the same modelled kernel
(same name, grid, FLOPs, bytes), so ``fast-gelu`` changes host wall
time only — never an estimate, a graph key's stream, or a priced µs.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.attention.dispatch import forced_mha_path
from repro.attention.fused_long import FMHA_GROUPED_EFFICIENCY
from repro.attention.fused_short import fused_short_launch, supports
from repro.attention.standard import standard_mha_launches
from repro.core.config import BertConfig, OptimizationConfig
from repro.core.sharding import ShardSpec
from repro.gpusim.errors import LaunchConfigError
from repro.gpusim.graph import GraphCache
from repro.gpusim.interconnect import all_reduce_launch
from repro.gpusim.stream import ExecutionContext, NullContext
from repro.kernels.activation import add_bias_gelu_launch
from repro.kernels.batched_gemm import batched_gemm_launch
from repro.kernels.gemm import gemm_launch
from repro.kernels.grouped_gemm import (
    GemmProblem,
    SchedulerKind,
    grouped_gemm_launch,
)
from repro.kernels.layernorm import (
    add_bias_residual_launch,
    fused_layernorm_launch,
    layernorm_launch,
)
from repro.gpusim.memory import tensor_bytes
from repro.kernels.packing import pack_launch, unpack_launch
from repro.kernels.prefix_sum import prefix_sum_launch
from repro.kernels.reduction import (
    full_reduction_launch,
    partial_stats_flops,
    partial_stats_store_bytes,
)
from repro.kernels.softmax import softmax_launch, zeropad_softmax_launch
from repro.kernels.transpose import (
    add_bias_split_heads_qkv_launch,
    add_bias_unpack_split_heads_qkv_launch,
    pack_merge_heads_launch,
    split_heads_launch,
)


def estimate_standard_mha(
    ctx: ExecutionContext,
    batch: int,
    seq_len: int,
    config: BertConfig,
) -> None:
    """PyTorch-eager MHA launch chain (see ``standard_mha``)."""
    for launch in standard_mha_launches(
        batch, seq_len, config.num_heads, config.hidden_size
    ):
        ctx.launch(launch)


def estimate_unfused_cublas_mha(
    ctx: ExecutionContext,
    batch: int,
    seq_len: int,
    config: BertConfig,
) -> None:
    """cuBLAS batched-GEMM MHA launch chain (see ``unfused_cublas_mha``)."""
    rows = batch * seq_len
    hidden = config.hidden_size
    ctx.launch(add_bias_split_heads_qkv_launch(rows, 3 * hidden))
    ctx.launch(
        batched_gemm_launch(
            batch * config.num_heads,
            seq_len,
            seq_len,
            config.head_size,
            name="cublas_bmm_qk",
        )
    )
    ctx.launch(
        softmax_launch(
            batch * config.num_heads * seq_len,
            seq_len,
            name="masked_softmax",
        )
    )
    ctx.launch(
        batched_gemm_launch(
            batch * config.num_heads,
            seq_len,
            config.head_size,
            seq_len,
            name="cublas_bmm_pv",
        )
    )
    ctx.launch(split_heads_launch(rows, hidden, name="merge_heads"))


def estimate_zeropad_mha(
    ctx: ExecutionContext,
    seq_lens: np.ndarray,
    max_seq_len: int,
    config: BertConfig,
) -> None:
    """Zero-padding-softmax MHA launch chain (see ``zeropad_softmax_mha``)."""
    batch = len(seq_lens)
    tokens = int(np.sum(seq_lens))
    hidden = config.hidden_size
    padded_rows = batch * max_seq_len
    ctx.launch(
        add_bias_unpack_split_heads_qkv_launch(
            tokens, padded_rows, 3 * hidden
        )
    )
    ctx.launch(
        batched_gemm_launch(
            batch * config.num_heads,
            max_seq_len,
            max_seq_len,
            config.head_size,
            name="cublas_bmm_qk",
        )
    )
    ctx.launch(
        zeropad_softmax_launch(
            [int(l) for l in seq_lens], config.num_heads
        )
    )
    ctx.launch(
        batched_gemm_launch(
            batch * config.num_heads,
            max_seq_len,
            config.head_size,
            max_seq_len,
            name="cublas_bmm_pv",
        )
    )
    ctx.launch(pack_merge_heads_launch(tokens, hidden))


def estimate_fused_long_mha(
    ctx: ExecutionContext,
    seq_lens: np.ndarray,
    config: BertConfig,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
) -> None:
    """Grouped-GEMM fused-MHA launch chain (see ``fused_long_mha``)."""
    lens = [int(l) for l in seq_lens]
    heads = config.num_heads
    head_size = config.head_size

    problems_qk = [
        GemmProblem(m=length, n=length, k=head_size)
        for length in lens
        for _ in range(heads)
    ]
    ctx.launch(
        grouped_gemm_launch(
            problems_qk,
            ctx.device,
            scheduler=scheduler,
            name="fmha_grouped_qk",
            extra_bytes=partial_stats_store_bytes(lens, heads),
            extra_flops=partial_stats_flops(lens, heads),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )

    # full reduction sees one entry per attention unit (heads per batch)
    unit_lens = [length for length in lens for _ in range(heads)]
    ctx.launch(full_reduction_launch(unit_lens, heads=1))

    problems_pv = [
        GemmProblem(m=length, n=head_size, k=length)
        for length in lens
        for _ in range(heads)
    ]
    transform_flops = sum(2.0 * length * length * heads for length in lens)
    stats_bytes = sum(2.0 * length * heads * 4 for length in lens)
    ctx.launch(
        grouped_gemm_launch(
            problems_pv,
            ctx.device,
            scheduler=scheduler,
            name="fmha_grouped_pv",
            extra_bytes=float(stats_bytes),
            extra_flops=float(transform_flops),
            base_efficiency=FMHA_GROUPED_EFFICIENCY,
        )
    )


def estimate_byte_mha(
    ctx: ExecutionContext,
    seq_lens: np.ndarray,
    config: BertConfig,
    opt: OptimizationConfig,
) -> None:
    """ByteTransformer fused-MHA dispatch (see ``byte_mha``)."""
    max_len = int(np.max(seq_lens))
    if max_len <= opt.fused_mha_short_max_seq and supports(
        max_len, config.head_size, ctx.device.max_shared_mem_per_block
    ):
        ctx.launch(
            fused_short_launch(
                np.asarray(seq_lens), config.num_heads, config.head_size
            )
        )
        return
    scheduler = (
        SchedulerKind.WARP_PREFETCH
        if opt.warp_prefetch_scheduler
        else SchedulerKind.PER_THREAD
    )
    estimate_fused_long_mha(ctx, seq_lens, config, scheduler)


def _require_cluster(ctx: ExecutionContext, what: str):
    """The context's cluster, or a clear error for sharded estimates."""
    if ctx.cluster is None:
        raise LaunchConfigError(
            f"a {what} needs an interconnect to price its all-reduces; "
            "pass cluster= to ExecutionContext"
        )
    return ctx.cluster


def _estimate_layernorm(
    ctx: ExecutionContext, rows: int, hidden: int, fused: bool, category: str
) -> None:
    if fused:
        ctx.launch(fused_layernorm_launch(rows, hidden, category))
    else:
        ctx.launch(add_bias_residual_launch(rows, hidden, category))
        ctx.launch(layernorm_launch(rows, hidden, category))


def _estimate_ffn(
    ctx: ExecutionContext,
    rows: int,
    config: BertConfig,
    fuse_gelu: bool,
    name_prefix: str = "",
    ffn: int | None = None,
) -> None:
    """The up-projection GEMM (+GELU); ``ffn`` overrides the output
    width for column-sharded tensor parallelism."""
    hidden = config.hidden_size
    if ffn is None:
        ffn = config.ffn_size
    if fuse_gelu:
        ctx.launch(
            gemm_launch(
                rows,
                ffn,
                hidden,
                name=f"{name_prefix}gemm2_fused_bias_gelu",
                category="gemm2",
                epilogue_bytes=tensor_bytes(ffn),
            )
        )
    else:
        ctx.launch(
            gemm_launch(
                rows, ffn, hidden, name=f"{name_prefix}gemm2",
                category="gemm2",
            )
        )
        ctx.launch(add_bias_gelu_launch(rows, ffn))


def estimate_encoder_layer(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
    *,
    mha: str | None = None,
    shard: ShardSpec | None = None,
) -> None:
    """One encoder layer's launch chain for either pipeline.

    ``mha`` overrides the attention implementation: ``"standard"``,
    ``"cublas"``, ``"zeropad"`` or ``"fused"``; by default it follows a
    :func:`~repro.attention.dispatch.force_mha_path` override if one is
    active (the degradation ladder's hook), else ``opt`` exactly as the
    numeric pipelines do.

    ``shard`` prices one tensor-parallel rank's slice of the layer
    (Megatron column/row sharding): the QKV projection and FFN up
    projection are column-sharded, attention runs this rank's heads,
    the two output projections are row-sharded and each followed by a
    priced all-reduce of the ``[rows, hidden]`` activation — the two
    sync points per layer.  Layernorms stay replicated (full width).
    The default / ``tp == 1`` spec emits the exact unsharded stream
    with no collectives.
    """
    if shard is None:
        shard = ShardSpec()
    batch = len(seq_lens)
    hidden = config.hidden_size
    if opt.remove_padding:
        rows = int(np.sum(seq_lens))
    else:
        rows = batch * max_seq_len

    heads_r = shard.shard_dim(config.num_heads)
    if heads_r == 0:
        raise LaunchConfigError(
            f"rank {shard.rank} of tp={shard.tp} holds no attention heads "
            f"(model has {config.num_heads})"
        )
    # this rank's attention width; == hidden when unsharded, and
    # hidden_size is num_heads * head_size so the per-rank config below
    # reports it as its hidden_size
    attn_r = heads_r * config.head_size
    rank_cfg = (
        config if heads_r == config.num_heads
        else replace(config, num_heads=heads_r)
    )

    ctx.launch(
        gemm_launch(rows, 3 * attn_r, hidden, name="gemm0_qkv", category="gemm0")
    )

    if mha is None:
        mha = forced_mha_path()
    if mha is None:
        if opt.fused_mha:
            mha = "fused"
        elif opt.remove_padding:
            mha = "zeropad"
        else:
            mha = "cublas"
    if mha == "standard":
        estimate_standard_mha(ctx, batch, max_seq_len, rank_cfg)
    elif mha == "cublas":
        estimate_unfused_cublas_mha(ctx, batch, max_seq_len, rank_cfg)
    elif mha == "zeropad":
        estimate_zeropad_mha(ctx, seq_lens, max_seq_len, rank_cfg)
    elif mha == "fused":
        estimate_byte_mha(ctx, seq_lens, rank_cfg, opt)
    else:
        raise ValueError(f"unknown mha override {mha!r}")

    ctx.launch(
        gemm_launch(
            rows, hidden, attn_r, name="gemm1_attn_out", category="gemm1"
        )
    )
    if shard.is_sharded:
        ctx.launch(
            all_reduce_launch(
                tensor_bytes(rows, hidden),
                _require_cluster(ctx, "tensor-parallel estimate"),
                devices=shard.tp,
                name=None,
            )
        )
    _estimate_layernorm(ctx, rows, hidden, opt.fuse_layernorm, "layernorm0")
    ffn_r = shard.shard_dim(config.ffn_size)
    _estimate_ffn(ctx, rows, config, opt.fuse_gelu, ffn=ffn_r)
    ctx.launch(
        gemm_launch(
            rows, hidden, ffn_r, name="gemm3_ffn_out",
            category="gemm3",
        )
    )
    if shard.is_sharded:
        ctx.launch(
            all_reduce_launch(
                tensor_bytes(rows, hidden),
                _require_cluster(ctx, "tensor-parallel estimate"),
                devices=shard.tp,
                name=None,
            )
        )
    _estimate_layernorm(ctx, rows, hidden, opt.fuse_layernorm, "layernorm1")


def estimate_model(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
    *,
    mha: str | None = None,
    shard: ShardSpec | None = None,
) -> float:
    """The full model's launch chain; returns the modelled time in us.

    ``mha`` and ``shard`` forward to :func:`estimate_encoder_layer` for
    every layer; pack/unpack stay full-width (activations are
    replicated outside the sharded projections).
    """
    batch = len(seq_lens)
    hidden = config.hidden_size
    before = ctx.elapsed_us()
    if opt.remove_padding:
        tokens = int(np.sum(seq_lens))
        ctx.launch(prefix_sum_launch(batch, max_seq_len))
        ctx.launch(pack_launch(tokens, hidden))
        for _ in range(config.num_layers):
            estimate_encoder_layer(
                ctx, config, opt, seq_lens, max_seq_len, mha=mha,
                shard=shard,
            )
        ctx.launch(unpack_launch(tokens, batch * max_seq_len, hidden))
    else:
        for _ in range(config.num_layers):
            estimate_encoder_layer(
                ctx, config, opt, seq_lens, max_seq_len, mha=mha,
                shard=shard,
            )
    return ctx.elapsed_us() - before


def estimate_model_graphed(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
    *,
    mha: str | None = None,
    shard: ShardSpec | None = None,
    cache: "GraphCache | None" = None,
) -> float:
    """:func:`estimate_model` through a launch-graph cache.

    The estimator's launch stream is a pure function of
    ``(device, cluster, config, opt, effective mha path, shard,
    max_seq_len, lengths)``; the first call per key captures it, repeats
    replay it through ``ctx`` (records appended bit-identically,
    :attr:`launch_hook` runs per replayed launch) without re-running a
    single descriptor builder or pricing pass.  This is the serving
    runtime's admission hot path.

    The dispatch override is resolved *before* keying so the degradation
    ladder never replays a stale path's stream; the cluster and shard
    participate unconditionally so a single-device capture can never
    answer a sharded lookup (or vice versa).  Falls back to the plain
    estimator when ``cache`` is ``None`` or ``ctx`` prices nothing.
    """
    if cache is None or isinstance(ctx, NullContext):
        return estimate_model(
            ctx, config, opt, seq_lens, max_seq_len, mha=mha, shard=shard
        )
    lens = np.asarray(seq_lens, dtype=np.int64)
    effective = mha or forced_mha_path()
    key = (
        "estimate",
        ctx.device,
        ctx.cluster,
        config,
        opt,
        effective,
        shard,
        int(max_seq_len),
        lens.tobytes(),
    )
    return cache.replay_or_capture(
        key,
        ctx,
        lambda cap_ctx: estimate_model(
            cap_ctx, config, opt, lens, max_seq_len, mha=effective,
            shard=shard,
        ),
    )


def canonical_tile_lengths(tile: int, max_seq_len: int) -> np.ndarray:
    """The canonical segment layout a token-budget tile is priced as.

    A tile of ``T`` valid tokens is laid out as ``T // max_seq_len``
    full-length segments plus one ragged remainder — the worst attention
    composition any megabatch inside the tile can reach (``sum(len_i^2)``
    is maximised by the longest admissible segments), so the tile's
    replayed cost never under-prices a real megabatch's attention.  A
    pure function of ``(tile, max_seq_len)``: this is what makes the
    tile-keyed launch graph reusable across arbitrary megabatch
    compositions.
    """
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    if max_seq_len <= 0:
        raise ValueError(f"max_seq_len must be positive, got {max_seq_len}")
    full, remainder = divmod(int(tile), int(max_seq_len))
    lens = [max_seq_len] * full
    if remainder:
        lens.append(remainder)
    return np.asarray(lens, dtype=np.int64)


def estimate_model_tiled(
    ctx: ExecutionContext,
    config: BertConfig,
    opt: OptimizationConfig,
    tile: int,
    max_seq_len: int,
    *,
    mha: str | None = None,
    shard: ShardSpec | None = None,
    cache: "GraphCache | None" = None,
) -> float:
    """Price a shape-quantized megabatch: the tile's canonical launch chain.

    Continuous serving quantizes every megabatch to a token-budget tile
    and pays the tile's canonical cost (see
    :func:`canonical_tile_lengths`) regardless of the exact segment
    composition — exactly like a CUDA-graph deployment that captures one
    graph per compiled shape and launches the fixed grid for anything
    that fits.  The graph-cache key is ``(device, cluster, config,
    preset, path, shard, tile, max_seq_len)`` — one graph per (tile,
    device count, rank, shard mode) composition, so a handful of tiles
    cover all live traffic and steady-state pricing is pure
    :meth:`~repro.gpusim.graph.LaunchGraph.replay`.
    """
    lens = canonical_tile_lengths(tile, max_seq_len)
    effective = mha or forced_mha_path()
    if cache is None or isinstance(ctx, NullContext):
        return estimate_model(
            ctx, config, opt, lens, max_seq_len, mha=effective, shard=shard
        )
    key = (
        "tile",
        ctx.device,
        ctx.cluster,
        config,
        opt,
        effective,
        shard,
        int(tile),
        int(max_seq_len),
    )
    return cache.replay_or_capture(
        key,
        ctx,
        lambda cap_ctx: estimate_model(
            cap_ctx, config, opt, lens, max_seq_len, mha=effective,
            shard=shard,
        ),
    )
