"""End-to-end BERT encoder model with selectable optimisation preset.

:class:`BertEncoderModel` stacks :data:`BertConfig.num_layers` encoder
layers.  With ``remove_padding`` enabled, the zero-padding algorithm runs
*once* per forward pass (prefix-sum kernel + pack), activations stay
packed across all layers, and the output is unpacked at the very end —
matching the pipeline of Figure 2 (c).

Two steady-state accelerators bolt on per instance:

* ``arena`` — a :class:`~repro.core.memory_planner.LiveArena` backing
  every large activation (packed hidden states, attention scratch, FFN
  temporaries).  After the first forward per shape, the model performs
  zero large ndarray allocations; the returned tensor is a **view into
  the arena, valid until the next forward** on the same model.
* ``graph_cache`` — a :class:`~repro.gpusim.graph.GraphCache`.  The
  first forward per ``(device, config, preset, forced path, mask)`` key
  captures the full kernel-launch stream; same-key forwards replay it
  into the caller's context (bit-identical records, hooks still fire)
  instead of re-pricing every kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attention.dispatch import forced_mha_path
from repro.core.config import BertConfig, OptimizationConfig
from repro.core.encoder import encoder_layer_packed, encoder_layer_padded
from repro.core.engine import is_vectorized
from repro.core.estimator import estimate_model_tiled
from repro.core.memory_planner import (
    ArenaAllocator,
    LiveArena,
    plan_live_forward,
    plan_live_megabatch,
)
from repro.core.padding import (
    CrossRequestPacking,
    pack,
    packing_from_lengths,
    packing_from_mask,
    unpack,
)
from repro.core.parallel import current_executor, partition_weighted
from repro.core.sharding import ShardSpec
from repro.core.weights import ModelWeights, init_model_weights
from repro.gpusim.graph import GraphCache, capture
from repro.gpusim.stream import (
    ExecutionContext,
    NullContext,
    resolve_context,
)


@dataclass(frozen=True)
class ForwardResult:
    """Output of one forward pass plus cost-model statistics."""

    hidden: np.ndarray
    time_us: float
    kernel_count: int
    flops: float
    dram_bytes: float


class BertEncoderModel:
    """A BERT encoder stack on the simulated-GPU substrate.

    Parameters
    ----------
    config:
        Architecture (heads, head size, layers, FFN scale).
    opt:
        Which ByteTransformer optimisations are active; pick one of the
        :data:`repro.core.config.STEPWISE_PRESETS` to replicate a Figure
        13 variant.
    weights:
        Shared :class:`ModelWeights`; initialised from ``seed`` when
        omitted.  Pass the same weights to different presets to assert
        numerical equivalence.
    arena:
        Optional :class:`LiveArena`; engages arena-backed execution on
        the vectorized packed float64 pipeline (the output becomes a
        view valid until the next forward).
    graph_cache:
        Optional :class:`GraphCache` for launch-stream capture/replay.
    """

    def __init__(
        self,
        config: BertConfig | None = None,
        opt: OptimizationConfig | None = None,
        weights: ModelWeights | None = None,
        seed: int = 0,
        arena: LiveArena | None = None,
        graph_cache: GraphCache | None = None,
    ) -> None:
        self.config = config or BertConfig()
        self.opt = opt or OptimizationConfig()
        self.arena = arena
        self.graph_cache = graph_cache
        if weights is not None and weights.num_layers != self.config.num_layers:
            raise ValueError(
                f"weights have {weights.num_layers} layers, config wants "
                f"{self.config.num_layers}"
            )
        self.weights = weights or init_model_weights(self.config, seed)
        if self.weights.hidden_size != self.config.hidden_size:
            raise ValueError(
                f"weights hidden size {self.weights.hidden_size} != config "
                f"hidden size {self.config.hidden_size}"
            )
        # warm the per-layer weight/bias splits and per-head views once so
        # the forward path never re-slices parameters
        self.weights.precompute(self.config.num_heads)
        #: tiles whose canonical arena plan has already been reserved
        self._reserved_tiles: set[int] = set()
        #: mask-path shape signatures already pre-sized into the arena
        self._reserved_shapes: set[tuple] = set()

    def forward(
        self,
        x: np.ndarray,
        mask: np.ndarray,
        *,
        ctx: ExecutionContext | None = None,
    ) -> np.ndarray:
        """Run the stack on a padded ``[B, S, H]`` input with its mask.

        Always returns the padded ``[B, S, H]`` output (zeros on padding
        when the packed pipeline ran).  With an :attr:`arena`, the
        returned tensor is an arena view valid until the next forward;
        with a :attr:`graph_cache`, repeat shapes replay the captured
        launch stream instead of re-pricing every kernel.
        """
        if x.ndim != 3:
            raise ValueError(f"expected [B, S, H] input, got {x.shape}")
        batch, seq_len, hidden = x.shape
        if hidden != self.config.hidden_size:
            raise ValueError(
                f"hidden {hidden} != config hidden {self.config.hidden_size}"
            )
        if mask.shape != (batch, seq_len):
            raise ValueError(
                f"mask shape {mask.shape} != ({batch}, {seq_len})"
            )
        context = resolve_context(ctx)
        flat = x.reshape(batch * seq_len, hidden)

        if self.graph_cache is None or isinstance(context, NullContext):
            out = self._forward_numeric(flat, mask, batch, seq_len, context)
            return out.reshape(batch, seq_len, hidden)

        # launch-graph path: the stream depends only on (device, model
        # shape, preset, dispatch override, mask) — never on x's values —
        # so same-key forwards replay the captured stream into the
        # caller's context (hooks fire per replayed launch) while the
        # numerics run launch-free under a NullContext
        key = (
            context.device,
            self.config,
            self.opt,
            forced_mha_path(),
            mask.shape,
            mask.tobytes(),
        )
        graph = self.graph_cache.get(key)
        if graph is None:
            graph, out = capture(
                context.device,
                lambda cap_ctx: self._forward_numeric(
                    flat, mask, batch, seq_len, cap_ctx
                ),
            )
            self.graph_cache.put(key, graph)
        else:
            out = self._forward_numeric(
                flat, mask, batch, seq_len, NullContext()
            )
        graph.replay(context)
        return out.reshape(batch, seq_len, hidden)

    def forward_packed(
        self,
        x_tile: np.ndarray,
        mega: CrossRequestPacking,
        *,
        ctx: ExecutionContext | None = None,
        shard: "ShardSpec | None" = None,
    ) -> np.ndarray:
        """Run the stack over a pre-packed cross-request megabatch tile.

        ``x_tile`` is a ``[tile, H]`` buffer whose first
        ``mega.total_tokens`` rows are the merged requests' valid tokens
        (see :func:`repro.core.padding.pack_segments`); the quantization
        tail is ignored on input and zeroed on output.  Returns the
        ``[tile, H]`` packed output — scatter it back per request with
        :func:`repro.core.padding.scatter_segments`.

        The two planes split the way continuous serving needs them to:

        * **numerics** run launch-free over the *real* segments only
          (``x_tile[:total]`` under the merged :class:`PackedSeqs`, so
          attention sees per-request boundaries and results are bitwise
          what each request would get alone);
        * **cost** is the tile's canonical launch chain
          (:func:`~repro.core.estimator.estimate_model_tiled`), keyed by
          ``(device, config, preset, path, tile)`` in the
          :attr:`graph_cache` — identical megabatch tiles replay one
          captured graph regardless of their exact composition, which is
          what makes the hot serving path graph-replayable.

        With an :attr:`arena`, the backing is pre-reserved from the
        tile's canonical plan (:func:`plan_live_megabatch`) so
        differently-composed megabatches of one tile never regrow it;
        the returned tensor is an arena view valid until the next
        forward on this model.

        ``shard`` prices one tensor-parallel rank's slice of the chain
        (sharded GEMMs + the two all-reduces per layer; the context must
        carry a cluster).  The numeric plane is *not* resharded: a real
        all-reduce sums per-rank partials in a different float order
        than the single-device GEMM, which would break the bitwise
        oracle, so the exact numerics run once while the cost plane
        models each rank's stream — see DESIGN.md §14.
        """
        if not self.opt.remove_padding:
            raise ValueError(
                "forward_packed needs the packed pipeline (remove_padding)"
            )
        hidden = self.config.hidden_size
        if x_tile.ndim != 2 or x_tile.shape != (mega.tile, hidden):
            raise ValueError(
                f"expected [{mega.tile}, {hidden}] tile buffer, got "
                f"{x_tile.shape}"
            )
        context = resolve_context(ctx)
        # cost plane: price (or replay) the canonical tile launch chain.
        # A NullContext caller owns pricing elsewhere (the serving
        # runtime prices the tile on its fault-hooked context), so the
        # chain is skipped entirely rather than estimated into the void.
        if not isinstance(context, NullContext):
            estimate_model_tiled(
                context,
                self.config,
                self.opt,
                mega.tile,
                mega.packing.max_seq_len,
                shard=shard,
                cache=self.graph_cache,
            )
        # numeric plane: real segments only, launch-free
        return self._forward_numeric_packed(x_tile, mega)

    def prereserve_tiles(
        self,
        tiles: tuple[int, ...] | list[int],
        max_seq_len: int,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        """Pre-size the arena for every tile's canonical megabatch plan.

        Continuous serving calls this once up front with the batcher's
        tile set, so even the *first* megabatch of each tile runs from
        converged backing — no warm-up ``np.empty`` overflow allocs.
        A no-op without an arena or for already-reserved tiles.
        """
        if self.arena is None or not self.opt.remove_padding:
            return
        for tile in tiles:
            if tile in self._reserved_tiles:
                continue
            plan = plan_live_megabatch(
                self.config,
                self.opt,
                tile,
                max_seq_len,
                mha=forced_mha_path(),
                dtype=dtype,
            )
            self.arena.reserve(
                ArenaAllocator(self.arena.alignment).replay(plan)
            )
            self._reserved_tiles.add(tile)

    def _segment_chunks(
        self, mega: CrossRequestPacking
    ) -> list[tuple[int, int]] | None:
        """Deterministic contiguous segment chunks for executor fan-out.

        ``None`` when fan-out cannot pay: a serial executor, a single
        segment, or fewer than two resulting chunks.  Chunks are
        balanced by segment token count (the row count every projection
        GEMM scales with) via
        :func:`~repro.core.parallel.partition_weighted`, so the same
        megabatch always splits identically — the deterministic
        segment→worker assignment behind the bitwise contract.
        """
        executor = current_executor()
        if executor.workers <= 1 or mega.num_segments <= 1:
            return None
        chunks = partition_weighted(
            mega.packing.seq_lens, executor.workers
        )
        return chunks if len(chunks) > 1 else None

    def _run_packed_chunks(
        self,
        x_valid: np.ndarray,
        mega: CrossRequestPacking,
        chunks: list[tuple[int, int]],
        out: np.ndarray,
    ) -> np.ndarray:
        """Fan the megabatch's segment chunks out over the executor.

        Each worker runs the whole layer stack over its contiguous row
        range — issuing **one** tile GEMM per projection covering all of
        its segments — and writes its rows of ``out``.  Workers return
        ``None``: under the process executor the only bytes that travel
        are the shared-memory writes into ``out``.

        Bitwise-equal to the serial megabatch by construction: BLAS
        row-splits ``m`` (chunking rows never changes GEMM bits), every
        non-GEMM op is row- or segment-local, and attention buckets are
        composition-invariant (the megabatch-vs-per-request equivalence
        the packing tests pin down).
        """
        context = NullContext()
        offsets = mega.packing.seq_offsets
        max_seq_len = mega.packing.max_seq_len
        sub_packs = [
            packing_from_lengths(
                mega.packing.seq_lens[s0:s1], max_seq_len, cache=None
            )
            for s0, s1 in chunks
        ]

        def run_chunk(i: int) -> None:
            s0, s1 = chunks[i]
            r0, r1 = int(offsets[s0]), int(offsets[s1])
            h = x_valid[r0:r1]
            for layer in self.weights.layers:
                h = encoder_layer_packed(
                    h,
                    layer,
                    self.config,
                    self.opt,
                    sub_packs[i],
                    ctx=context,
                )
            out[r0:r1] = h

        current_executor().map(run_chunk, range(len(chunks)))
        return out

    def _forward_numeric_packed(
        self, x_tile: np.ndarray, mega: CrossRequestPacking
    ) -> np.ndarray:
        """Megabatch numerics under a NullContext; returns [tile, H]."""
        context = NullContext()
        hidden = self.config.hidden_size
        total = mega.total_tokens
        packing = mega.packing
        x_valid = x_tile[:total]
        arena = self.arena
        chunks = self._segment_chunks(mega)
        executor = current_executor()
        if (
            arena is not None
            and is_vectorized()
            and np.issubdtype(x_tile.dtype, np.floating)
        ):
            dt = x_tile.dtype
            self.prereserve_tiles((mega.tile,), packing.max_seq_len, dt)
            arena.begin()
            if chunks is not None:
                out = arena.take("output", (mega.tile, hidden), dt)
                if not executor.needs_shared_memory or (
                    arena.shared and arena.owns(out)
                ):
                    self._run_packed_chunks(x_valid, mega, chunks, out)
                    out[total:] = 0.0
                    return out
                # the arena is not shared-memory backed, or the output
                # landed in a private overflow buffer: process workers'
                # writes would die with the fork, so run serially instead
                arena.release("output")
            cur = arena.take("h0", (total, hidden), dt)
            nxt = arena.take("h1", (total, hidden), dt)
            np.copyto(cur, x_valid)
            for layer in self.weights.layers:
                encoder_layer_packed(
                    cur,
                    layer,
                    self.config,
                    self.opt,
                    packing,
                    ctx=context,
                    scratch=arena,
                    out=nxt,
                )
                cur, nxt = nxt, cur
            out = arena.take("output", (mega.tile, hidden), dt)
            np.copyto(out[:total], cur)
            out[total:] = 0.0
            return out
        if chunks is not None and not executor.needs_shared_memory:
            out = np.empty((mega.tile, hidden), dtype=x_tile.dtype)
            self._run_packed_chunks(x_valid, mega, chunks, out)
            out[total:] = 0.0
            return out
        hidden_state = x_valid
        for layer in self.weights.layers:
            hidden_state = encoder_layer_packed(
                hidden_state,
                layer,
                self.config,
                self.opt,
                packing,
                ctx=context,
            )
        out = np.zeros((mega.tile, hidden), dtype=x_tile.dtype)
        out[:total] = hidden_state
        return out

    def _forward_numeric(
        self,
        flat: np.ndarray,
        mask: np.ndarray,
        batch: int,
        seq_len: int,
        context: ExecutionContext,
    ) -> np.ndarray:
        """One forward on the flat ``[B*S, H]`` tensor; returns flat out."""
        hidden = self.config.hidden_size
        if self.opt.remove_padding:
            packing = packing_from_mask(mask, ctx=context)
            arena = self.arena
            if (
                arena is not None
                and is_vectorized()
                and np.issubdtype(flat.dtype, np.floating)
            ):
                tokens = packing.total_tokens
                dt = flat.dtype
                # pre-size the backing from the shape's symbolic plan so
                # even the first forward per shape is served entirely
                # from the backing — zero warm-up np.empty overflows
                shape_key = (
                    packing.seq_lens.tobytes(),
                    seq_len,
                    dt.str,
                    forced_mha_path(),
                )
                if shape_key not in self._reserved_shapes:
                    plan = plan_live_forward(
                        self.config,
                        self.opt,
                        packing.seq_lens,
                        seq_len,
                        mha=forced_mha_path(),
                        dtype=dt,
                    )
                    arena.reserve(
                        ArenaAllocator(arena.alignment).replay(plan)
                    )
                    self._reserved_shapes.add(shape_key)
                arena.begin()
                cur = arena.take("h0", (tokens, hidden), dt)
                nxt = arena.take("h1", (tokens, hidden), dt)
                pack(flat, packing, ctx=context, out=cur)
                for layer in self.weights.layers:
                    encoder_layer_packed(
                        cur,
                        layer,
                        self.config,
                        self.opt,
                        packing,
                        ctx=context,
                        scratch=arena,
                        out=nxt,
                    )
                    cur, nxt = nxt, cur
                out = arena.take("output", (batch * seq_len, hidden), dt)
                unpack(cur, packing, ctx=context, out=out)
                return out
            hidden_state = pack(flat, packing, ctx=context)
            for layer in self.weights.layers:
                hidden_state = encoder_layer_packed(
                    hidden_state,
                    layer,
                    self.config,
                    self.opt,
                    packing,
                    ctx=context,
                )
            return unpack(hidden_state, packing, ctx=context)
        out = flat
        for layer in self.weights.layers:
            out = encoder_layer_padded(
                out, layer, self.config, self.opt, mask, ctx=context
            )
        # zero the padding so padded and packed pipelines agree exactly
        return out * mask.reshape(batch * seq_len, 1)

    def forward_with_stats(
        self,
        x: np.ndarray,
        mask: np.ndarray,
        *,
        ctx: ExecutionContext | None = None,
    ) -> ForwardResult:
        """Forward pass returning output plus the run's cost statistics."""
        context = ctx if ctx is not None else ExecutionContext()
        before_time = context.elapsed_us()
        before_kernels = context.kernel_count()
        before_flops = context.total_flops()
        before_bytes = context.total_dram_bytes()
        hidden = self.forward(x, mask, ctx=context)
        return ForwardResult(
            hidden=hidden,
            time_us=context.elapsed_us() - before_time,
            kernel_count=context.kernel_count() - before_kernels,
            flops=context.total_flops() - before_flops,
            dram_bytes=context.total_dram_bytes() - before_bytes,
        )
