"""Tensor-parallel shard descriptors.

A :class:`ShardSpec` names one rank's slice of a Megatron-style
tensor-parallel group: attention heads and FFN columns are split across
``tp`` ranks, with the row-parallel output projections summed by an
all-reduce at the two sync points per encoder layer (after the attention
output GEMM and after the FFN down GEMM).

The spec lives in the *cost plane* only.  The numeric plane keeps
computing the full, unsharded encoder once — a real all-reduce sums
per-rank partials in a different floating-point order than the
single-device GEMM, which would break the repo's bitwise-oracle
contract.  The simulator instead prices each rank's kernel chain (plus
the collectives) while the numerics stay exact; see DESIGN.md §14.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ShardSpec:
    """One rank's position in a tensor-parallel group.

    ``tp == 1`` is the unsharded identity spec: every consumer must
    produce the exact single-device stream for it (no collectives, no
    resharded GEMMs), so single- and multi-device paths share one code
    path without a behavioural fork.
    """

    tp: int = 1
    rank: int = 0

    def __post_init__(self) -> None:
        if self.tp < 1:
            raise ValueError(f"tp must be >= 1, got {self.tp}")
        if not (0 <= self.rank < self.tp):
            raise ValueError(
                f"rank must be in [0, {self.tp}), got {self.rank}"
            )

    @property
    def is_sharded(self) -> bool:
        return self.tp > 1

    def shard_dim(self, dim: int) -> int:
        """This rank's share of ``dim`` units split across the group.

        Remainder units go to the lowest ranks, so rank 0 always holds
        the largest share — which makes rank 0's chain the critical
        path and the one the serving tier prices.
        """
        base, rem = divmod(dim, self.tp)
        return base + (1 if self.rank < rem else 0)


#: the unsharded identity spec
UNSHARDED = ShardSpec()
