"""Model and optimisation configuration.

:class:`BertConfig` captures the architecture shape (defaults are the
standard BERT-base configuration used throughout the paper: 12 heads,
head size 64, 12 layers).  :class:`OptimizationConfig` captures which of
the paper's step-wise optimisations are enabled — the presets correspond
one-to-one to the variants of Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BertConfig:
    """Architecture of a BERT-style encoder stack."""

    num_heads: int = 12
    head_size: int = 64
    num_layers: int = 12
    #: FFN expansion factor (the ``scale`` of Figure 10)
    ffn_scale: int = 4
    layernorm_eps: float = 1e-12

    def __post_init__(self) -> None:
        for name in ("num_heads", "head_size", "num_layers", "ffn_scale"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def hidden_size(self) -> int:
        return self.num_heads * self.head_size

    @property
    def ffn_size(self) -> int:
        return self.hidden_size * self.ffn_scale

    def single_layer(self) -> "BertConfig":
        """The same architecture with one encoder layer (for Figs 3/13)."""
        return BertConfig(
            num_heads=self.num_heads,
            head_size=self.head_size,
            num_layers=1,
            ffn_scale=self.ffn_scale,
            layernorm_eps=self.layernorm_eps,
        )


#: the standard configuration used in the paper's evaluation
STANDARD_BERT = BertConfig()


@dataclass(frozen=True)
class OptimizationConfig:
    """Which ByteTransformer optimisations are active.

    Flags accumulate exactly as the step-wise study of Figure 13 does:
    each figure variant enables all previous flags plus one more.
    """

    #: fuse add-bias + residual + layernorm into one kernel (§III-C.1)
    fuse_layernorm: bool = False
    #: fuse add-bias + GELU into the FFN GEMM epilogue (§III-C.2)
    fuse_gelu: bool = False
    #: the zero-padding algorithm: pack all non-MHA ops (§III-D)
    remove_padding: bool = False
    #: the padding-free fused MHA (§III-E); implies remove_padding paths
    fused_mha: bool = False
    #: sequence-length cutover between the short fused MHA kernel and the
    #: grouped-GEMM long kernel (the paper uses 384/512 as the boundary)
    fused_mha_short_max_seq: int = 384
    #: grouped-GEMM scheduler: warp-prefetch visitor unless disabled
    warp_prefetch_scheduler: bool = True
    #: host GELU formula: ``"exact"`` (erf, bitwise reference) or
    #: ``"tanh"`` (the fast approximation, within
    #: :data:`repro.kernels.activation.FAST_GELU_ATOL` of exact).  A
    #: numeric-plane knob only: launch streams and modelled µs are
    #: identical for both, so it is *not* part of the Figure 13 ladder.
    gelu_variant: str = "exact"

    def __post_init__(self) -> None:
        if self.fused_mha and not self.remove_padding:
            raise ValueError(
                "fused_mha requires remove_padding: the fused kernels index "
                "packed tensors through the prefix-sum offsets"
            )
        if self.fused_mha_short_max_seq <= 0:
            raise ValueError("fused_mha_short_max_seq must be positive")
        if self.gelu_variant not in ("exact", "tanh"):
            raise ValueError(
                f"unknown gelu_variant {self.gelu_variant!r}; "
                "pick 'exact' or 'tanh'"
            )

    @property
    def label(self) -> str:
        if self.gelu_variant == "tanh":
            return "fast-gelu"
        if self.fused_mha:
            return "fused MHA"
        if self.remove_padding:
            return "rm padding"
        if self.fuse_gelu:
            return "add bias & GELU fusion"
        if self.fuse_layernorm:
            return "layernorm fusion"
        return "baseline"


#: Figure 13 presets, in the paper's cumulative order.
BASELINE = OptimizationConfig()
LAYERNORM_FUSION = OptimizationConfig(fuse_layernorm=True)
GELU_FUSION = OptimizationConfig(fuse_layernorm=True, fuse_gelu=True)
RM_PADDING = OptimizationConfig(
    fuse_layernorm=True, fuse_gelu=True, remove_padding=True
)
FUSED_MHA = OptimizationConfig(
    fuse_layernorm=True, fuse_gelu=True, remove_padding=True, fused_mha=True
)

#: the step-wise ladder of Figure 13, in presentation order
STEPWISE_PRESETS: tuple[OptimizationConfig, ...] = (
    BASELINE,
    LAYERNORM_FUSION,
    GELU_FUSION,
    RM_PADDING,
    FUSED_MHA,
)

#: opt-in host-speed preset: every Figure 13 optimisation plus the tanh
#: GELU formula.  Deliberately *outside* STEPWISE_PRESETS — it changes
#: served bits (within the documented atol), which the paper's ladder
#: never does, so it must be chosen explicitly.
FAST_GELU = OptimizationConfig(
    fuse_layernorm=True,
    fuse_gelu=True,
    remove_padding=True,
    fused_mha=True,
    gelu_variant="tanh",
)
