"""Activation-memory accounting for the encoder pipelines.

The paper's second motivation for zero padding is memory: "these padded
zeros also introduce significant memory overhead that can hinder a large
Transformer model from being efficiently deployed".  This module makes
that claim measurable:

* :class:`ActivationTrace` records the alloc/free sequence of every
  intermediate tensor a pipeline materialises (mirroring the launch
  sequences of :mod:`repro.core.estimator`);
* :func:`peak_live_bytes` gives the lower bound any allocator must pay;
* :class:`ArenaAllocator` is a best-fit offset allocator with free-list
  reuse — the strategy TurboTransformer's run-time memory scheduler uses
  — whose arena size upper-bounds a real deployment's activation pool.

The interesting output is the padded-vs-packed comparison: the unfused
padded pipelines must hold the quadratic ``B x H x S x S`` score tensor,
the packed fused pipelines either never materialise it (short kernel) or
hold only the ``sum(len_i^2)`` valid region (grouped kernel).

Live execution
--------------
:class:`LiveArena` promotes the offline accounting into an actual
allocator: one backing byte buffer, best-fit offsets from
:class:`ArenaAllocator`, and :meth:`LiveArena.take` handing out ndarray
*views* into it.  The vectorized engine requests every large
intermediate (packed QKV, attention scores, GELU/LN temporaries) from
the arena, so a steady-state forward — once the backing buffer has
converged for the shape — performs **zero** large ndarray allocations.
:func:`plan_live_forward` is the matching offline prediction: it mirrors
the engine's take/release sequence symbolically (in the engine's own
float64 bytes — unlike :func:`trace_encoder_layer`, which models an fp16
deployment), so tests can assert the live peak never exceeds the plan.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.core.config import BertConfig, OptimizationConfig
from repro.gpusim.memory import BYTES_PER_ELEMENT, BYTES_PER_FP32


@dataclass(frozen=True)
class MemEvent:
    """One allocation (positive bytes) or free (negative bytes)."""

    tensor: str
    bytes: int

    def __post_init__(self) -> None:
        if self.bytes == 0:
            raise ValueError(f"{self.tensor}: zero-byte event")


@dataclass
class ActivationTrace:
    """Ordered alloc/free events of one forward pass."""

    events: list[MemEvent] = field(default_factory=list)
    _live: dict[str, int] = field(default_factory=dict)

    def alloc(self, tensor: str, nbytes: float) -> None:
        nbytes = int(nbytes)
        if tensor in self._live:
            raise ValueError(f"tensor {tensor!r} already live")
        if nbytes <= 0:
            raise ValueError(f"{tensor}: allocation must be positive")
        self._live[tensor] = nbytes
        self.events.append(MemEvent(tensor, nbytes))

    def free(self, tensor: str) -> None:
        if tensor not in self._live:
            raise ValueError(f"tensor {tensor!r} is not live")
        nbytes = self._live.pop(tensor)
        self.events.append(MemEvent(tensor, -nbytes))

    def free_all(self) -> None:
        for tensor in list(self._live):
            self.free(tensor)

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())

    def __iter__(self) -> Iterator[MemEvent]:
        return iter(self.events)


def peak_live_bytes(trace: ActivationTrace) -> int:
    """Maximum simultaneously-live activation bytes — the floor for any
    allocator."""
    peak = 0
    live = 0
    for event in trace:
        live += event.bytes
        peak = max(peak, live)
    if live != 0:
        raise ValueError(
            f"trace leaks {live} bytes (unbalanced alloc/free)"
        )
    return peak


@dataclass(frozen=True)
class Placement:
    tensor: str
    offset: int
    bytes: int

    @property
    def end(self) -> int:
        return self.offset + self.bytes


class ArenaAllocator:
    """Best-fit offset assignment with free-chunk coalescing.

    Replays an :class:`ActivationTrace` and assigns every allocation a
    byte offset in a single arena, reusing freed space — the model-aware
    allocation strategy of TurboTransformer's memory scheduler.  The
    resulting :attr:`arena_bytes` is what a static activation pool would
    need.
    """

    def __init__(self, alignment: int = 256) -> None:
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self.alignment = alignment
        self.arena_bytes = 0
        self._placements: dict[str, Placement] = {}
        #: sorted list of (offset, bytes) free chunks inside the arena
        self._free: list[tuple[int, int]] = []
        self.history: list[Placement] = []

    def _align(self, value: int) -> int:
        a = self.alignment
        return ((value + a - 1) // a) * a

    def allocate(self, tensor: str, nbytes: int) -> Placement:
        if tensor in self._placements:
            raise ValueError(f"tensor {tensor!r} already placed")
        need = self._align(nbytes)
        # best fit: smallest free chunk that holds the request
        best = None
        for i, (off, size) in enumerate(self._free):
            if size >= need and (best is None or size < self._free[best][1]):
                best = i
        if best is not None:
            off, size = self._free.pop(best)
            if size > need:
                self._free.append((off + need, size - need))
                self._free.sort()
            placement = Placement(tensor, off, need)
        else:
            placement = Placement(tensor, self.arena_bytes, need)
            self.arena_bytes += need
        self._placements[tensor] = placement
        self.history.append(placement)
        return placement

    def release(self, tensor: str) -> None:
        placement = self._placements.pop(tensor, None)
        if placement is None:
            raise ValueError(f"tensor {tensor!r} is not placed")
        self._free.append((placement.offset, placement.bytes))
        self._free.sort()
        # coalesce adjacent free chunks
        merged: list[tuple[int, int]] = []
        for off, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((off, size))
        self._free = merged

    def replay(self, trace: ActivationTrace) -> int:
        """Place a whole trace; returns the final arena size in bytes."""
        sizes: dict[str, int] = {}
        for event in trace:
            if event.bytes > 0:
                sizes[event.tensor] = event.bytes
                self.allocate(event.tensor, event.bytes)
            else:
                self.release(event.tensor)
        return self.arena_bytes

    def live_placements(self) -> list[Placement]:
        return sorted(self._placements.values(), key=lambda p: p.offset)


#: retired shared-memory blocks still pinned by stale ndarray views.
#: Module-level so they stay alive until actually closeable: letting a
#: pinned block be garbage-collected would re-raise the BufferError
#: inside SharedMemory.__del__, where it cannot be caught.
_PINNED_SHM: list[shared_memory.SharedMemory] = []


class LiveArena:
    """A live best-fit arena handing out ndarray views of one byte buffer.

    Usage contract (enforced by the engine, asserted by tests):

    * :meth:`begin` starts a forward pass.  All views from the previous
      forward become invalid — including a model's returned output view,
      which is documented as valid only until the owning model's next
      arena forward.  Because nothing is live at that point, ``begin`` is
      the only place the backing buffer may grow.
    * :meth:`take` returns a view at a best-fit offset.  During warm-up a
      request may land beyond the current backing buffer; the arena then
      falls back to a plain ``np.empty`` (counted in
      :attr:`overflow_allocs`) and grows the backing at the next
      ``begin``.  For a fixed shape signature the placement sequence is
      deterministic, so by the first post-growth forward every request is
      served from the backing buffer — the steady state.
    * ``take``/``release`` are **not** thread-safe: parallel bucket
      execution pre-acquires all buffers before fanning out.

    Shared-memory backing
    ---------------------
    With ``shared=True`` the backing buffer lives in a
    :class:`multiprocessing.shared_memory.SharedMemory` block instead of
    a private ``np.empty``.  Views handed out by :meth:`take` are then
    MAP_SHARED: a forked worker process that writes through an inherited
    view mutates the parent's bytes directly — the zero-copy contract
    the :class:`~repro.core.parallel.ProcessExecutor` megabatch path
    relies on.  Warm-up *overflow* buffers remain private ``np.empty``
    either way, which is why that path checks :meth:`owns` before
    fanning out across processes.  :meth:`close` releases the block;
    the destructor does too, so tests may simply drop the arena.
    """

    def __init__(self, alignment: int = 256, shared: bool = False) -> None:
        self.alignment = alignment
        #: whether the backing buffer is multiprocessing shared memory
        self.shared = bool(shared)
        self._shm: shared_memory.SharedMemory | None = None
        self._buf = np.empty(0, dtype=np.uint8)
        self._alloc = ArenaAllocator(alignment)
        #: high-water mark of aligned arena bytes any forward has needed
        self._wanted_bytes = 0
        #: requests served by ``np.empty`` because the backing was too small
        self.overflow_allocs = 0
        self.forwards = 0
        #: raw (unaligned) live bytes right now / peak within this forward
        self._live_raw = 0
        self.peak_live_bytes = 0
        self._raw_sizes: dict[str, int] = {}

    @property
    def footprint_bytes(self) -> int:
        """Current backing-buffer size."""
        return self._buf.nbytes

    @property
    def in_steady_state(self) -> bool:
        """Whether the last forward was served entirely from the backing."""
        return self.forwards > 0 and self._wanted_bytes <= self._buf.nbytes

    def owns(self, arr: np.ndarray) -> bool:
        """Whether ``arr`` is a view into the backing buffer.

        ``False`` for warm-up overflow buffers (private ``np.empty``),
        which is exactly the case process fan-out must detect: a forked
        worker's writes into a private buffer would die with the fork.
        """
        return self._buf.nbytes > 0 and np.may_share_memory(arr, self._buf)

    def _retire(self, shm: shared_memory.SharedMemory) -> None:
        """Unlink a block now; unmap it once no stale view pins it.

        ``unlink`` always succeeds (the name goes away, the mapping
        stays while referenced).  ``close`` raises :class:`BufferError`
        while a stale ndarray view from a previous forward still exports
        the mapping — documented as *invalid* but possibly still
        referenced — so such blocks wait on the module-level
        :data:`_PINNED_SHM` list (not an instance list: a pinned block
        must outlive the arena, or its ``__del__`` re-raises the
        :class:`BufferError` unraisably during garbage collection) and
        are re-tried at every later retire.
        """
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        _PINNED_SHM.append(shm)
        still_pinned = []
        for block in _PINNED_SHM:
            try:
                block.close()
            except BufferError:
                still_pinned.append(block)
        _PINNED_SHM[:] = still_pinned

    def close(self) -> None:
        """Release the shared-memory backing (no-op for private arenas).

        All outstanding views die with the mapping; callers follow the
        same rule as :meth:`begin` — nothing borrowed may outlive it.
        """
        self._buf = np.empty(0, dtype=np.uint8)
        if self._shm is not None:
            shm, self._shm = self._shm, None
            self._retire(shm)

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 — interpreter teardown
            pass

    def _grow_backing(self, nbytes: int) -> None:
        if not self.shared:
            self._buf = np.empty(nbytes, dtype=np.uint8)
            return
        old = self._shm
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        # the OS may round the block up to a page; expose what we asked for
        self._buf = np.frombuffer(self._shm.buf, dtype=np.uint8)[:nbytes]
        if old is not None:
            self._retire(old)

    def begin(self) -> None:
        """Start a forward pass; previous views are dead, backing may grow."""
        if self._wanted_bytes > self._buf.nbytes:
            self._grow_backing(self._wanted_bytes)
        self._alloc = ArenaAllocator(self.alignment)
        self._live_raw = 0
        self.peak_live_bytes = 0
        self._raw_sizes = {}
        self.forwards += 1

    def take(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A ``shape``/``dtype`` view into the arena, registered as ``name``."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        placement = self._alloc.allocate(name, max(1, nbytes))
        self._wanted_bytes = max(self._wanted_bytes, self._alloc.arena_bytes)
        self._raw_sizes[name] = nbytes
        self._live_raw += nbytes
        self.peak_live_bytes = max(self.peak_live_bytes, self._live_raw)
        end = placement.offset + placement.bytes
        if end <= self._buf.nbytes:
            view = self._buf[placement.offset : placement.offset + nbytes]
            return view.view(dt).reshape(shape)
        self.overflow_allocs += 1
        return np.empty(shape, dtype=dt)

    def release(self, name: str) -> None:
        """Return ``name``'s chunk to the free list (its view is dead)."""
        self._alloc.release(name)
        self._live_raw -= self._raw_sizes.pop(name)

    def reserve(self, nbytes: int) -> None:
        """Pre-commit backing capacity: the next :meth:`begin` grows the
        buffer to at least ``nbytes``.

        Continuous serving sizes the arena from the *token-budget tile*
        (see :func:`plan_live_megabatch`) rather than from the first
        megabatch that happens to arrive, so differently-composed
        megabatches of the same tile never regrow the backing — the
        warm-up ``np.empty`` overflows are paid at most once per tile
        instead of once per composition.
        """
        if nbytes < 0:
            raise ValueError(f"cannot reserve {nbytes} bytes")
        self._wanted_bytes = max(self._wanted_bytes, int(nbytes))


def trace_encoder_layer(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
    trace: ActivationTrace | None = None,
    layer: int = 0,
) -> ActivationTrace:
    """Activation alloc/free sequence of one encoder layer.

    Mirrors the pipelines of :mod:`repro.core.encoder`: the padded
    variants materialise padded intermediates including the quadratic
    score tensor; the packed variants keep everything at
    ``T = sum(len_i)`` rows, and with ``fused_mha`` the score tensor
    either never exists (short kernel) or exists packed plus its
    reduction statistics (grouped kernel).
    """
    t = trace if trace is not None else ActivationTrace()
    batch = len(seq_lens)
    hidden = config.hidden_size
    heads = config.num_heads
    tokens = int(np.sum(seq_lens))
    padded_rows = batch * max_seq_len
    rows = tokens if opt.remove_padding else padded_rows
    p = f"L{layer}."
    elem = BYTES_PER_ELEMENT

    # x (the layer input / residual) is assumed live on entry
    t.alloc(p + "qkv", rows * 3 * hidden * elem)
    if opt.fused_mha:
        max_len = int(np.max(seq_lens))
        short_ok = max_len <= opt.fused_mha_short_max_seq
        if short_ok:
            # Algorithm III.1: logits live in shared memory only
            t.alloc(p + "attn", tokens * hidden * elem)
        else:
            scores = int(np.sum(seq_lens.astype(np.int64) ** 2)) * heads
            stats_rows = tokens * heads
            t.alloc(p + "scores", scores * elem)
            t.alloc(p + "stats", 2 * stats_rows * BYTES_PER_FP32)
            t.alloc(p + "attn", tokens * hidden * elem)
            t.free(p + "scores")
            t.free(p + "stats")
    else:
        # batched-GEMM MHA: padded Q/K/V copies + padded score tensor
        t.alloc(p + "qkv_split", padded_rows * 3 * hidden * elem)
        t.alloc(p + "scores", batch * heads * max_seq_len * max_seq_len * elem)
        t.alloc(p + "attn", rows * hidden * elem)
        t.free(p + "scores")
        t.free(p + "qkv_split")
    t.free(p + "qkv")

    t.alloc(p + "proj", rows * hidden * elem)
    t.free(p + "attn")
    t.alloc(p + "ln0", rows * hidden * elem)
    if not opt.fuse_layernorm:
        # the unfused pipeline round-trips a temporary through memory
        t.alloc(p + "ln0_tmp", rows * hidden * elem)
        t.free(p + "ln0_tmp")
    t.free(p + "proj")

    t.alloc(p + "ffn_up", rows * config.ffn_size * elem)
    t.alloc(p + "ffn_down", rows * hidden * elem)
    t.free(p + "ffn_up")
    t.alloc(p + "out", rows * hidden * elem)
    if not opt.fuse_layernorm:
        t.alloc(p + "ln1_tmp", rows * hidden * elem)
        t.free(p + "ln1_tmp")
    t.free(p + "ffn_down")
    t.free(p + "ln0")
    t.free(p + "out")
    return t


def trace_model(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
) -> ActivationTrace:
    """Activation trace of the whole stack (input/output buffers included)."""
    trace = ActivationTrace()
    batch = len(seq_lens)
    hidden = config.hidden_size
    tokens = int(np.sum(seq_lens))
    padded = batch * max_seq_len * hidden * BYTES_PER_ELEMENT

    trace.alloc("input", padded)
    if opt.remove_padding:
        trace.alloc("packed_input", tokens * hidden * BYTES_PER_ELEMENT)
        trace.free("input")
    for layer in range(config.num_layers):
        trace_encoder_layer(
            config, opt, seq_lens, max_seq_len, trace=trace, layer=layer
        )
    if opt.remove_padding:
        trace.alloc("output", padded)
        trace.free("packed_input")
    trace.free_all()
    return trace


@dataclass(frozen=True)
class MemoryReport:
    """Peak live bytes and reusing-arena size for one configuration."""

    label: str
    peak_bytes: int
    arena_bytes: int

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / 1e6

    @property
    def arena_mb(self) -> float:
        return self.arena_bytes / 1e6


def memory_report(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
) -> MemoryReport:
    """Peak-live and reusing-arena footprint of one configuration."""
    trace = trace_model(config, opt, seq_lens, max_seq_len)
    peak = peak_live_bytes(trace)
    arena = ArenaAllocator().replay(trace)
    return MemoryReport(label=opt.label, peak_bytes=peak, arena_bytes=arena)


#: scratch-buffer suffixes one attention bucket acquires, in take order —
#: shared with :mod:`repro.attention.bucketed` so the symbolic plan and
#: the live engine can never drift apart on names
BUCKET_SCRATCH_SUFFIXES = ("blk", "q", "k", "v", "scores", "ctx", "merged")


def plan_live_forward(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
    *,
    mha: str | None = None,
    dtype: np.dtype | type = np.float64,
) -> ActivationTrace:
    """Symbolic alloc/free trace of one *live* arena-backed forward.

    Mirrors, name for name and in the same order, the
    :class:`LiveArena` take/release sequence the vectorized packed
    engine performs (see :func:`repro.core.encoder.encoder_layer_packed`
    and :func:`repro.attention.bucketed.bucketed_sdpa`), in the engine's
    actual element width (float64 by default) — **not** the fp16
    deployment bytes of :func:`trace_encoder_layer`.  Its
    :func:`peak_live_bytes` is the planner's offline prediction the live
    arena's observed peak is tested against, and replaying it through an
    :class:`ArenaAllocator` predicts the converged backing-buffer size.

    ``mha`` mirrors the dispatch override: ``"fused"`` plans the
    bucketed scratch buffers (both the short and the grouped long kernel
    use the same bucket buffers), ``"zeropad"``/``"cublas"`` plan none
    (those paths allocate internally and are not arena-backed).
    """
    from repro.attention.bucketed import build_buckets
    from repro.core.padding import packing_from_lengths

    if not opt.remove_padding:
        raise ValueError(
            "the live arena only backs the packed pipeline; "
            "plan_live_forward needs remove_padding"
        )
    lens = np.asarray(seq_lens, dtype=np.int64)
    batch = lens.shape[0]
    hidden = config.hidden_size
    ffn = config.ffn_size
    heads = config.num_heads
    head = config.head_size
    tokens = int(lens.sum())
    elem = np.dtype(dtype).itemsize
    if mha is None:
        mha = "fused" if opt.fused_mha else "zeropad"
    bucketed = mha == "fused"
    packing = packing_from_lengths(lens, max_seq_len, cache=None)
    buckets = build_buckets(packing) if bucketed else []

    t = ActivationTrace()
    t.alloc("h0", tokens * hidden * elem)
    t.alloc("h1", tokens * hidden * elem)
    for _ in range(config.num_layers):
        t.alloc("qkv", tokens * 3 * hidden * elem)
        t.alloc("attn", tokens * hidden * elem)
        if bucketed:
            for i, bucket in enumerate(buckets):
                bsz, length = bucket.rows.shape
                unit = bsz * heads * length * head * elem
                p = f"mha.{i}."
                t.alloc(p + "blk", bsz * length * 3 * hidden * elem)
                t.alloc(p + "q", unit)
                t.alloc(p + "k", unit)
                t.alloc(p + "v", unit)
                t.alloc(p + "scores", bsz * heads * length * length * elem)
                t.alloc(p + "ctx", unit)
                t.alloc(p + "merged", bsz * length * hidden * elem)
            for i in range(len(buckets)):
                for suffix in BUCKET_SCRATCH_SUFFIXES:
                    t.free(f"mha.{i}.{suffix}")
        t.free("qkv")
        t.alloc("proj", tokens * hidden * elem)
        t.free("attn")
        t.alloc("ln0", tokens * hidden * elem)
        t.alloc("ln_tmp", tokens * hidden * elem)
        t.free("ln_tmp")
        t.free("proj")
        t.alloc("ffn_up", tokens * ffn * elem)
        t.alloc("gelu_tmp", tokens * ffn * elem)
        t.free("gelu_tmp")
        t.alloc("ffn_down", tokens * hidden * elem)
        t.free("ffn_up")
        t.alloc("ln_tmp", tokens * hidden * elem)
        t.free("ln_tmp")
        t.free("ffn_down")
        t.free("ln0")
    t.alloc("output", batch * max_seq_len * hidden * elem)
    t.free_all()
    return t


def plan_live_megabatch(
    config: BertConfig,
    opt: OptimizationConfig,
    tile: int,
    max_seq_len: int,
    *,
    mha: str | None = None,
    dtype: np.dtype | type = np.float64,
) -> ActivationTrace:
    """Symbolic arena plan for a token-budget megabatch tile.

    Plans the tile's *canonical* segment layout (full ``max_seq_len``
    segments plus a ragged remainder — see
    :func:`repro.core.estimator.canonical_tile_lengths`), which maximises
    every buffer class over all megabatch compositions admissible into
    the tile: the row-proportional buffers (QKV, FFN, layernorm
    temporaries) scale with total tokens, bounded by the tile, and the
    attention score bytes ``sum(len_i^2)`` are maximised — with total
    tokens fixed and each segment capped at ``max_seq_len`` — by the
    extreme point the canonical layout is.  Replaying this plan through
    an :class:`ArenaAllocator` therefore sizes a backing buffer that any
    real megabatch of the tile fits into (up to per-bucket alignment
    slack, which :meth:`LiveArena.begin` absorbs by growing once).
    """
    from repro.core.estimator import canonical_tile_lengths

    return plan_live_forward(
        config,
        opt,
        canonical_tile_lengths(tile, max_seq_len),
        max_seq_len,
        mha=mha,
        dtype=dtype,
    )


def plan_paged_kv_arena(
    hidden: int,
    capacity_tokens: int,
    block_tokens: int,
    *,
    dtype: np.dtype | type = np.float64,
) -> ActivationTrace:
    """Symbolic arena plan for a paged KV-cache block pool.

    The decode-serving KV arena (:class:`repro.decoder.paged_kv.PagedKVArena`)
    holds one persistent ``[blocks, block_tokens, 2, hidden]`` tensor in a
    :class:`LiveArena`.  This mirrors that single allocation name for name,
    the same way :func:`plan_live_megabatch` mirrors the megabatch forward,
    so the runtime can ``reserve()`` the exact backing bytes up front and
    the pool is served from the backing from the first ``take`` — zero
    overflow allocations ever, which the ``decode_serving`` bench gates.
    """
    if hidden <= 0:
        raise ValueError(f"hidden must be positive, got {hidden}")
    if block_tokens <= 0:
        raise ValueError(f"block_tokens must be positive, got {block_tokens}")
    if capacity_tokens < block_tokens:
        raise ValueError(
            f"capacity_tokens {capacity_tokens} below one block "
            f"({block_tokens} tokens)"
        )
    blocks = -(-int(capacity_tokens) // int(block_tokens))
    elem = np.dtype(dtype).itemsize
    t = ActivationTrace()
    t.alloc("kv_blocks", blocks * block_tokens * 2 * hidden * elem)
    t.free_all()
    return t


class ScratchPool:
    """Per-thread reusable scratch for kernel temporaries.

    The allocating kernel paths (no ``out=``) used to burn an
    allocation per call on their element-wise temporaries — for
    erf-GELU at bench shape that is a fresh ``[T, 4H]`` buffer per FFN,
    the #2 host cost after GEMM.  The pool keeps one high-water byte
    buffer per ``(thread, dtype)`` and hands out reshaped views, so in
    steady state the temporaries allocate nothing.

    Contract: a borrowed buffer is valid only until the same thread's
    next :meth:`take` of the same dtype — exactly one live borrow per
    thread per dtype, which the non-nesting kernel epilogues satisfy.
    Thread-locality makes the pool safe under the thread executor, and
    fork gives each process worker its own copy-on-write pool.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def take(
        self, shape: tuple[int, ...], dtype: np.dtype | type
    ) -> np.ndarray:
        """A ``shape``/``dtype`` scratch view, reused across calls."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        bufs: dict[str, np.ndarray] = getattr(self._local, "bufs", None)
        if bufs is None:
            bufs = {}
            self._local.bufs = bufs
        buf = bufs.get(dt.str)
        if buf is None or buf.nbytes < nbytes:
            buf = np.empty(max(1, nbytes), dtype=np.uint8)
            bufs[dt.str] = buf
        return buf[:nbytes].view(dt).reshape(shape)


#: the planner-provided scratch the kernel epilogues borrow from
KERNEL_SCRATCH = ScratchPool()
