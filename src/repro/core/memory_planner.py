"""Activation-memory accounting for the encoder pipelines.

The paper's second motivation for zero padding is memory: "these padded
zeros also introduce significant memory overhead that can hinder a large
Transformer model from being efficiently deployed".  This module makes
that claim measurable:

* :class:`ActivationTrace` records the alloc/free sequence of every
  intermediate tensor a pipeline materialises (mirroring the launch
  sequences of :mod:`repro.core.estimator`);
* :func:`peak_live_bytes` gives the lower bound any allocator must pay;
* :class:`ArenaAllocator` is a best-fit offset allocator with free-list
  reuse — the strategy TurboTransformer's run-time memory scheduler uses
  — whose arena size upper-bounds a real deployment's activation pool.

The interesting output is the padded-vs-packed comparison: the unfused
padded pipelines must hold the quadratic ``B x H x S x S`` score tensor,
the packed fused pipelines either never materialise it (short kernel) or
hold only the ``sum(len_i^2)`` valid region (grouped kernel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.config import BertConfig, OptimizationConfig
from repro.gpusim.memory import BYTES_PER_ELEMENT, BYTES_PER_FP32


@dataclass(frozen=True)
class MemEvent:
    """One allocation (positive bytes) or free (negative bytes)."""

    tensor: str
    bytes: int

    def __post_init__(self) -> None:
        if self.bytes == 0:
            raise ValueError(f"{self.tensor}: zero-byte event")


@dataclass
class ActivationTrace:
    """Ordered alloc/free events of one forward pass."""

    events: list[MemEvent] = field(default_factory=list)
    _live: dict[str, int] = field(default_factory=dict)

    def alloc(self, tensor: str, nbytes: float) -> None:
        nbytes = int(nbytes)
        if tensor in self._live:
            raise ValueError(f"tensor {tensor!r} already live")
        if nbytes <= 0:
            raise ValueError(f"{tensor}: allocation must be positive")
        self._live[tensor] = nbytes
        self.events.append(MemEvent(tensor, nbytes))

    def free(self, tensor: str) -> None:
        if tensor not in self._live:
            raise ValueError(f"tensor {tensor!r} is not live")
        nbytes = self._live.pop(tensor)
        self.events.append(MemEvent(tensor, -nbytes))

    def free_all(self) -> None:
        for tensor in list(self._live):
            self.free(tensor)

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())

    def __iter__(self) -> Iterator[MemEvent]:
        return iter(self.events)


def peak_live_bytes(trace: ActivationTrace) -> int:
    """Maximum simultaneously-live activation bytes — the floor for any
    allocator."""
    peak = 0
    live = 0
    for event in trace:
        live += event.bytes
        peak = max(peak, live)
    if live != 0:
        raise ValueError(
            f"trace leaks {live} bytes (unbalanced alloc/free)"
        )
    return peak


@dataclass(frozen=True)
class Placement:
    tensor: str
    offset: int
    bytes: int

    @property
    def end(self) -> int:
        return self.offset + self.bytes


class ArenaAllocator:
    """Best-fit offset assignment with free-chunk coalescing.

    Replays an :class:`ActivationTrace` and assigns every allocation a
    byte offset in a single arena, reusing freed space — the model-aware
    allocation strategy of TurboTransformer's memory scheduler.  The
    resulting :attr:`arena_bytes` is what a static activation pool would
    need.
    """

    def __init__(self, alignment: int = 256) -> None:
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self.alignment = alignment
        self.arena_bytes = 0
        self._placements: dict[str, Placement] = {}
        #: sorted list of (offset, bytes) free chunks inside the arena
        self._free: list[tuple[int, int]] = []
        self.history: list[Placement] = []

    def _align(self, value: int) -> int:
        a = self.alignment
        return ((value + a - 1) // a) * a

    def allocate(self, tensor: str, nbytes: int) -> Placement:
        if tensor in self._placements:
            raise ValueError(f"tensor {tensor!r} already placed")
        need = self._align(nbytes)
        # best fit: smallest free chunk that holds the request
        best = None
        for i, (off, size) in enumerate(self._free):
            if size >= need and (best is None or size < self._free[best][1]):
                best = i
        if best is not None:
            off, size = self._free.pop(best)
            if size > need:
                self._free.append((off + need, size - need))
                self._free.sort()
            placement = Placement(tensor, off, need)
        else:
            placement = Placement(tensor, self.arena_bytes, need)
            self.arena_bytes += need
        self._placements[tensor] = placement
        self.history.append(placement)
        return placement

    def release(self, tensor: str) -> None:
        placement = self._placements.pop(tensor, None)
        if placement is None:
            raise ValueError(f"tensor {tensor!r} is not placed")
        self._free.append((placement.offset, placement.bytes))
        self._free.sort()
        # coalesce adjacent free chunks
        merged: list[tuple[int, int]] = []
        for off, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((off, size))
        self._free = merged

    def replay(self, trace: ActivationTrace) -> int:
        """Place a whole trace; returns the final arena size in bytes."""
        sizes: dict[str, int] = {}
        for event in trace:
            if event.bytes > 0:
                sizes[event.tensor] = event.bytes
                self.allocate(event.tensor, event.bytes)
            else:
                self.release(event.tensor)
        return self.arena_bytes

    def live_placements(self) -> list[Placement]:
        return sorted(self._placements.values(), key=lambda p: p.offset)


def trace_encoder_layer(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
    trace: ActivationTrace | None = None,
    layer: int = 0,
) -> ActivationTrace:
    """Activation alloc/free sequence of one encoder layer.

    Mirrors the pipelines of :mod:`repro.core.encoder`: the padded
    variants materialise padded intermediates including the quadratic
    score tensor; the packed variants keep everything at
    ``T = sum(len_i)`` rows, and with ``fused_mha`` the score tensor
    either never exists (short kernel) or exists packed plus its
    reduction statistics (grouped kernel).
    """
    t = trace if trace is not None else ActivationTrace()
    batch = len(seq_lens)
    hidden = config.hidden_size
    heads = config.num_heads
    tokens = int(np.sum(seq_lens))
    padded_rows = batch * max_seq_len
    rows = tokens if opt.remove_padding else padded_rows
    p = f"L{layer}."
    elem = BYTES_PER_ELEMENT

    # x (the layer input / residual) is assumed live on entry
    t.alloc(p + "qkv", rows * 3 * hidden * elem)
    if opt.fused_mha:
        max_len = int(np.max(seq_lens))
        short_ok = max_len <= opt.fused_mha_short_max_seq
        if short_ok:
            # Algorithm III.1: logits live in shared memory only
            t.alloc(p + "attn", tokens * hidden * elem)
        else:
            scores = int(np.sum(seq_lens.astype(np.int64) ** 2)) * heads
            stats_rows = tokens * heads
            t.alloc(p + "scores", scores * elem)
            t.alloc(p + "stats", 2 * stats_rows * BYTES_PER_FP32)
            t.alloc(p + "attn", tokens * hidden * elem)
            t.free(p + "scores")
            t.free(p + "stats")
    else:
        # batched-GEMM MHA: padded Q/K/V copies + padded score tensor
        t.alloc(p + "qkv_split", padded_rows * 3 * hidden * elem)
        t.alloc(p + "scores", batch * heads * max_seq_len * max_seq_len * elem)
        t.alloc(p + "attn", rows * hidden * elem)
        t.free(p + "scores")
        t.free(p + "qkv_split")
    t.free(p + "qkv")

    t.alloc(p + "proj", rows * hidden * elem)
    t.free(p + "attn")
    t.alloc(p + "ln0", rows * hidden * elem)
    if not opt.fuse_layernorm:
        # the unfused pipeline round-trips a temporary through memory
        t.alloc(p + "ln0_tmp", rows * hidden * elem)
        t.free(p + "ln0_tmp")
    t.free(p + "proj")

    t.alloc(p + "ffn_up", rows * config.ffn_size * elem)
    t.alloc(p + "ffn_down", rows * hidden * elem)
    t.free(p + "ffn_up")
    t.alloc(p + "out", rows * hidden * elem)
    if not opt.fuse_layernorm:
        t.alloc(p + "ln1_tmp", rows * hidden * elem)
        t.free(p + "ln1_tmp")
    t.free(p + "ffn_down")
    t.free(p + "ln0")
    t.free(p + "out")
    return t


def trace_model(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
) -> ActivationTrace:
    """Activation trace of the whole stack (input/output buffers included)."""
    trace = ActivationTrace()
    batch = len(seq_lens)
    hidden = config.hidden_size
    tokens = int(np.sum(seq_lens))
    padded = batch * max_seq_len * hidden * BYTES_PER_ELEMENT

    trace.alloc("input", padded)
    if opt.remove_padding:
        trace.alloc("packed_input", tokens * hidden * BYTES_PER_ELEMENT)
        trace.free("input")
    for layer in range(config.num_layers):
        trace_encoder_layer(
            config, opt, seq_lens, max_seq_len, trace=trace, layer=layer
        )
    if opt.remove_padding:
        trace.alloc("output", padded)
        trace.free("packed_input")
    trace.free_all()
    return trace


@dataclass(frozen=True)
class MemoryReport:
    """Peak live bytes and reusing-arena size for one configuration."""

    label: str
    peak_bytes: int
    arena_bytes: int

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / 1e6

    @property
    def arena_mb(self) -> float:
        return self.arena_bytes / 1e6


def memory_report(
    config: BertConfig,
    opt: OptimizationConfig,
    seq_lens: np.ndarray,
    max_seq_len: int,
) -> MemoryReport:
    """Peak-live and reusing-arena footprint of one configuration."""
    trace = trace_model(config, opt, seq_lens, max_seq_len)
    peak = peak_live_bytes(trace)
    arena = ArenaAllocator().replay(trace)
    return MemoryReport(label=opt.label, peak_bytes=peak, arena_bytes=arena)
