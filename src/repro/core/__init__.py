"""ByteTransformer core: configuration, packing, pipelines, model."""

from repro.core.config import (
    BASELINE,
    FUSED_MHA,
    GELU_FUSION,
    LAYERNORM_FUSION,
    RM_PADDING,
    STANDARD_BERT,
    STEPWISE_PRESETS,
    BertConfig,
    OptimizationConfig,
)
from repro.core.flops import (
    LayerFlops,
    baseline_flops,
    exact_variable_length_flops,
    fused_mha_flops,
    table2,
    zero_padding_flops,
)
from repro.core.model import BertEncoderModel, ForwardResult
from repro.core.padding import (
    PackedSeqs,
    pack,
    packing_from_lengths,
    packing_from_mask,
    unpack,
)
from repro.core.reference import (
    reference_attention,
    reference_encoder,
    reference_encoder_layer,
    reference_mha,
)
from repro.core.weights import (
    LayerWeights,
    ModelWeights,
    init_layer_weights,
    init_model_weights,
)

__all__ = [
    "BASELINE",
    "FUSED_MHA",
    "GELU_FUSION",
    "LAYERNORM_FUSION",
    "RM_PADDING",
    "STANDARD_BERT",
    "STEPWISE_PRESETS",
    "BertConfig",
    "OptimizationConfig",
    "LayerFlops",
    "baseline_flops",
    "exact_variable_length_flops",
    "fused_mha_flops",
    "table2",
    "zero_padding_flops",
    "BertEncoderModel",
    "ForwardResult",
    "PackedSeqs",
    "pack",
    "packing_from_lengths",
    "packing_from_mask",
    "unpack",
    "reference_attention",
    "reference_encoder",
    "reference_encoder_layer",
    "reference_mha",
    "LayerWeights",
    "ModelWeights",
    "init_layer_weights",
    "init_model_weights",
]
