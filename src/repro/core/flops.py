"""Analytic FLOP counts of a single-layer BERT Transformer (Table II).

Notation follows the paper: ``m = batch_size * max_seq_len`` (padded token
count), ``k = head_num * head_size`` (hidden dimension), ``bs`` the batch
size, and ``α`` the ratio of average to maximum sequence length.  The
table's three columns are the padded baseline, the zero-padding algorithm
(all GEMMs packed except MHA), and zero-padding plus fused MHA (MHA
quadratic term also shrinks to the valid tokens).

These formulas are verified in the tests against the FLOPs metered by the
simulator when running the corresponding pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import BertConfig

#: the compute-bound modules Table II counts, in pipeline order
TABLE2_MODULES = ("GEMM0", "MHA", "GEMM1", "GEMM2", "GEMM3")


@dataclass(frozen=True)
class LayerFlops:
    """FLOPs per compute-bound module of one encoder layer."""

    gemm0: float
    mha: float
    gemm1: float
    gemm2: float
    gemm3: float

    @property
    def total(self) -> float:
        return self.gemm0 + self.mha + self.gemm1 + self.gemm2 + self.gemm3

    def as_dict(self) -> dict[str, float]:
        return {
            "GEMM0": self.gemm0,
            "MHA": self.mha,
            "GEMM1": self.gemm1,
            "GEMM2": self.gemm2,
            "GEMM3": self.gemm3,
        }


def baseline_flops(m: int, k: int, bs: int, config: BertConfig | None = None) -> LayerFlops:
    """Padded baseline column of Table II.

    ``GEMM0`` is the packed-QKV projection (``m x k`` times ``k x 3k``),
    MHA is the two batched GEMMs (``4 m^2 k / bs`` because each of the
    ``bs`` batches does ``2 * 2 * (m/bs)^2 * k`` work), GEMM1 the attention
    output projection, GEMM2/GEMM3 the FFN up/down projections with the
    standard 4x expansion.
    """
    scale = config.ffn_scale if config is not None else 4
    return LayerFlops(
        gemm0=6.0 * m * k**2,
        mha=4.0 * m**2 * k / bs,
        gemm1=2.0 * m * k**2,
        gemm2=2.0 * scale * m * k**2,
        gemm3=2.0 * scale * m * k**2,
    )


def zero_padding_flops(
    m: int, k: int, bs: int, alpha: float, config: BertConfig | None = None
) -> LayerFlops:
    """Zero-padding column: every GEMM shrinks by α except batched MHA."""
    if not (0.0 < alpha <= 1.0):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    base = baseline_flops(m, k, bs, config)
    return LayerFlops(
        gemm0=alpha * base.gemm0,
        mha=base.mha,
        gemm1=alpha * base.gemm1,
        gemm2=alpha * base.gemm2,
        gemm3=alpha * base.gemm3,
    )


def fused_mha_flops(
    m: int, k: int, bs: int, alpha: float, config: BertConfig | None = None
) -> LayerFlops:
    """Zero-padding + fused MHA column: the quadratic MHA term shrinks to
    ``4 (α m)^2 k / bs``."""
    packed = zero_padding_flops(m, k, bs, alpha, config)
    return LayerFlops(
        gemm0=packed.gemm0,
        mha=4.0 * (alpha * m) ** 2 * k / bs,
        gemm1=packed.gemm1,
        gemm2=packed.gemm2,
        gemm3=packed.gemm3,
    )


def exact_variable_length_flops(
    seq_lens: Sequence[int], config: BertConfig
) -> LayerFlops:
    """Exact per-module FLOPs for a concrete variable-length batch.

    Table II's α-formulas assume every sequence has the average length; the
    MHA term is exact only in that case (``sum len_i^2 != (sum len_i)^2/bs``
    in general).  This helper computes the exact counts the simulator
    should meter for a real batch, used to cross-check both.
    """
    lens = np.asarray(seq_lens, dtype=np.float64)
    if lens.size == 0 or (lens <= 0).any():
        raise ValueError("need positive sequence lengths")
    k = config.hidden_size
    tokens = float(lens.sum())
    sq = float((lens**2).sum())
    return LayerFlops(
        gemm0=6.0 * tokens * k**2,
        mha=4.0 * sq * k,
        gemm1=2.0 * tokens * k**2,
        gemm2=2.0 * config.ffn_scale * tokens * k**2,
        gemm3=2.0 * config.ffn_scale * tokens * k**2,
    )


def table2(
    batch: int,
    max_seq_len: int,
    alpha: float,
    config: BertConfig | None = None,
) -> dict[str, LayerFlops]:
    """The three columns of Table II for a concrete configuration."""
    cfg = config or BertConfig()
    m = batch * max_seq_len
    k = cfg.hidden_size
    return {
        "Baseline": baseline_flops(m, k, batch, cfg),
        "Zero Padding": zero_padding_flops(m, k, batch, alpha, cfg),
        "Zero Padding + fused MHA": fused_mha_flops(m, k, batch, alpha, cfg),
    }


def format_table2(columns: dict[str, LayerFlops]) -> str:
    """Render Table II as text (GFLOPs)."""
    names = list(columns)
    lines = [f"{'module':<8}" + "".join(f"{n:>28}" for n in names)]
    for module in TABLE2_MODULES:
        row = f"{module:<8}"
        for name in names:
            row += f"{columns[name].as_dict()[module] / 1e9:>26.2f} G"
        lines.append(row)
    row = f"{'total':<8}"
    for name in names:
        row += f"{columns[name].total / 1e9:>26.2f} G"
    lines.append(row)
    return "\n".join(lines)
