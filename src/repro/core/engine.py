"""Host execution-engine selection: ``vectorized`` vs ``looped``.

The numeric pipelines have two host implementations of every
per-``(batch, head)`` hot path:

* ``looped`` — the seed's reference implementation: one Python iteration
  per attention unit / per sentence.  Kept verbatim so the vectorized
  engine can be validated against it (equivalence tests) and benchmarked
  against it (``repro bench``).
* ``vectorized`` — the default: length-bucketed batched execution (see
  :mod:`repro.attention.bucketed`) and loop-free packing metadata.

Both engines record **byte-identical** :class:`~repro.gpusim.kernel.KernelLaunch`
descriptors — the engine only changes how the host arrives at the same
numbers, never what the simulated GPU is modelled to do.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

#: seed-faithful per-unit Python loops
LOOPED = "looped"
#: length-bucketed batched execution (default)
VECTORIZED = "vectorized"

#: every selectable engine, most conservative first — the serving
#: runtime's degradation ladder validates its levels against this
ENGINES: tuple[str, ...] = (LOOPED, VECTORIZED)

_ENGINES = ENGINES

_current_engine = VECTORIZED


def get_engine() -> str:
    """The active host execution engine name."""
    return _current_engine


def set_engine(name: str) -> None:
    """Select the host execution engine globally."""
    global _current_engine
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}; pick one of {_ENGINES}")
    _current_engine = name


def is_vectorized() -> bool:
    """Whether the vectorized engine is active."""
    return _current_engine == VECTORIZED


@contextlib.contextmanager
def use_engine(name: str) -> Iterator[str]:
    """Temporarily switch the execution engine within a ``with`` block."""
    previous = get_engine()
    set_engine(name)
    try:
        yield name
    finally:
        set_engine(previous)
