"""BERT encoder layer pipelines — Figure 2 (a), (b) and (c).

One function per tensor layout:

* :func:`encoder_layer_padded` — the conventional padded pipeline.  With
  all fusion flags off it is the paper's *baseline* (Figure 2 (a));
  enabling ``fuse_layernorm``/``fuse_gelu`` yields Figure 2 (b).
* :func:`encoder_layer_packed` — the zero-padding pipeline (Figure 2 (c)):
  activations stay packed (``[T, H]``) through every GEMM and memory-bound
  op; the MHA either re-pads internally (batched-GEMM MHA with zero-padding
  softmax) or, with ``fused_mha``, never pads at all.

Kernel categories match the paper's profiling buckets (Figure 3): GEMM0 is
the QKV projection, ``attention`` the MHA block, GEMM1 the attention output
projection, GEMM2/GEMM3 the FFN, ``layernorm0``/``layernorm1`` the two
add-bias + layernorm groups, ``activation`` the add-bias + GELU group.
"""

from __future__ import annotations

import numpy as np

from repro.attention.dispatch import byte_mha
from repro.attention.unfused_cublas import unfused_cublas_mha
from repro.attention.zeropad_softmax_mha import zeropad_softmax_mha
from repro.core.config import BertConfig, OptimizationConfig
from repro.core.memory_planner import LiveArena
from repro.core.padding import PackedSeqs
from repro.core.weights import LayerWeights
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.activation import add_bias_gelu, resolve_gelu_variant
from repro.kernels.batched_gemm import tile_gemm
from repro.kernels.gemm import gemm
from repro.kernels.grouped_gemm import SchedulerKind
from repro.kernels.layernorm import (
    add_bias_residual_layernorm,
    add_bias_residual_layernorm_unfused,
)


def _layernorm_block(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    fused: bool,
    category: str,
    ctx: ExecutionContext,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    if fused:
        return add_bias_residual_layernorm(
            x, bias, residual, gamma, beta, eps=eps, ctx=ctx,
            category=category, out=out, tmp=tmp,
        )
    return add_bias_residual_layernorm_unfused(
        x, bias, residual, gamma, beta, eps=eps, ctx=ctx,
        category=category, out=out, tmp=tmp,
    )


def _ffn_block(
    x: np.ndarray,
    weights: LayerWeights,
    fuse_gelu: bool,
    ctx: ExecutionContext,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
    gelu_variant: str = "exact",
    segment_offsets: np.ndarray | None = None,
) -> np.ndarray:
    """GEMM2 + add-bias + GELU, fused into the epilogue or standalone.

    With ``segment_offsets`` (the packed pipeline), the up-projection is
    a single-call :func:`tile_gemm` over every segment of the buffer.
    """
    def up_gemm(**kwargs: object) -> np.ndarray:
        if segment_offsets is not None:
            return tile_gemm(
                x, weights.ffn_in_weight,
                segment_offsets=segment_offsets, **kwargs,
            )
        return gemm(x, weights.ffn_in_weight, **kwargs)

    if fuse_gelu:
        return up_gemm(
            bias=weights.ffn_in_bias,
            activation="gelu",
            gelu_variant=gelu_variant,
            ctx=ctx,
            name="gemm2_fused_bias_gelu",
            category="gemm2",
            out=out,
            tmp=tmp,
        )
    up = up_gemm(ctx=ctx, name="gemm2", category="gemm2", out=out)
    return add_bias_gelu(
        up, weights.ffn_in_bias, ctx=ctx, category="activation",
        out=out, tmp=tmp, variant=gelu_variant,
    )


def encoder_layer_padded(
    x: np.ndarray,
    weights: LayerWeights,
    config: BertConfig,
    opt: OptimizationConfig,
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """One encoder layer on a padded ``[B*S, H]`` activation tensor.

    ``mask`` is the ``[B, S]`` validity mask; padded rows flow through the
    whole pipeline (the cost the zero-padding algorithm removes).
    """
    if opt.remove_padding:
        raise ValueError(
            "padded pipeline called with remove_padding; use "
            "encoder_layer_packed"
        )
    batch, seq_len = mask.shape
    if x.shape[0] != batch * seq_len:
        raise ValueError(
            f"{x.shape[0]} rows != batch {batch} * seq {seq_len}"
        )
    context = resolve_context(ctx)

    qkv = gemm(
        x, weights.qkv_weight, ctx=context, name="gemm0_qkv", category="gemm0"
    )
    attn = unfused_cublas_mha(
        qkv, weights.qkv_bias, batch, seq_len, config.num_heads, mask,
        ctx=context,
    )
    proj = gemm(
        attn,
        weights.attn_out_weight,
        ctx=context,
        name="gemm1_attn_out",
        category="gemm1",
    )
    ln0 = _layernorm_block(
        proj,
        weights.attn_out_bias,
        x,
        weights.ln0_gamma,
        weights.ln0_beta,
        config.layernorm_eps,
        opt.fuse_layernorm,
        "layernorm0",
        context,
    )
    ffn = _ffn_block(
        ln0, weights, opt.fuse_gelu, context,
        gelu_variant=resolve_gelu_variant(opt.gelu_variant),
    )
    down = gemm(
        ffn,
        weights.ffn_out_weight,
        ctx=context,
        name="gemm3_ffn_out",
        category="gemm3",
    )
    return _layernorm_block(
        down,
        weights.ffn_out_bias,
        ln0,
        weights.ln1_gamma,
        weights.ln1_beta,
        config.layernorm_eps,
        opt.fuse_layernorm,
        "layernorm1",
        context,
    )


def encoder_layer_packed(
    x_packed: np.ndarray,
    weights: LayerWeights,
    config: BertConfig,
    opt: OptimizationConfig,
    packing: PackedSeqs,
    *,
    ctx: ExecutionContext | None = None,
    scratch: LiveArena | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """One encoder layer on a packed ``[T, H]`` activation tensor.

    With ``scratch`` (and ``out``, the caller's ping-pong buffer for the
    layer result), every large intermediate is taken from / released to
    the live arena in the exact order
    :func:`repro.core.memory_planner.plan_live_forward` plans, and the
    layer performs zero large ndarray allocations in steady state.  The
    two forms are bit-identical: each ``out=`` kernel variant replays the
    allocating variant's op sequence into preplaced storage.

    Every projection (QKV, attention output, both FFN GEMMs) goes
    through :func:`repro.kernels.batched_gemm.tile_gemm`: one BLAS call
    covers all of ``packing``'s segments — whether that is a single
    request's buckets or a whole cross-request megabatch tile — rather
    than a call per segment.  Same launches, same bits, one dispatch.
    """
    if not opt.remove_padding:
        raise ValueError(
            "packed pipeline called without remove_padding; use "
            "encoder_layer_padded"
        )
    if x_packed.shape[0] != packing.total_tokens:
        raise ValueError(
            f"{x_packed.shape[0]} rows != packed total "
            f"{packing.total_tokens}"
        )
    if (scratch is None) != (out is None):
        raise ValueError("scratch and out must be passed together")
    context = resolve_context(ctx)
    tokens = packing.total_tokens
    hidden = config.hidden_size

    dt = x_packed.dtype
    take = (
        (lambda name, shape: scratch.take(name, shape, dt))
        if scratch is not None
        else None
    )
    qkv = take("qkv", (tokens, 3 * hidden)) if take else None
    qkv = tile_gemm(
        x_packed,
        weights.qkv_weight,
        segment_offsets=packing.seq_offsets,
        ctx=context,
        name="gemm0_qkv",
        category="gemm0",
        out=qkv,
    )
    attn = take("attn", (tokens, hidden)) if take else None
    if opt.fused_mha:
        scheduler = (
            SchedulerKind.WARP_PREFETCH
            if opt.warp_prefetch_scheduler
            else SchedulerKind.PER_THREAD
        )
        attn = byte_mha(
            qkv,
            weights.qkv_bias,
            packing,
            config.num_heads,
            short_max_seq=opt.fused_mha_short_max_seq,
            scheduler=scheduler,
            ctx=context,
            out=attn,
            scratch=scratch,
        )
    else:
        attn = zeropad_softmax_mha(
            qkv, weights.qkv_bias, packing, config.num_heads, ctx=context,
            out=attn,
        )
    if scratch is not None:
        scratch.release("qkv")
    proj = take("proj", (tokens, hidden)) if take else None
    proj = tile_gemm(
        attn,
        weights.attn_out_weight,
        segment_offsets=packing.seq_offsets,
        ctx=context,
        name="gemm1_attn_out",
        category="gemm1",
        out=proj,
    )
    if scratch is not None:
        scratch.release("attn")
        ln0_buf = take("ln0", (tokens, hidden))
        ln_tmp = take("ln_tmp", (tokens, hidden))
    else:
        ln0_buf = ln_tmp = None
    ln0 = _layernorm_block(
        proj,
        weights.attn_out_bias,
        x_packed,
        weights.ln0_gamma,
        weights.ln0_beta,
        config.layernorm_eps,
        opt.fuse_layernorm,
        "layernorm0",
        context,
        out=ln0_buf,
        tmp=ln_tmp,
    )
    if scratch is not None:
        scratch.release("ln_tmp")
        scratch.release("proj")
        ffn_up = take("ffn_up", (tokens, config.ffn_size))
        gelu_tmp = take("gelu_tmp", (tokens, config.ffn_size))
    else:
        ffn_up = gelu_tmp = None
    ffn = _ffn_block(
        ln0, weights, opt.fuse_gelu, context, ffn_up, gelu_tmp,
        gelu_variant=resolve_gelu_variant(opt.gelu_variant),
        segment_offsets=packing.seq_offsets,
    )
    if scratch is not None:
        scratch.release("gelu_tmp")
    down = take("ffn_down", (tokens, hidden)) if take else None
    down = tile_gemm(
        ffn,
        weights.ffn_out_weight,
        segment_offsets=packing.seq_offsets,
        ctx=context,
        name="gemm3_ffn_out",
        category="gemm3",
        out=down,
    )
    if scratch is not None:
        scratch.release("ffn_up")
        ln_tmp = take("ln_tmp", (tokens, hidden))
    result = _layernorm_block(
        down,
        weights.ffn_out_bias,
        ln0,
        weights.ln1_gamma,
        weights.ln1_beta,
        config.layernorm_eps,
        opt.fuse_layernorm,
        "layernorm1",
        context,
        out=out,
        tmp=ln_tmp if scratch is not None else None,
    )
    if scratch is not None:
        scratch.release("ln_tmp")
        scratch.release("ffn_down")
        scratch.release("ln0")
    return result
