"""Worker-pool execution of independent work units.

Length buckets share no data — each bucket reads its own gather of the
packed QKV tensor and scatters to a disjoint row set of the output — and
independent serving requests are likewise disjoint.  This module provides
the one executor both fan-outs use: a thin thread pool (NumPy's BLAS and
ufunc loops release the GIL, so threads give real parallelism on the
matmul-heavy bucket bodies) with a serial fast path when ``workers == 1``
or there is only one item, so the default configuration adds zero
overhead and an identical execution order.

Thread-safety contract: submitted callables must not allocate from a
shared :class:`~repro.core.memory_planner.LiveArena` (the engine
pre-acquires every bucket's scratch before fanning out) and must not
touch the module-global engine/dispatch switches (callers set those
before the fan-out).
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = [
    "BucketExecutor",
    "SERIAL_EXECUTOR",
    "current_executor",
    "use_executor",
    "use_workers",
]


class BucketExecutor:
    """Run independent callables across ``workers`` threads.

    ``workers == 1`` (the default) never creates a pool: ``map`` runs
    inline in submission order, byte-identical to a plain loop.  Results
    always come back in item order regardless of completion order.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        """``[fn(item) for item in items]``, fanned out when it pays off."""
        work: Sequence[Any] = list(items)
        if self.workers == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="bucket-worker",
            )
        return list(self._pool.map(fn, work))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BucketExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


#: the process-default executor: serial, stateless, shared freely
SERIAL_EXECUTOR = BucketExecutor(1)

_current: list[BucketExecutor] = []


def current_executor() -> BucketExecutor:
    """The innermost active executor, or the serial default."""
    return _current[-1] if _current else SERIAL_EXECUTOR


@contextlib.contextmanager
def use_executor(executor: BucketExecutor) -> Iterator[BucketExecutor]:
    """Make ``executor`` current within the ``with`` block."""
    _current.append(executor)
    try:
        yield executor
    finally:
        popped = _current.pop()
        assert popped is executor, "use_executor stack corrupted"


@contextlib.contextmanager
def use_workers(workers: int) -> Iterator[BucketExecutor]:
    """Shorthand: a fresh ``workers``-wide executor, shut down on exit."""
    executor = BucketExecutor(workers)
    try:
        with use_executor(executor):
            yield executor
    finally:
        executor.shutdown()
