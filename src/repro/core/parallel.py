"""Worker-pool execution of independent work units.

Length buckets share no data — each bucket reads its own gather of the
packed QKV tensor and scatters to a disjoint row set of the output — and
independent serving requests are likewise disjoint.  This module provides
the executors both fan-outs use:

* :class:`BucketExecutor` — a thin thread pool (NumPy's BLAS and ufunc
  loops release the GIL, so threads give real parallelism on the
  matmul-heavy bucket bodies) with a serial fast path when
  ``workers == 1`` or there is only one item, so the default
  configuration adds zero overhead and an identical execution order.
* :class:`ProcessExecutor` — ``fork``-based process fan-out for the
  host paths the GIL *does* cap (scipy's erf, small ufunc chains).
  Workers are forked per :meth:`ProcessExecutor.map` call, so callables
  and their closures are inherited copy-on-write — nothing is pickled
  on the way in.  Results come back over a pipe per worker; callables
  that write into :class:`multiprocessing.shared_memory`-backed buffers
  (see ``LiveArena(shared=True)``) can return ``None`` and skip result
  pickling entirely, which is how the megabatch engine avoids moving
  activations between processes.

Deterministic assignment: :func:`partition_weighted` cuts an item list
into *contiguous* chunks balanced by weight, so the same inputs always
land on the same worker in the same order — the property the bitwise
serial-equivalence contract rests on.

Thread-safety contract: submitted callables must not allocate from a
shared :class:`~repro.core.memory_planner.LiveArena` (the engine
pre-acquires every bucket's scratch before fanning out) and must not
touch the module-global engine/dispatch switches (callers set those
before the fan-out).  Process workers additionally must not mutate any
parent state except shared-memory buffers: every other write dies with
the forked page.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "BucketExecutor",
    "EXECUTOR_KINDS",
    "ProcessExecutor",
    "SERIAL_EXECUTOR",
    "current_executor",
    "fork_available",
    "inplace_executor",
    "make_executor",
    "partition_weighted",
    "use_executor",
    "use_workers",
]

#: the executor kinds :func:`make_executor` accepts, CLI-visible order
EXECUTOR_KINDS = ("serial", "thread", "process")


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method.

    :class:`ProcessExecutor` only fans out where ``fork`` exists (Linux,
    macOS): ``spawn`` would have to pickle the callable and re-import
    the world, which defeats the zero-copy contract.  Elsewhere it
    degrades to the serial fast path.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def partition_weighted(
    weights: Sequence[float] | np.ndarray,
    parts: int,
    *,
    quadratic: bool = False,
) -> list[tuple[int, int]]:
    """Cut ``range(len(weights))`` into ≤ ``parts`` contiguous chunks.

    Chunks are balanced by cumulative weight (each cut lands where the
    running total crosses ``i/parts`` of the whole) and every chunk is
    non-empty.  The result depends only on ``(weights, parts)`` — the
    deterministic segment→worker assignment that keeps parallel outputs
    bitwise equal to the serial path.

    ``quadratic=True`` balances by the *squares* of the weights.  For
    sequence lengths that is the Σlen² attention-work balance the
    unpadded-BERT scaling literature calls for: attention scales with
    len² per segment, so balancing raw token counts systematically
    overloads whichever device drew the long sequences.  Because every
    cut lands at most one item past the ideal fractional split, each
    chunk's weight is within ``max(w)`` (or ``max(w²)`` in quadratic
    mode) of the ideal ``total/parts`` — the bound the property tests
    pin down.
    """
    w = np.asarray(weights, dtype=np.float64)
    if quadratic:
        w = w * w
    n = int(w.shape[0])
    if n == 0:
        return []
    parts = max(1, min(int(parts), n))
    if parts == 1:
        return [(0, n)]
    cum = np.cumsum(w)
    total = float(cum[-1])
    bounds = [0]
    for i in range(1, parts):
        target = total * i / parts
        j = int(np.searchsorted(cum, target))
        j = max(j, bounds[-1] + 1)  # never an empty chunk
        j = min(j, n - (parts - i))  # leave room for the rest
        bounds.append(j)
    bounds.append(n)
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


class BucketExecutor:
    """Run independent callables across ``workers`` threads.

    ``workers == 1`` (the default) never creates a pool: ``map`` runs
    inline in submission order, byte-identical to a plain loop.  Results
    always come back in item order regardless of completion order.
    """

    #: processes share nothing implicitly; threads (and serial) do
    needs_shared_memory = False

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    @property
    def kind(self) -> str:
        """``"serial"`` or ``"thread"`` — how :meth:`map` fans out."""
        return "serial" if self.workers == 1 else "thread"

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        """``[fn(item) for item in items]``, fanned out when it pays off."""
        work: Sequence[Any] = list(items)
        if self.workers == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="bucket-worker",
            )
        return list(self._pool.map(fn, work))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BucketExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


def _process_worker(
    conn: Any,
    fn: Callable[[Any], Any],
    chunk: list,
    verdict: str | None = None,
) -> None:
    """Forked worker body: run the chunk, ship results (or the error).

    ``verdict`` is the chaos fate the parent drew for this chunk before
    forking (see ``FaultPlan.worker_verdict``): ``"worker-kill"`` dies
    with a nonzero exit before computing anything, ``"worker-hang"``
    sleeps forever so the parent's wall-clock guard has to reap it.
    """
    if verdict == "worker-kill":
        os._exit(3)
    if verdict == "worker-hang":
        time.sleep(86_400.0)
    try:
        # the fork inherited the parent thread's executor stack — reset
        # it so work inside the child runs serially instead of forking
        # grandchildren
        _current_stack().clear()
        conn.send(("ok", [fn(item) for item in chunk]))
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        conn.send(("err", f"{type(exc).__name__}: {exc}\n"
                   f"{traceback.format_exc()}"))
    finally:
        conn.close()


class ProcessExecutor:
    """Run independent callables across ``workers`` forked processes.

    Each :meth:`map` call forks up to ``workers`` children over
    contiguous, weight-balanced item chunks (:func:`partition_weighted`
    with unit weights), collects each child's results over a pipe, and
    re-raises any child exception in the parent.  Results come back in
    item order.

    ``fork`` semantics are the whole point: children inherit the
    callable, its closure, model weights and any
    :class:`~repro.core.memory_planner.LiveArena` views copy-on-write —
    nothing is pickled going in.  Only *return values* are pickled
    coming back, so callables that mutate shared-memory buffers and
    return ``None`` move zero activation bytes between processes.

    Falls back to the inline serial path when ``workers == 1``, there is
    at most one item, or the platform lacks ``fork`` — identical
    execution order, zero overhead, same bits.
    """

    kind = "process"
    #: workers only observe parent writes through shared-memory buffers
    needs_shared_memory = True

    def __init__(
        self,
        workers: int = 1,
        *,
        wall_clock_guard_s: float = 30.0,
        fault_hook: Callable[[int], str | None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if wall_clock_guard_s <= 0:
            raise ValueError(
                f"wall_clock_guard_s must be positive, got "
                f"{wall_clock_guard_s}"
            )
        self.workers = workers
        #: host wall-clock budget per worker chunk: a worker that has
        #: not delivered results within it is declared hung and reaped
        self.wall_clock_guard_s = wall_clock_guard_s
        #: chaos hook (e.g. ``FaultPlan.worker_verdict``): called with
        #: the global chunk ordinal before each fork; may sentence the
        #: child to die ("worker-kill") or hang ("worker-hang")
        self.fault_hook = fault_hook
        #: recovery log, one ``"died"`` / ``"hung"`` entry per chunk
        #: that was re-executed serially in the parent
        self.recoveries: list[str] = []
        self._chunk_ordinal = 0

    def _recover(
        self,
        kind: str,
        fn: Callable[[Any], Any],
        chunk: Sequence[Any],
    ) -> list[Any]:
        """Re-execute a lost worker's chunk serially in the parent.

        ``fn`` is deterministic and side-effect-free outside its own
        outputs (the executor contract), so the serial re-execution is
        bitwise what the worker would have returned.  Each recovery is
        logged and counted in telemetry so chaos runs can assert that
        worker loss was survived, not silently absorbed.
        """
        self.recoveries.append(kind)
        from repro.telemetry import current_telemetry
        from repro.telemetry.slo import EXECUTOR_WORKER_RECOVERIES_TOTAL

        tel = current_telemetry()
        if tel is not None and tel.owns_current_thread():
            tel.metrics.counter(
                EXECUTOR_WORKER_RECOVERIES_TOTAL,
                help="worker chunks re-executed serially after loss",
                kind=kind,
            ).inc()
        return [fn(item) for item in chunk]

    def arm_chaos(
        self, fault_hook: Callable[[int], str | None] | None
    ) -> None:
        """Install (or clear) a chaos verdict hook for a fresh run.

        Resets the chunk ordinal and the recovery log so the verdict
        stream — keyed by ordinal — is reproducible run over run.
        """
        self.fault_hook = fault_hook
        self._chunk_ordinal = 0
        self.recoveries = []

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        """``[fn(item) for item in items]`` across forked workers.

        Worker loss is survived, not propagated: a child that exits
        without delivering results (nonzero exit, killed) or exceeds
        :attr:`wall_clock_guard_s` is reaped and its chunk re-executed
        serially in the parent — bitwise the same results, one
        recovery logged per lost chunk.  A child that delivers an
        *exception* is a genuine error and still raises.
        """
        work: Sequence[Any] = list(items)
        if self.workers == 1 or len(work) <= 1 or not fork_available():
            return [fn(item) for item in work]
        ctx = multiprocessing.get_context("fork")
        chunks = partition_weighted(np.ones(len(work)), self.workers)
        children = []
        for start, end in chunks:
            # the verdict is drawn in the parent before forking so the
            # chaos RNG stream never depends on child scheduling
            ordinal = self._chunk_ordinal
            self._chunk_ordinal += 1
            verdict = (
                self.fault_hook(ordinal)
                if self.fault_hook is not None
                else None
            )
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_process_worker,
                args=(child_conn, fn, list(work[start:end]), verdict),
                daemon=True,
            )
            proc.start()
            child_conn.close()  # parent keeps only the read end
            children.append((proc, parent_conn, (start, end)))
        results: list[Any] = []
        error: str | None = None
        for proc, conn, (start, end) in children:
            status: str
            payload: Any
            try:
                if conn.poll(self.wall_clock_guard_s):
                    status, payload = conn.recv()
                else:
                    # hung past the wall-clock guard: reap and recover
                    proc.terminate()
                    proc.join()
                    status, payload = "lost", "hung"
            except EOFError:
                # the worker died (nonzero exit / killed) before
                # delivering results
                status, payload = "lost", "died"
            finally:
                conn.close()
            if status == "ok":
                results.extend(payload)
            elif status == "lost":
                proc.join()
                results.extend(self._recover(payload, fn, work[start:end]))
            elif error is None:
                error = payload
        for proc, _, _ in children:
            proc.join()
        if error is not None:
            raise RuntimeError(f"process worker failed: {error}")
        return results

    def shutdown(self) -> None:
        """Nothing persistent to tear down (workers are per-``map``)."""

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


def make_executor(kind: str, workers: int = 1) -> BucketExecutor | ProcessExecutor:
    """Build an executor by CLI name: serial / thread / process."""
    if kind == "serial":
        return BucketExecutor(1)
    if kind == "thread":
        return BucketExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor {kind!r}; pick one of {EXECUTOR_KINDS}")


#: the process-default executor: serial, stateless, shared freely
SERIAL_EXECUTOR = BucketExecutor(1)

# The executor stack is *per-thread*: a pool worker thread starts with
# an empty stack and therefore runs its own nested fan-outs (e.g. the
# attention bucket loop inside a megabatch segment chunk) serially —
# submitting back into the pool you are a worker of is a deadlock.
_tls = __import__("threading").local()


def _current_stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_executor() -> BucketExecutor | ProcessExecutor:
    """The innermost executor activated *on this thread*, else serial."""
    stack = _current_stack()
    return stack[-1] if stack else SERIAL_EXECUTOR


def inplace_executor() -> BucketExecutor | ProcessExecutor:
    """The current executor, demoted to serial when it cannot fan out
    callables that mutate ordinary (non-shared-memory) buffers in place.

    Bucket-style workers write their rows of a caller-owned ndarray and
    return ``None``; under :class:`ProcessExecutor` those writes die
    with the forked page unless the target is shared-memory backed.
    Fan-out sites that cannot guarantee that use this accessor, so a
    process executor only parallelises the fan-outs that opted in
    (the megabatch segment chunks, whose output the model pins to a
    ``LiveArena(shared=True)`` before fanning out).
    """
    executor = current_executor()
    return SERIAL_EXECUTOR if executor.needs_shared_memory else executor


@contextlib.contextmanager
def use_executor(
    executor: BucketExecutor | ProcessExecutor,
) -> Iterator[BucketExecutor | ProcessExecutor]:
    """Make ``executor`` current (for this thread) within the block."""
    stack = _current_stack()
    stack.append(executor)
    try:
        yield executor
    finally:
        popped = stack.pop()
        assert popped is executor, "use_executor stack corrupted"


@contextlib.contextmanager
def use_workers(
    workers: int, kind: str = "thread"
) -> Iterator[BucketExecutor | ProcessExecutor]:
    """Shorthand: a fresh ``workers``-wide executor, shut down on exit."""
    executor = make_executor(kind, workers)
    try:
        with use_executor(executor):
            yield executor
    finally:
        executor.shutdown()
