"""Weight containers and deterministic initialisation.

All pipeline variants and all framework models share one weight layout so
numerical equivalence can be asserted across implementations.  QKV
projection weights are stored *packed* (``[H, 3H]``) — the paper packs the
three matrices into contiguous memory to launch a single GEMM for the
positional encoding (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BertConfig


@dataclass(frozen=True)
class LayerWeights:
    """Parameters of one BERT encoder layer."""

    #: packed QKV projection: ``[H, 3H]`` (columns are Q | K | V)
    qkv_weight: np.ndarray
    qkv_bias: np.ndarray
    #: attention output projection ``[H, H]``
    attn_out_weight: np.ndarray
    attn_out_bias: np.ndarray
    ln0_gamma: np.ndarray
    ln0_beta: np.ndarray
    #: FFN up-projection ``[H, 4H]``
    ffn_in_weight: np.ndarray
    ffn_in_bias: np.ndarray
    #: FFN down-projection ``[4H, H]``
    ffn_out_weight: np.ndarray
    ffn_out_bias: np.ndarray
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.qkv_weight.shape[0]
        expectations = {
            "qkv_weight": (hidden, 3 * hidden),
            "qkv_bias": (3 * hidden,),
            "attn_out_weight": (hidden, hidden),
            "attn_out_bias": (hidden,),
            "ln0_gamma": (hidden,),
            "ln0_beta": (hidden,),
            "ffn_in_bias": (self.ffn_in_weight.shape[1],),
            "ffn_out_weight": (self.ffn_in_weight.shape[1], hidden),
            "ffn_out_bias": (hidden,),
            "ln1_gamma": (hidden,),
            "ln1_beta": (hidden,),
        }
        for name, shape in expectations.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name} has shape {actual}, expected {shape}")

    @property
    def hidden_size(self) -> int:
        return self.qkv_weight.shape[0]

    def q_weight(self) -> np.ndarray:
        """View of the Q column block of the packed QKV weight."""
        h = self.hidden_size
        return self.qkv_weight[:, :h]

    def k_weight(self) -> np.ndarray:
        h = self.hidden_size
        return self.qkv_weight[:, h : 2 * h]

    def v_weight(self) -> np.ndarray:
        h = self.hidden_size
        return self.qkv_weight[:, 2 * h :]


@dataclass(frozen=True)
class ModelWeights:
    """Parameters of the full encoder stack."""

    layers: tuple[LayerWeights, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a model needs at least one layer")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def hidden_size(self) -> int:
        return self.layers[0].hidden_size


def init_layer_weights(config: BertConfig, rng: np.random.Generator) -> LayerWeights:
    """Gaussian(0, 0.02) init, the BERT convention, in FP32."""
    h = config.hidden_size
    f = config.ffn_size
    scale = 0.02

    def w(*shape: int) -> np.ndarray:
        return rng.normal(0.0, scale, size=shape).astype(np.float32)

    return LayerWeights(
        qkv_weight=w(h, 3 * h),
        qkv_bias=w(3 * h),
        attn_out_weight=w(h, h),
        attn_out_bias=w(h),
        ln0_gamma=(np.ones(h) + rng.normal(0.0, 0.01, size=h)).astype(np.float32),
        ln0_beta=w(h),
        ffn_in_weight=w(h, f),
        ffn_in_bias=w(f),
        ffn_out_weight=w(f, h),
        ffn_out_bias=w(h),
        ln1_gamma=(np.ones(h) + rng.normal(0.0, 0.01, size=h)).astype(np.float32),
        ln1_beta=w(h),
    )


def init_model_weights(config: BertConfig, seed: int = 0) -> ModelWeights:
    """Deterministic weights for the whole stack."""
    rng = np.random.default_rng(seed)
    return ModelWeights(
        layers=tuple(
            init_layer_weights(config, rng) for _ in range(config.num_layers)
        )
    )
