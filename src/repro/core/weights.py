"""Weight containers and deterministic initialisation.

All pipeline variants and all framework models share one weight layout so
numerical equivalence can be asserted across implementations.  QKV
projection weights are stored *packed* (``[H, 3H]``) — the paper packs the
three matrices into contiguous memory to launch a single GEMM for the
positional encoding (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.config import BertConfig


@dataclass(frozen=True)
class LayerWeights:
    """Parameters of one BERT encoder layer."""

    #: packed QKV projection: ``[H, 3H]`` (columns are Q | K | V)
    qkv_weight: np.ndarray
    qkv_bias: np.ndarray
    #: attention output projection ``[H, H]``
    attn_out_weight: np.ndarray
    attn_out_bias: np.ndarray
    ln0_gamma: np.ndarray
    ln0_beta: np.ndarray
    #: FFN up-projection ``[H, 4H]``
    ffn_in_weight: np.ndarray
    ffn_in_bias: np.ndarray
    #: FFN down-projection ``[4H, H]``
    ffn_out_weight: np.ndarray
    ffn_out_bias: np.ndarray
    ln1_gamma: np.ndarray
    ln1_beta: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.qkv_weight.shape[0]
        expectations = {
            "qkv_weight": (hidden, 3 * hidden),
            "qkv_bias": (3 * hidden,),
            "attn_out_weight": (hidden, hidden),
            "attn_out_bias": (hidden,),
            "ln0_gamma": (hidden,),
            "ln0_beta": (hidden,),
            "ffn_in_bias": (self.ffn_in_weight.shape[1],),
            "ffn_out_weight": (self.ffn_in_weight.shape[1], hidden),
            "ffn_out_bias": (hidden,),
            "ln1_gamma": (hidden,),
            "ln1_beta": (hidden,),
        }
        for name, shape in expectations.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name} has shape {actual}, expected {shape}")

    @property
    def hidden_size(self) -> int:
        return self.qkv_weight.shape[0]

    @cached_property
    def qkv_weight_parts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(Q, K, V)`` column-block views of the packed weight."""
        h = self.hidden_size
        return (
            self.qkv_weight[:, :h],
            self.qkv_weight[:, h : 2 * h],
            self.qkv_weight[:, 2 * h :],
        )

    @cached_property
    def qkv_bias_parts(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(Q, K, V)`` thirds of the packed bias."""
        h = self.hidden_size
        return (
            self.qkv_bias[:h],
            self.qkv_bias[h : 2 * h],
            self.qkv_bias[2 * h :],
        )

    def q_weight(self) -> np.ndarray:
        """View of the Q column block of the packed QKV weight."""
        return self.qkv_weight_parts[0]

    def k_weight(self) -> np.ndarray:
        return self.qkv_weight_parts[1]

    def v_weight(self) -> np.ndarray:
        return self.qkv_weight_parts[2]

    def head_qkv_weights(
        self, num_heads: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Memoized per-head ``[heads, H, head_size]`` views of Q / K / V.

        Pure views of the packed weight — no copies, no re-slicing per
        call.  Memoized per ``num_heads`` (a model only ever uses one, but
        analysis code may probe alternatives).
        """
        cached = self._head_views.get(num_heads)
        if cached is not None:
            return cached
        h = self.hidden_size
        if h % num_heads != 0:
            raise ValueError(f"hidden {h} not divisible by {num_heads} heads")
        d = h // num_heads
        views = tuple(
            part.reshape(h, num_heads, d).transpose(1, 0, 2)
            for part in self.qkv_weight_parts
        )
        self._head_views[num_heads] = views
        return views

    @cached_property
    def _head_views(self) -> dict[int, tuple[np.ndarray, ...]]:
        return {}

    def precompute(self, num_heads: int) -> None:
        """Warm every cached slice so steady-state layers re-slice nothing."""
        self.qkv_weight_parts
        self.qkv_bias_parts
        self.head_qkv_weights(num_heads)


@dataclass(frozen=True)
class ModelWeights:
    """Parameters of the full encoder stack."""

    layers: tuple[LayerWeights, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a model needs at least one layer")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def hidden_size(self) -> int:
        return self.layers[0].hidden_size

    def precompute(self, num_heads: int) -> None:
        """Warm per-layer weight/bias splits and per-head views once, at
        model-build time, so no layer re-slices them on the forward path."""
        for layer in self.layers:
            layer.precompute(num_heads)


def init_layer_weights(config: BertConfig, rng: np.random.Generator) -> LayerWeights:
    """Gaussian(0, 0.02) init, the BERT convention, in FP32."""
    h = config.hidden_size
    f = config.ffn_size
    scale = 0.02

    def w(*shape: int) -> np.ndarray:
        return rng.normal(0.0, scale, size=shape).astype(np.float32)

    return LayerWeights(
        qkv_weight=w(h, 3 * h),
        qkv_bias=w(3 * h),
        attn_out_weight=w(h, h),
        attn_out_bias=w(h),
        ln0_gamma=(np.ones(h) + rng.normal(0.0, 0.01, size=h)).astype(np.float32),
        ln0_beta=w(h),
        ffn_in_weight=w(h, f),
        ffn_in_bias=w(f),
        ffn_out_weight=w(f, h),
        ffn_out_bias=w(h),
        ln1_gamma=(np.ones(h) + rng.normal(0.0, 0.01, size=h)).astype(np.float32),
        ln1_beta=w(h),
    )


def init_model_weights(config: BertConfig, seed: int = 0) -> ModelWeights:
    """Deterministic weights for the whole stack."""
    rng = np.random.default_rng(seed)
    return ModelWeights(
        layers=tuple(
            init_layer_weights(config, rng) for _ in range(config.num_layers)
        )
    )
