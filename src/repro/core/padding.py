"""The zero-padding algorithm (§III-D, Figure 4).

Given the ``[B, S]`` input mask, a warp-level prefix sum yields, for every
valid token, its row in the *packed* tensor; the packed tensor has exactly
``valid_word_cnt`` rows, so every downstream operation that indexes
through the offsets does zero work on padding.  :class:`PackedSeqs` is the
positioning structure every other module consumes: gather indices
(packed row → padded row), per-sentence offsets (prefix of sequence
lengths) and the valid lengths themselves.

All metadata builders are loop-free (``np.repeat``/``np.arange``), and a
:class:`PackingCache` keyed by ``(max_seq_len, lengths)`` lets serving
traces with repeated shapes skip the host-side rebuild entirely.  The
prefix-sum *kernel launch* is still recorded on every
:func:`packing_from_mask` call — caching only elides host work, never the
modelled GPU cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gpusim.stream import ExecutionContext
from repro.kernels.packing import pack_tokens, unpack_tokens
from repro.kernels.prefix_sum import mask_prefix_sum
from repro.telemetry import current_telemetry


def _observe_mega(name: str, mega: "CrossRequestPacking") -> None:
    """Mark one cross-request pack/scatter in the installed telemetry.

    Observation only (an instant span at the tracer's cursor); a ``None``
    or foreign-thread telemetry short-circuits, so the numeric plane is
    untouched with telemetry off and the parallel bucket executor's
    worker threads never interleave into the span stack.
    """
    tel = current_telemetry()
    if tel is None or not tel.owns_current_thread():
        return
    tel.tracer.instant(
        name,
        category="packing",
        segments=mega.num_segments,
        tokens=mega.total_tokens,
        tile=mega.tile,
        pad_tokens=mega.pad_tokens,
    )


@dataclass(frozen=True)
class PackedSeqs:
    """Positioning information of a packed variable-length batch.

    Attributes
    ----------
    batch, max_seq_len:
        Padded layout this packing came from.
    seq_lens:
        ``[B]`` valid token count of each sentence.
    seq_offsets:
        ``[B + 1]`` exclusive prefix of ``seq_lens``; sentence ``b``
        occupies packed rows ``seq_offsets[b] : seq_offsets[b + 1]``.
    gather_idx:
        ``[T]`` padded linear row (``b * S + s``) of each packed row —
        the "position offset vector" the paper's kernels index with.
    """

    batch: int
    max_seq_len: int
    seq_lens: np.ndarray
    seq_offsets: np.ndarray
    gather_idx: np.ndarray

    def __post_init__(self) -> None:
        if self.seq_lens.shape != (self.batch,):
            raise ValueError(
                f"seq_lens shape {self.seq_lens.shape} != ({self.batch},)"
            )
        if self.seq_offsets.shape != (self.batch + 1,):
            raise ValueError(
                f"seq_offsets shape {self.seq_offsets.shape} != "
                f"({self.batch + 1},)"
            )
        if self.seq_lens.min() <= 0:
            raise ValueError("every sentence needs at least one valid token")
        if self.seq_lens.max() > self.max_seq_len:
            raise ValueError("a sequence length exceeds max_seq_len")
        if self.gather_idx.shape != (int(self.seq_lens.sum()),):
            raise ValueError("gather_idx size != total valid tokens")

    @property
    def total_tokens(self) -> int:
        """``valid_word_cnt`` — rows of the packed tensor."""
        return int(self.seq_offsets[-1])

    @property
    def padded_rows(self) -> int:
        return self.batch * self.max_seq_len

    @property
    def fill_ratio(self) -> float:
        """Valid fraction of the padded layout (the paper's α on average)."""
        return self.total_tokens / self.padded_rows

    def rows_of(self, b: int) -> slice:
        """Packed row range of sentence ``b``."""
        return slice(int(self.seq_offsets[b]), int(self.seq_offsets[b + 1]))

    def to_mask(self) -> np.ndarray:
        """Reconstruct the ``[B, S]`` 0/1 mask (left-aligned tokens)."""
        positions = np.arange(self.max_seq_len, dtype=np.int64)
        return (positions[None, :] < self.seq_lens[:, None]).astype(np.int64)


def _build_gather(
    seq_lens: np.ndarray, seq_offsets: np.ndarray, max_seq_len: int
) -> np.ndarray:
    """Loop-free gather_idx: padded linear row of every packed row."""
    total = int(seq_offsets[-1])
    batch = seq_lens.shape[0]
    # position of each packed token within its own sentence ...
    within = np.arange(total, dtype=np.int64) - np.repeat(
        seq_offsets[:-1], seq_lens
    )
    # ... plus its sentence's padded base row
    base = np.arange(batch, dtype=np.int64) * max_seq_len
    within += np.repeat(base, seq_lens)
    return within


def _build_packing(lens: np.ndarray, max_seq_len: int) -> PackedSeqs:
    batch = lens.shape[0]
    offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    gather = _build_gather(lens, offsets, max_seq_len)
    return PackedSeqs(
        batch=batch,
        max_seq_len=max_seq_len,
        seq_lens=lens,
        seq_offsets=offsets,
        gather_idx=gather,
    )


class PackingCache:
    """LRU cache of :class:`PackedSeqs` keyed by ``(max_seq_len, lengths)``.

    Serving traces repeat shapes constantly (same bucket of requests, same
    padding layout); a hit returns the previously built metadata without
    touching the offsets/gather builders.  Cached entries have read-only
    arrays and own private copies of the lengths, so callers can mutate
    their inputs freely.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[tuple[int, bytes], PackedSeqs] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, lens: np.ndarray, max_seq_len: int) -> PackedSeqs:
        """Return the cached packing for ``lens`` or build + insert it."""
        key = (int(max_seq_len), lens.tobytes())
        hit = self._entries.get(key)
        if hit is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return hit
        self.misses += 1
        packing = _build_packing(lens.copy(), max_seq_len)
        for arr in (
            packing.seq_lens,
            packing.seq_offsets,
            packing.gather_idx,
        ):
            arr.flags.writeable = False
        self._entries[key] = packing
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return packing


_default_cache = PackingCache()

#: sentinel: "use the module-default cache"
_USE_DEFAULT = object()


def default_packing_cache() -> PackingCache:
    """The process-wide cache used when callers don't pass their own."""
    return _default_cache


def _validate_lengths(lens: np.ndarray, max_seq_len: int) -> None:
    if lens.ndim != 1:
        raise ValueError(f"seq_lens must be 1-D, got shape {lens.shape}")
    if lens.size == 0:
        raise ValueError("need at least one sequence")
    if lens.min() <= 0 or lens.max() > max_seq_len:
        raise ValueError(
            f"lengths must lie in [1, {max_seq_len}], got "
            f"[{lens.min()}, {lens.max()}]"
        )


def packing_from_mask(
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    cache: PackingCache | None = _USE_DEFAULT,  # type: ignore[assignment]
) -> PackedSeqs:
    """Run the prefix-sum kernel on ``mask`` and build :class:`PackedSeqs`.

    The paper's serving path assumes left-aligned tokens (a sentence's
    words occupy positions ``0..len-1``); the mask is validated to be of
    that form.  The prefix-sum kernel is launched (and its modelled cost
    recorded) unconditionally; ``cache`` only short-circuits the host-side
    metadata build.  Pass ``cache=None`` to disable caching.
    """
    if mask.ndim != 2:
        raise ValueError(f"expected a [B, S] mask, got {mask.shape}")
    prefix = mask_prefix_sum(mask, ctx=ctx)
    batch, max_seq_len = mask.shape

    seq_lens = np.ascontiguousarray(prefix[:, -1], dtype=np.int64)
    if (seq_lens <= 0).any():
        raise ValueError("every sentence needs at least one valid token")
    # left-alignment check: a row with len total ones is left-aligned iff
    # its first len positions are all ones, i.e. the prefix sum at index
    # len - 1 already equals len (the prefix is non-decreasing)
    aligned = (
        prefix[np.arange(batch), seq_lens - 1] == seq_lens
    )
    if not aligned.all():
        b = int(np.flatnonzero(~aligned)[0])
        raise ValueError(
            f"sentence {b} has interior padding; the serving path "
            "expects left-aligned tokens"
        )

    if cache is _USE_DEFAULT:
        cache = _default_cache
    if cache is not None:
        return cache.get_or_build(seq_lens, max_seq_len)
    return _build_packing(seq_lens, max_seq_len)


def packing_from_lengths(
    seq_lens: np.ndarray | list[int],
    max_seq_len: int,
    *,
    cache: PackingCache | None = _USE_DEFAULT,  # type: ignore[assignment]
) -> PackedSeqs:
    """Build :class:`PackedSeqs` directly from known lengths (no kernel).

    ``seq_lens`` may be a plain Python list or any array-like; an existing
    C-contiguous ``int64`` array is used as-is without an intermediate
    copy.  Pass ``cache=None`` to bypass the :class:`PackingCache`.
    """
    if isinstance(seq_lens, np.ndarray) and seq_lens.dtype == np.int64:
        lens = np.ascontiguousarray(seq_lens)  # no copy when already C-order
    else:
        lens = np.asarray(seq_lens, dtype=np.int64)
    _validate_lengths(lens, max_seq_len)
    if cache is _USE_DEFAULT:
        cache = _default_cache
    if cache is not None:
        return cache.get_or_build(lens, max_seq_len)
    return _build_packing(lens, max_seq_len)


# ----------------------------------------------------------------------
# cross-request packing: many requests, one packed buffer


class EmptySegmentError(ValueError):
    """A request contributed zero valid tokens to a cross-request pack.

    The packed layout has no representation for an empty segment (every
    sentence owns at least one packed row), so the scheduler must shed
    such a request instead of admitting it into a megabatch.
    """


class TileOverflowError(ValueError):
    """The merged segments hold more valid tokens than the tile allows."""


@dataclass(frozen=True)
class CrossRequestPacking:
    """Positioning of many requests merged into one tile-sized packed buffer.

    The continuous batcher admits whole requests into a rolling megabatch
    bounded by a token budget; this structure is the pack/merge result:
    each request becomes one *segment* (a sentence of the underlying
    :class:`PackedSeqs`), segments are concatenated in admission order,
    and the buffer is quantized to ``tile`` rows — the tail
    ``tile - total_tokens`` rows are zero-padding that exists *only
    inside the packed buffer* (no padded ``[B, S]`` layout is ever
    materialised for it).

    Attributes
    ----------
    packing:
        :class:`PackedSeqs` over the real segments: ``seq_lens[i]`` is
        request ``i``'s length, ``seq_offsets`` are the per-request
        segment offsets the scatter-back path indexes with.
    tile:
        Quantized row count of the packed buffer (``>= total_tokens``).
    """

    packing: PackedSeqs
    tile: int

    def __post_init__(self) -> None:
        if self.tile < self.packing.total_tokens:
            raise TileOverflowError(
                f"{self.packing.total_tokens} merged tokens do not fit a "
                f"{self.tile}-token tile"
            )

    @property
    def num_segments(self) -> int:
        return self.packing.batch

    @property
    def total_tokens(self) -> int:
        """Valid (real) tokens; rows ``total_tokens:tile`` are padding."""
        return self.packing.total_tokens

    @property
    def pad_tokens(self) -> int:
        """Quantization padding inside the buffer — bounded by ``tile - 1``."""
        return self.tile - self.total_tokens

    @property
    def seq_lens(self) -> np.ndarray:
        return self.packing.seq_lens

    @property
    def segment_offsets(self) -> np.ndarray:
        """``[num_segments + 1]`` exclusive prefix of segment lengths."""
        return self.packing.seq_offsets

    def rows_of(self, i: int) -> slice:
        """Packed row range of segment (request) ``i``."""
        return self.packing.rows_of(i)


def merge_request_lengths(
    seq_lens: np.ndarray | list[int],
    max_seq_len: int,
    tile: int,
    *,
    cache: PackingCache | None = _USE_DEFAULT,  # type: ignore[assignment]
) -> CrossRequestPacking:
    """Merge per-request lengths into one :class:`CrossRequestPacking`.

    Each request keeps its own segment (attention never crosses segment
    boundaries); the packed buffer is sized to ``tile`` rows.  Raises
    :class:`EmptySegmentError` for a zero-length request and
    :class:`TileOverflowError` when the lengths sum past the tile.
    """
    lens = np.asarray(seq_lens, dtype=np.int64)
    if lens.ndim != 1 or lens.size == 0:
        raise ValueError("need a non-empty 1-D vector of request lengths")
    if (lens <= 0).any():
        i = int(np.flatnonzero(lens <= 0)[0])
        raise EmptySegmentError(
            f"request {i} contributes {int(lens[i])} valid tokens; "
            "a megabatch segment needs at least one"
        )
    total = int(lens.sum())
    if total > tile:
        raise TileOverflowError(
            f"{total} merged tokens do not fit a {tile}-token tile"
        )
    packing = packing_from_lengths(lens, max_seq_len, cache=cache)
    return CrossRequestPacking(packing=packing, tile=tile)


def pack_segments(
    segments: Sequence[np.ndarray],
    mega: CrossRequestPacking,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Concatenate per-request ``[L_i, H]`` tensors into the tile buffer.

    Returns a ``[tile, H]`` array whose first ``total_tokens`` rows are
    the segments in order and whose tail rows are exactly zero (the
    quantization padding lives only here, never in a padded layout).
    """
    if len(segments) != mega.num_segments:
        raise ValueError(
            f"{len(segments)} segment tensors != {mega.num_segments} "
            "merged requests"
        )
    hidden = segments[0].shape[-1]
    if out is None:
        out = np.empty((mega.tile, hidden), dtype=segments[0].dtype)
    elif out.shape != (mega.tile, hidden):
        raise ValueError(
            f"out shape {out.shape} != tile layout ({mega.tile}, {hidden})"
        )
    offsets = mega.segment_offsets
    for i, seg in enumerate(segments):
        rows = seg.reshape(-1, hidden)
        expected = int(mega.seq_lens[i])
        if rows.shape[0] != expected:
            raise ValueError(
                f"segment {i} has {rows.shape[0]} rows, packing expects "
                f"{expected}"
            )
        out[offsets[i] : offsets[i + 1]] = rows
    out[mega.total_tokens :] = 0.0
    _observe_mega("pack.segments", mega)
    return out


def scatter_segments(
    packed: np.ndarray, mega: CrossRequestPacking
) -> list[np.ndarray]:
    """Split a packed ``[tile, H]`` (or ``[total, H]``) result back into
    per-request ``[L_i, H]`` views, in admission order.

    The views alias ``packed``; callers that outlive the buffer (e.g. the
    serving report under an arena-backed model) must copy.
    """
    if packed.ndim != 2 or packed.shape[0] < mega.total_tokens:
        raise ValueError(
            f"expected at least [{mega.total_tokens}, H], got {packed.shape}"
        )
    _observe_mega("scatter.segments", mega)
    return [packed[mega.rows_of(i)] for i in range(mega.num_segments)]


def pack(
    x_padded: np.ndarray,
    packing: PackedSeqs,
    *,
    ctx: ExecutionContext | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pack a padded ``[B, S, H]`` or ``[B*S, H]`` tensor to ``[T, H]``."""
    if x_padded.ndim == 3:
        batch, seq, hidden = x_padded.shape
        if batch != packing.batch or seq != packing.max_seq_len:
            raise ValueError(
                f"tensor layout {x_padded.shape[:2]} does not match packing "
                f"({packing.batch}, {packing.max_seq_len})"
            )
        x_padded = x_padded.reshape(batch * seq, hidden)
    elif x_padded.ndim == 2:
        if x_padded.shape[0] != packing.padded_rows:
            raise ValueError(
                f"{x_padded.shape[0]} rows != padded layout "
                f"{packing.padded_rows}"
            )
    else:
        raise ValueError(f"expected 2-D or 3-D tensor, got {x_padded.shape}")
    return pack_tokens(x_padded, packing.gather_idx, ctx=ctx, out=out)


def unpack(
    x_packed: np.ndarray,
    packing: PackedSeqs,
    *,
    ctx: ExecutionContext | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Unpack ``[T, H]`` back to padded ``[B*S, H]`` (padding zeroed)."""
    if x_packed.ndim != 2 or x_packed.shape[0] != packing.total_tokens:
        raise ValueError(
            f"expected [{packing.total_tokens}, H], got {x_packed.shape}"
        )
    return unpack_tokens(
        x_packed, packing.gather_idx, packing.padded_rows, ctx=ctx, out=out
    )
