"""The zero-padding algorithm (§III-D, Figure 4).

Given the ``[B, S]`` input mask, a warp-level prefix sum yields, for every
valid token, its row in the *packed* tensor; the packed tensor has exactly
``valid_word_cnt`` rows, so every downstream operation that indexes
through the offsets does zero work on padding.  :class:`PackedSeqs` is the
positioning structure every other module consumes: gather indices
(packed row → padded row), per-sentence offsets (prefix of sequence
lengths) and the valid lengths themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.stream import ExecutionContext
from repro.kernels.packing import pack_tokens, unpack_tokens
from repro.kernels.prefix_sum import mask_prefix_sum


@dataclass(frozen=True)
class PackedSeqs:
    """Positioning information of a packed variable-length batch.

    Attributes
    ----------
    batch, max_seq_len:
        Padded layout this packing came from.
    seq_lens:
        ``[B]`` valid token count of each sentence.
    seq_offsets:
        ``[B + 1]`` exclusive prefix of ``seq_lens``; sentence ``b``
        occupies packed rows ``seq_offsets[b] : seq_offsets[b + 1]``.
    gather_idx:
        ``[T]`` padded linear row (``b * S + s``) of each packed row —
        the "position offset vector" the paper's kernels index with.
    """

    batch: int
    max_seq_len: int
    seq_lens: np.ndarray
    seq_offsets: np.ndarray
    gather_idx: np.ndarray

    def __post_init__(self) -> None:
        if self.seq_lens.shape != (self.batch,):
            raise ValueError(
                f"seq_lens shape {self.seq_lens.shape} != ({self.batch},)"
            )
        if self.seq_offsets.shape != (self.batch + 1,):
            raise ValueError(
                f"seq_offsets shape {self.seq_offsets.shape} != "
                f"({self.batch + 1},)"
            )
        if self.seq_lens.min() <= 0:
            raise ValueError("every sentence needs at least one valid token")
        if self.seq_lens.max() > self.max_seq_len:
            raise ValueError("a sequence length exceeds max_seq_len")
        if self.gather_idx.shape != (int(self.seq_lens.sum()),):
            raise ValueError("gather_idx size != total valid tokens")

    @property
    def total_tokens(self) -> int:
        """``valid_word_cnt`` — rows of the packed tensor."""
        return int(self.seq_offsets[-1])

    @property
    def padded_rows(self) -> int:
        return self.batch * self.max_seq_len

    @property
    def fill_ratio(self) -> float:
        """Valid fraction of the padded layout (the paper's α on average)."""
        return self.total_tokens / self.padded_rows

    def rows_of(self, b: int) -> slice:
        """Packed row range of sentence ``b``."""
        return slice(int(self.seq_offsets[b]), int(self.seq_offsets[b + 1]))

    def to_mask(self) -> np.ndarray:
        """Reconstruct the ``[B, S]`` 0/1 mask (left-aligned tokens)."""
        mask = np.zeros((self.batch, self.max_seq_len), dtype=np.int64)
        for b, length in enumerate(self.seq_lens):
            mask[b, :length] = 1
        return mask


def packing_from_mask(
    mask: np.ndarray, *, ctx: ExecutionContext | None = None
) -> PackedSeqs:
    """Run the prefix-sum kernel on ``mask`` and build :class:`PackedSeqs`.

    The paper's serving path assumes left-aligned tokens (a sentence's
    words occupy positions ``0..len-1``); the mask is validated to be of
    that form.
    """
    if mask.ndim != 2:
        raise ValueError(f"expected a [B, S] mask, got {mask.shape}")
    prefix = mask_prefix_sum(mask, ctx=ctx)
    batch, max_seq_len = mask.shape

    seq_lens = prefix[:, -1].copy()
    if (seq_lens <= 0).any():
        raise ValueError("every sentence needs at least one valid token")
    # left-alignment check: prefix sum at position s must equal s+1 for
    # all valid positions
    for b in range(batch):
        length = int(seq_lens[b])
        expected = np.arange(1, length + 1)
        if not np.array_equal(prefix[b, :length], expected):
            raise ValueError(
                f"sentence {b} has interior padding; the serving path "
                "expects left-aligned tokens"
            )

    seq_offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(seq_lens, out=seq_offsets[1:])

    gather = np.empty(int(seq_offsets[-1]), dtype=np.int64)
    for b in range(batch):
        length = int(seq_lens[b])
        gather[seq_offsets[b] : seq_offsets[b + 1]] = (
            b * max_seq_len + np.arange(length)
        )

    return PackedSeqs(
        batch=batch,
        max_seq_len=max_seq_len,
        seq_lens=seq_lens,
        seq_offsets=seq_offsets,
        gather_idx=gather,
    )


def packing_from_lengths(
    seq_lens: np.ndarray | list[int], max_seq_len: int
) -> PackedSeqs:
    """Build :class:`PackedSeqs` directly from known lengths (no kernel)."""
    lens = np.asarray(seq_lens, dtype=np.int64)
    if lens.ndim != 1:
        raise ValueError(f"seq_lens must be 1-D, got shape {lens.shape}")
    if lens.size == 0:
        raise ValueError("need at least one sequence")
    if lens.min() <= 0 or lens.max() > max_seq_len:
        raise ValueError(
            f"lengths must lie in [1, {max_seq_len}], got "
            f"[{lens.min()}, {lens.max()}]"
        )
    batch = lens.shape[0]
    offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    gather = np.empty(int(offsets[-1]), dtype=np.int64)
    for b in range(batch):
        gather[offsets[b] : offsets[b + 1]] = (
            b * max_seq_len + np.arange(lens[b])
        )
    return PackedSeqs(
        batch=batch,
        max_seq_len=max_seq_len,
        seq_lens=lens,
        seq_offsets=offsets,
        gather_idx=gather,
    )


def pack(
    x_padded: np.ndarray,
    packing: PackedSeqs,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Pack a padded ``[B, S, H]`` or ``[B*S, H]`` tensor to ``[T, H]``."""
    if x_padded.ndim == 3:
        batch, seq, hidden = x_padded.shape
        if batch != packing.batch or seq != packing.max_seq_len:
            raise ValueError(
                f"tensor layout {x_padded.shape[:2]} does not match packing "
                f"({packing.batch}, {packing.max_seq_len})"
            )
        x_padded = x_padded.reshape(batch * seq, hidden)
    elif x_padded.ndim == 2:
        if x_padded.shape[0] != packing.padded_rows:
            raise ValueError(
                f"{x_padded.shape[0]} rows != padded layout "
                f"{packing.padded_rows}"
            )
    else:
        raise ValueError(f"expected 2-D or 3-D tensor, got {x_padded.shape}")
    return pack_tokens(x_padded, packing.gather_idx, ctx=ctx)


def unpack(
    x_packed: np.ndarray,
    packing: PackedSeqs,
    *,
    ctx: ExecutionContext | None = None,
) -> np.ndarray:
    """Unpack ``[T, H]`` back to padded ``[B*S, H]`` (padding zeroed)."""
    if x_packed.ndim != 2 or x_packed.shape[0] != packing.total_tokens:
        raise ValueError(
            f"expected [{packing.total_tokens}, H], got {x_packed.shape}"
        )
    return unpack_tokens(
        x_packed, packing.gather_idx, packing.padded_rows, ctx=ctx
    )
