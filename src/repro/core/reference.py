"""Plain-NumPy oracle for the BERT encoder.

No kernels, no cost accounting, no packing — just the math of Figure 2 (a)
on a padded batch with an attention mask.  Every optimised pipeline and
every framework model is validated against this implementation on the
valid (unpadded) region of the output.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import BertConfig
from repro.core.weights import LayerWeights, ModelWeights
from repro.kernels.activation import gelu_reference
from repro.kernels.layernorm import layernorm_reference
from repro.kernels.softmax import MASK_VALUE, softmax_reference


def reference_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Scaled dot-product attention oracle.

    ``q``/``k``/``v`` are ``[..., S, head_size]``; ``mask`` (optional) is
    ``[B, S]`` with 1 for valid key positions, broadcast over heads and
    query positions.
    """
    head_size = q.shape[-1]
    scores = q @ np.swapaxes(k, -1, -2) / math.sqrt(head_size)
    if mask is not None:
        key_mask = mask[:, None, None, :]
        scores = scores + (1.0 - key_mask) * MASK_VALUE
    return softmax_reference(scores) @ v


def reference_mha(
    x: np.ndarray,
    weights: LayerWeights,
    config: BertConfig,
    mask: np.ndarray,
) -> np.ndarray:
    """Multi-head attention on a padded ``[B, S, H]`` batch (pre-projection
    output, before the attention output GEMM)."""
    batch, seq, hidden = x.shape
    qkv = x.reshape(batch * seq, hidden) @ weights.qkv_weight + weights.qkv_bias
    q, k, v = (
        qkv[:, i * hidden : (i + 1) * hidden]
        .reshape(batch, seq, config.num_heads, config.head_size)
        .transpose(0, 2, 1, 3)
        for i in range(3)
    )
    attn = reference_attention(q, k, v, mask)
    return attn.transpose(0, 2, 1, 3).reshape(batch, seq, hidden)


def reference_encoder_layer(
    x: np.ndarray,
    weights: LayerWeights,
    config: BertConfig,
    mask: np.ndarray,
) -> np.ndarray:
    """One post-LN BERT encoder layer on a padded ``[B, S, H]`` batch."""
    batch, seq, hidden = x.shape
    attn = reference_mha(x, weights, config, mask)
    flat = attn.reshape(batch * seq, hidden)
    proj = flat @ weights.attn_out_weight

    x_flat = x.reshape(batch * seq, hidden)
    ln0 = layernorm_reference(
        proj + weights.attn_out_bias + x_flat,
        weights.ln0_gamma,
        weights.ln0_beta,
        config.layernorm_eps,
    )

    ffn = gelu_reference(ln0 @ weights.ffn_in_weight + weights.ffn_in_bias)
    down = ffn @ weights.ffn_out_weight
    ln1 = layernorm_reference(
        down + weights.ffn_out_bias + ln0,
        weights.ln1_gamma,
        weights.ln1_beta,
        config.layernorm_eps,
    )
    return ln1.reshape(batch, seq, hidden)


def reference_encoder(
    x: np.ndarray,
    weights: ModelWeights,
    config: BertConfig,
    mask: np.ndarray,
) -> np.ndarray:
    """The full encoder stack oracle on a padded ``[B, S, H]`` batch."""
    if x.ndim != 3:
        raise ValueError(f"expected [B, S, H], got {x.shape}")
    if mask.shape != x.shape[:2]:
        raise ValueError(
            f"mask shape {mask.shape} != batch layout {x.shape[:2]}"
        )
    out = x
    for layer in weights.layers:
        out = reference_encoder_layer(out, layer, config, mask)
    return out
