"""ByteTransformer reproduction.

A padding-free variable-length Transformer inference engine (Zhai et al.,
IPDPS 2023) rebuilt in Python: numerically exact NumPy kernels paired with
an analytical A100 execution model, the zero-padding algorithm, fused MHA
for short and long sequences, grouped GEMM with scheduler variants, and
framework models of the paper's four baselines.

Quick start::

    from repro import BertEncoderModel, FUSED_MHA, make_batch
    from repro.gpusim import ExecutionContext

    batch = make_batch(16, 256, 768, alpha=0.6, seed=0)
    model = BertEncoderModel(opt=FUSED_MHA)
    ctx = ExecutionContext()
    out = model.forward(batch.x, batch.mask, ctx=ctx)
    print(f"modelled latency: {ctx.elapsed_us():.0f} us")
"""

from repro.core import (
    BASELINE,
    FUSED_MHA,
    GELU_FUSION,
    LAYERNORM_FUSION,
    RM_PADDING,
    STANDARD_BERT,
    STEPWISE_PRESETS,
    BertConfig,
    BertEncoderModel,
    OptimizationConfig,
    PackedSeqs,
    packing_from_lengths,
    packing_from_mask,
)
from repro.workloads import VariableLengthBatch, make_batch

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "FUSED_MHA",
    "GELU_FUSION",
    "LAYERNORM_FUSION",
    "RM_PADDING",
    "STANDARD_BERT",
    "STEPWISE_PRESETS",
    "BertConfig",
    "BertEncoderModel",
    "OptimizationConfig",
    "PackedSeqs",
    "packing_from_lengths",
    "packing_from_mask",
    "VariableLengthBatch",
    "make_batch",
    "__version__",
]
