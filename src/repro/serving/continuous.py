"""Continuous token-budget batching for the serving runtime.

The per-request batchers realise the paper's packing claim one dispatch
at a time: every dispatch builds its own :class:`PackedSeqs`, and every
distinct length vector is a fresh launch-graph key, so under live
traffic the PR 3 replay path almost never fires.  This module moves
packing up into the scheduler:

* :class:`~repro.workloads.batching.ContinuousBatcher` (re-exported
  here — it lives beside the other policies) admits requests into a
  rolling **megabatch** bounded by a token budget and quantizes each
  dispatch to a tile from a small set;
* :func:`build_megabatch` merges the admitted requests' inputs into one
  ``[tile, H]`` packed buffer via the cross-request pack path
  (:func:`repro.core.padding.pack_segments`);
* :func:`scatter_outputs` returns each request's rows of the megabatch
  output to its owner (the scatter-back half of the contract: the
  megabatch result is bitwise what each request would get alone);
* :func:`retile` re-quantizes the surviving segments of a faulted
  megabatch for a retry — expired segments were shed, so the retry
  covers only the still-affected ones, usually on a smaller tile.

Because every dispatch lands on one of a handful of tiles, the
``(device, config, preset, path, tile)`` graph key recurs and
steady-state serving runs on :meth:`LaunchGraph.replay` instead of eager
pricing — the property the ``continuous_serving`` bench section gates.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.padding import (
    CrossRequestPacking,
    merge_request_lengths,
    pack_segments,
    scatter_segments,
)
from repro.telemetry import current_telemetry
from repro.workloads.batching import (
    DEFAULT_TILES,
    ContinuousBatcher,
    DecodeRound,
    MixedContinuousBatcher,
    TokenBudgetExceededError,
    quantize_tile,
)
from repro.workloads.serving import Request

__all__ = [
    "DEFAULT_TILES",
    "ContinuousBatcher",
    "DecodeRound",
    "MixedContinuousBatcher",
    "TokenBudgetExceededError",
    "quantize_tile",
    "build_megabatch",
    "scatter_outputs",
    "retile",
]


def build_megabatch(
    requests: Sequence[Request],
    inputs: Callable[[Request], np.ndarray],
    max_seq_len: int,
    tile: int,
) -> tuple[np.ndarray, CrossRequestPacking]:
    """Merge per-request ``[len_i, H]`` inputs into one packed tile.

    ``inputs`` maps a request to its ``[seq_len, H]`` input rows (the
    runtime's deterministic per-request generator, so the bits are
    independent of how requests are grouped).  Returns the ``[tile, H]``
    buffer — valid rows first, quantization tail zeroed — plus the
    :class:`CrossRequestPacking` that locates every request's segment.
    """
    lens = np.asarray([r.seq_len for r in requests], dtype=np.int64)
    mega = merge_request_lengths(lens, max_seq_len, tile)
    packed = pack_segments([inputs(r) for r in requests], mega)
    tel = current_telemetry()
    if tel is not None and tel.owns_current_thread():
        tel.tracer.instant(
            "megabatch.build",
            category="packing",
            segments=len(requests),
            request_ids=[r.request_id for r in requests],
            tile=tile,
        )
    return packed, mega


def scatter_outputs(
    out_tile: np.ndarray, mega: CrossRequestPacking
) -> list[np.ndarray]:
    """Each request's ``[len_i, H]`` output rows, copied out of the tile.

    The copies (unlike the views of
    :func:`~repro.core.padding.scatter_segments`) survive the next
    forward on an arena-backed model, which is what a serving report
    needs.
    """
    outs = [seg.copy() for seg in scatter_segments(out_tile, mega)]
    tel = current_telemetry()
    if tel is not None and tel.owns_current_thread():
        tel.tracer.instant(
            "megabatch.scatter",
            category="packing",
            segments=mega.num_segments,
            tokens=mega.total_tokens,
        )
    return outs


def retile(
    total_tokens: int,
    batcher: object,
    fallback_tile: int,
) -> int:
    """Quantized tile for a retried megabatch of ``total_tokens``.

    After a fault, expired segments are shed before the retry, so the
    surviving token count may fit a smaller tile — re-quantizing keeps
    the retry on a recurring graph key instead of paying the original
    tile's padded cost.  Falls back to the dispatch's own tile when the
    batcher does not expose a tile set (``total_tokens`` never exceeds
    it: survivors are a subset of the original megabatch).
    """
    tiles = (
        batcher.effective_tiles()
        if isinstance(batcher, ContinuousBatcher)
        else (fallback_tile,)
    )
    return quantize_tile(total_tokens, tiles)
