"""Seeded, deterministic fault injection for the serving runtime.

Real serving fleets see kernels fail for reasons no unit test provokes:
driver hiccups, transient allocator pressure from co-located work, and
stragglers.  A :class:`FaultPlan` turns those into *reproducible*
events: it is a seeded schedule that, installed as an
:class:`~repro.gpusim.stream.ExecutionContext` launch hook, makes chosen
kernel launches raise :class:`~repro.gpusim.errors.LaunchFailure` /
:class:`~repro.gpusim.errors.TransientOom` or stretch their latency by a
spike factor.  Every decision is one draw from a seeded RNG keyed by the
order eligible launches occur in, so the same seed replays the same
failure scenario bit for bit — chaos testing without flakiness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.errors import LaunchFailure, TransientOom
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.stream import ExecutionContext

#: fault kinds as they appear in the injection log
LAUNCH_FAILURE = "launch-failure"
TRANSIENT_OOM = "transient-oom"
SLOW_KERNEL = "slow-kernel"
#: host-side process-worker faults (see FaultPlan.worker_verdict)
WORKER_KILL = "worker-kill"
WORKER_HANG = "worker-hang"


@dataclass(frozen=True)
class FaultSpec:
    """Rates and targeting of the injected fault mix.

    Each eligible launch draws one uniform number and lands in exactly
    one bucket: launch failure, transient OOM, latency spike, or clean.
    ``target_prefixes`` restricts eligibility to kernels whose name
    starts with one of the prefixes (empty = every kernel) — pointing it
    at ``("fused_mha", "fmha_")`` models the realistic case where only
    the aggressive fused kernels are flaky, so degrading to conservative
    kernels genuinely escapes the faults.
    """

    launch_failure_rate: float = 0.0
    transient_oom_rate: float = 0.0
    slow_rate: float = 0.0
    slow_factor: float = 4.0
    target_prefixes: tuple[str, ...] = ()
    #: host-side chaos: probability a forked process-worker chunk dies
    #: with a nonzero exit / hangs past the executor's wall-clock guard.
    #: Drawn per chunk from an independent seeded stream (see
    #: :meth:`FaultPlan.worker_verdict`), so enabling them never shifts
    #: the kernel-launch fault schedule.
    worker_kill_rate: float = 0.0
    worker_hang_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "launch_failure_rate",
            "transient_oom_rate",
            "slow_rate",
            "worker_kill_rate",
            "worker_hang_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.fault_rate > 1.0:
            raise ValueError(
                f"fault rates must sum to <= 1, got {self.fault_rate}"
            )
        if self.worker_kill_rate + self.worker_hang_rate > 1.0:
            raise ValueError(
                "worker_kill_rate + worker_hang_rate must be <= 1, got "
                f"{self.worker_kill_rate + self.worker_hang_rate}"
            )
        if self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )

    @property
    def fault_rate(self) -> float:
        """Total probability an eligible launch misbehaves."""
        return self.launch_failure_rate + self.transient_oom_rate + self.slow_rate

    def targets(self, kernel_name: str) -> bool:
        """Whether this kernel is eligible for injection."""
        if not self.target_prefixes:
            return True
        return kernel_name.startswith(self.target_prefixes)


#: the fault-free spec: a plan built from it never injects anything
NO_FAULTS = FaultSpec()


@dataclass(frozen=True)
class InjectedFault:
    """One entry of a plan's injection log."""

    ordinal: int
    kernel: str
    kind: str


class FaultPlan:
    """A seeded fault schedule applied through the launch hook.

    The plan keeps its own ordinal counter over *eligible* launches so
    the decision for the N-th eligible launch depends only on ``seed``
    and N — replaying the same launch stream under the same seed
    reproduces the same faults, which is what makes chaos runs
    assertable in tests.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._ordinal = 0
        self.injected: list[InjectedFault] = []

    def on_launch(self, launch: KernelLaunch, index: int) -> float:
        """Launch-hook entry point: decide this launch's fate."""
        del index  # position in the plan, not the context, keys the draw
        if not self.spec.targets(launch.name):
            return 1.0
        ordinal = self._ordinal
        self._ordinal += 1
        draw = float(self._rng.random())
        edge = self.spec.launch_failure_rate
        if draw < edge:
            self.injected.append(
                InjectedFault(ordinal, launch.name, LAUNCH_FAILURE)
            )
            raise LaunchFailure(
                f"injected launch failure: {launch.name!r} "
                f"(eligible launch #{ordinal})"
            )
        edge += self.spec.transient_oom_rate
        if draw < edge:
            self.injected.append(
                InjectedFault(ordinal, launch.name, TRANSIENT_OOM)
            )
            raise TransientOom(
                f"injected transient OOM: {launch.name!r} "
                f"(eligible launch #{ordinal})"
            )
        edge += self.spec.slow_rate
        if draw < edge:
            self.injected.append(
                InjectedFault(ordinal, launch.name, SLOW_KERNEL)
            )
            return self.spec.slow_factor
        return 1.0

    def worker_verdict(self, chunk_ordinal: int) -> str | None:
        """Seeded fate of the ``chunk_ordinal``-th forked worker chunk.

        Returns :data:`WORKER_KILL`, :data:`WORKER_HANG` or ``None``
        (healthy).  The draw is keyed by ``(seed, chunk_ordinal)`` on a
        stream independent of the launch-fault RNG, so worker chaos and
        kernel chaos compose without perturbing each other, and the
        parent can draw the verdict *before* forking (the RNG state
        never depends on child scheduling).  Injections land in the
        same :attr:`injected` log as kernel faults.
        """
        spec = self.spec
        if spec.worker_kill_rate <= 0.0 and spec.worker_hang_rate <= 0.0:
            return None
        draw = float(
            np.random.default_rng(
                [self.seed, 0xDEAD, chunk_ordinal]
            ).random()
        )
        if draw < spec.worker_kill_rate:
            self.injected.append(
                InjectedFault(chunk_ordinal, "process-worker", WORKER_KILL)
            )
            return WORKER_KILL
        if draw < spec.worker_kill_rate + spec.worker_hang_rate:
            self.injected.append(
                InjectedFault(chunk_ordinal, "process-worker", WORKER_HANG)
            )
            return WORKER_HANG
        return None

    def install(self, ctx: ExecutionContext) -> ExecutionContext:
        """Install this plan as ``ctx``'s launch hook; returns ``ctx``."""
        ctx.launch_hook = self.on_launch
        return ctx

    def fault_counts(self) -> dict[str, int]:
        """Injection log tallied by fault kind."""
        counts: dict[str, int] = {}
        for fault in self.injected:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts
