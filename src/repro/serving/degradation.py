"""Graceful degradation: step the engine down under pressure, back up after.

A :class:`DegradationLadder` holds an ordered list of
:class:`DegradationLevel` rungs, most aggressive first.  Each rung names
a host execution engine (``vectorized`` / ``looped`` — switched through
:func:`repro.core.engine.use_engine`; the two are bit-identical, so
stepping down never changes served outputs) and an attention dispatch
path (``fused`` / ``zeropad`` / ``cublas`` — forced through
:func:`repro.attention.dispatch.force_mha_path`, walking the fused MHA
back to conservative batched-GEMM kernels).

The ladder trips downward when enough incidents (injected faults or
deadline misses) land inside a sliding window, and recovers one rung at
a time once a cool-down passes without incident.  Every transition is
recorded with its simulated timestamp and reason so chaos replays can
assert the exact degradation story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attention.dispatch import MHA_PATHS
from repro.core.engine import ENGINES, LOOPED, VECTORIZED
from repro.telemetry import current_telemetry
from repro.telemetry.slo import DEGRADATIONS_TOTAL

#: incident kinds as they appear in transition reasons
FAULT = "fault"
DEADLINE_MISS = "deadline-miss"
BUDGET_BURN = "budget-burn"

#: decode pricing paths a rung can select: the batched paged varlen
#: kernel, or the conservative per-request looped chain
DECODE_PATHS = ("batched", "looped")


@dataclass(frozen=True)
class DegradationLevel:
    """One rung: a host engine plus an attention dispatch path.

    ``exact_gelu`` pins the rung to the exact (erf) GELU formula via
    :func:`repro.kernels.activation.force_gelu_variant` even when the
    serving preset selected ``fast-gelu``: conservative rungs trade
    host speed for the bitwise reference numerics, the same direction
    every other knob on the ladder steps.  Under an exact preset the
    pin is an identity, so default serving stays bitwise unchanged.
    """

    name: str
    engine: str
    mha_path: str
    exact_gelu: bool = False
    #: which decode pricing path the rung uses — ``"batched"`` is the
    #: paged varlen kernel, ``"looped"`` walks every request through its
    #: own per-step kernel chain.  Numerics are identical on both (they
    #: share the per-head attention math); only the cost plane degrades,
    #: which is exactly what lets a round escape a fault targeting the
    #: batched kernel.
    decode_path: str = "batched"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; pick one of {ENGINES}"
            )
        if self.mha_path not in MHA_PATHS:
            raise ValueError(
                f"unknown MHA path {self.mha_path!r}; pick one of {MHA_PATHS}"
            )
        if self.decode_path not in DECODE_PATHS:
            raise ValueError(
                f"unknown decode path {self.decode_path!r}; pick one of "
                f"{DECODE_PATHS}"
            )


#: the default ladder, most aggressive first: full vectorized fused
#: serving, then the conservative looped host engine (which also drops
#: any fast-GELU approximation), then progressively less fused
#: attention kernels
DEFAULT_LEVELS: tuple[DegradationLevel, ...] = (
    DegradationLevel("full", VECTORIZED, "fused"),
    DegradationLevel("looped-host", LOOPED, "fused", exact_gelu=True),
    DegradationLevel("zeropad-softmax", LOOPED, "zeropad", exact_gelu=True),
    DegradationLevel("unfused-cublas", LOOPED, "cublas", exact_gelu=True),
)

#: the decode serving ladder: the batched paged-varlen round, then the
#: per-request looped chain (same bits, conservative pricing, immune to
#: faults targeting the batched kernel)
DECODE_LEVELS: tuple[DegradationLevel, ...] = (
    DegradationLevel("decode-batched", VECTORIZED, "fused"),
    DegradationLevel(
        "decode-looped",
        LOOPED,
        "fused",
        exact_gelu=True,
        decode_path="looped",
    ),
)


@dataclass(frozen=True)
class LadderTransition:
    """One recorded level change."""

    time_us: float
    from_level: str
    to_level: str
    #: ``"fault-pressure"``, ``"deadline-pressure"`` or ``"recovered"``
    reason: str


class DegradationLadder:
    """Sliding-window trip-down / cool-down step-up level controller."""

    def __init__(
        self,
        levels: tuple[DegradationLevel, ...] = DEFAULT_LEVELS,
        *,
        trip_threshold: int = 3,
        window_us: float = 50_000.0,
        cooldown_us: float = 100_000.0,
    ) -> None:
        if not levels:
            raise ValueError("a ladder needs at least one level")
        if trip_threshold < 1:
            raise ValueError(
                f"trip_threshold must be >= 1, got {trip_threshold}"
            )
        if window_us <= 0 or cooldown_us <= 0:
            raise ValueError("window_us and cooldown_us must be positive")
        self.levels = tuple(levels)
        self.trip_threshold = trip_threshold
        self.window_us = window_us
        self.cooldown_us = cooldown_us
        self.transitions: list[LadderTransition] = []
        self._idx = 0
        self._incidents: list[float] = []
        self._cooldown_until = 0.0

    @property
    def level(self) -> DegradationLevel:
        """The active rung."""
        return self.levels[self._idx]

    @property
    def at_top(self) -> bool:
        return self._idx == 0

    def reset(self) -> None:
        """Back to the top rung with no history (start of a fresh run)."""
        self.transitions = []
        self._idx = 0
        self._incidents = []
        self._cooldown_until = 0.0

    def record_fault(self, now_us: float) -> None:
        """An injected/observed transient fault at simulated ``now_us``."""
        self._incident(now_us, FAULT)

    def record_deadline_miss(self, now_us: float) -> None:
        """A request shed for its deadline at simulated ``now_us``."""
        self._incident(now_us, DEADLINE_MISS)

    def record_budget_burn(self, now_us: float) -> None:
        """A latency-SLO tenant's error budget is burning at ``now_us``.

        The multi-tenant gateway path feeds this signal when a
        latency-SLO tenant's running error-budget burn exceeds 1.0:
        degradation then trips for the *batch-class* dispatches (which
        the runtime prices at the ladder's current rung) while SLO-class
        dispatches stay pinned to the top rung — batch tenants give up
        speed before SLO tenants give up anything.
        """
        self._incident(now_us, BUDGET_BURN)

    def record_success(self, now_us: float) -> None:
        """A dispatch served cleanly; may recover one rung after cool-down."""
        self._prune(now_us)
        if (
            self._idx > 0
            and not self._incidents
            and now_us >= self._cooldown_until
        ):
            self._step(now_us, self._idx - 1, "recovered")
            # climbing further requires another full quiet cool-down
            self._cooldown_until = now_us + self.cooldown_us

    def _incident(self, now_us: float, kind: str) -> None:
        self._prune(now_us)
        self._incidents.append(now_us)
        if (
            len(self._incidents) >= self.trip_threshold
            and self._idx < len(self.levels) - 1
        ):
            self._step(now_us, self._idx + 1, f"{kind}-pressure")
            self._incidents = []
            self._cooldown_until = now_us + self.cooldown_us

    def _prune(self, now_us: float) -> None:
        horizon = now_us - self.window_us
        self._incidents = [t for t in self._incidents if t > horizon]

    def _step(self, now_us: float, to_idx: int, reason: str) -> None:
        from_level = self.levels[self._idx].name
        to_level = self.levels[to_idx].name
        self.transitions.append(
            LadderTransition(
                time_us=now_us,
                from_level=from_level,
                to_level=to_level,
                reason=reason,
            )
        )
        self._idx = to_idx
        tel = current_telemetry()
        if tel is not None and tel.owns_current_thread():
            tel.metrics.counter(
                DEGRADATIONS_TOTAL,
                help="ladder transitions by reason",
                reason=reason,
            ).inc()
            tel.tracer.instant(
                "ladder.step",
                category="degradation",
                t_us=now_us,
                from_level=from_level,
                to_level=to_level,
                reason=reason,
            )
