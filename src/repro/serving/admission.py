"""High-water-mark admission control.

Under overload a serving system that admits everything fails *late*:
requests queue, blow their deadlines while occupying memory, and the
GPU does work nobody will accept.  Rejecting early at a backlog
high-water mark converts that into a fast, cheap "try elsewhere" at
arrival time — the standard load-shedding posture for latency-SLO
serving.  The controller is intentionally tiny: the runtime tracks the
predicted GPU backlog (committed-but-unserved work, in simulated
microseconds) and asks the controller for an admit/reject verdict per
arrival.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionController:
    """Reject arrivals once the predicted backlog tops the high-water mark."""

    #: largest predicted backlog (us of queued GPU work) that still admits
    high_water_us: float = 50_000.0

    def __post_init__(self) -> None:
        if self.high_water_us <= 0:
            raise ValueError(
                f"high_water_us must be positive, got {self.high_water_us}"
            )

    def admit(self, backlog_us: float) -> bool:
        """Whether a request arriving against ``backlog_us`` gets in."""
        return backlog_us <= self.high_water_us
