"""Decode serving: continuous prefill/decode batching over a paged KV arena.

:class:`GenerationRuntime` is the autoregressive sibling of
:class:`~repro.serving.runtime.ServingRuntime`: it replays a trace of
:class:`~repro.workloads.serving.GenerationRequest`\\ s through mixed
prefill/decode rounds cut by a
:class:`~repro.workloads.batching.MixedContinuousBatcher`, holds every
in-flight request's KV history in a
:class:`~repro.decoder.paged_kv.PagedKVArena`, and prices each round as
one batched kernel chain (fused QKV GEMM + packed varlen prefill
attention + paged varlen decode attention + output GEMM), graph-cached
under tile-quantized keys.

Two planes, one contract — decode edition
-----------------------------------------
Latency lives on the *cost plane*: a round's service time is the
modelled batched chain at the ladder's current rung (``batched`` paged
varlen or the ``looped`` per-request fallback), and injected faults
strike that chain.  Generated tokens live on the *numeric plane*: every
round commits one packed QKV GEMM over all its rows, per-request
attention over KV gathered from the paged arena, and one packed output
GEMM.  Row-stacked GEMMs are bitwise row-equal to per-request GEMMs
(the M=1 pinning + row-split invariance contract in
:mod:`repro.kernels.gemm`), and the arena gathers exactly the
contiguous K/V layout the per-request cache holds — so every request's
token stream is *bitwise* equal to the looped
:func:`~repro.decoder.generation.generate_cell_reference` oracle,
however the scheduler interleaved, preempted or resumed it.  The chaos
tests assert exactly that.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.config import BertConfig
from repro.decoder.estimator import (
    estimate_decode_round_looped,
    estimate_decode_round_tiled,
)
from repro.decoder.generation import (
    DecodeCellWeights,
    attend_to_cache,
    init_decode_cell,
    max_decode_steps,
)
from repro.decoder.paged_kv import (
    DEFAULT_KV_BLOCK_TOKENS,
    PagedKVArena,
)
from repro.gpusim.device import A100_SPEC, DeviceSpec
from repro.gpusim.errors import TransientFault
from repro.gpusim.graph import GraphCache
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.memory import BYTES_PER_ELEMENT
from repro.gpusim.stream import ExecutionContext, NullContext
from repro.kernels.gemm import gemm
from repro.serving.degradation import (
    DECODE_LEVELS,
    DegradationLadder,
    DegradationLevel,
    LadderTransition,
)
from repro.serving.faults import NO_FAULTS, FaultPlan, FaultSpec, InjectedFault
from repro.serving.gateway import AdmissionGateway, QosClass
from repro.serving.report import (
    Outcome,
    REASON_ADMISSION,
    REASON_DEADLINE,
    REASON_RETRY_BUDGET,
    RequestOutcome,
)
from repro.serving.retry import RetryPolicy
from repro.telemetry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
    RATIO_BUCKETS,
    REQUEST_CATEGORY,
    Telemetry,
    use_telemetry,
)
from repro.telemetry import slo as metric_names
from repro.workloads.batching import (
    MixedContinuousBatcher,
    TokenBudgetExceededError,
    shed_expired,
)
from repro.workloads.serving import Request, ServingTrace


def _kv_swap_launch(tokens: int, hidden: int, name: str) -> KernelLaunch:
    """Host<->device copy of one request's K/V rows (eviction traffic)."""
    return KernelLaunch(
        name=name,
        category="kv_swap",
        grid=max(1, -(-tokens // DEFAULT_KV_BLOCK_TOKENS)),
        block_threads=128,
        dram_bytes=2.0 * tokens * hidden * BYTES_PER_ELEMENT,
        regs_per_thread=32,
    )


@dataclass
class _GenState:
    """One admitted request's progress through the decode runtime."""

    request: Request  # possibly gateway-re-anchored
    steps_total: int
    tokens: list[np.ndarray] = field(default_factory=list)
    token_times: list[float] = field(default_factory=list)
    retries: int = 0

    @property
    def done(self) -> bool:
        return len(self.tokens) >= self.steps_total


@dataclass(frozen=True)
class GenerationReport:
    """Everything one decode chaos replay is accountable for."""

    outcomes: tuple[RequestOutcome, ...]
    transitions: tuple[LadderTransition, ...]
    injected_faults: tuple[InjectedFault, ...]
    top_level: str
    gpu_busy_us: float
    makespan_us: float
    #: generated hidden rows per served request: ``rid -> [T, H]``
    outputs: dict[int, np.ndarray] = field(default_factory=dict, compare=False)
    #: simulated finish instant of each generated token, per request
    token_times: dict[int, tuple[float, ...]] = field(
        default_factory=dict, compare=False
    )
    generated_tokens: int = 0
    rounds: int = 0
    kv_stats: dict[str, float] = field(default_factory=dict, compare=False)
    graph_hits: int = 0
    graph_lookups: int = 0

    def by_outcome(self, outcome: Outcome) -> tuple[RequestOutcome, ...]:
        return tuple(o for o in self.outcomes if o.outcome is outcome)

    @property
    def served(self) -> tuple[RequestOutcome, ...]:
        return self.by_outcome(Outcome.SERVED)

    def counts(self) -> dict[str, int]:
        return {
            "served": len(self.served),
            "shed": len(self.by_outcome(Outcome.SHED)),
            "failed": len(self.by_outcome(Outcome.FAILED)),
            "rejected": len(self.by_outcome(Outcome.REJECTED)),
        }

    @property
    def us_per_token(self) -> float:
        """Modelled GPU µs per generated token — the headline metric."""
        if not self.generated_tokens:
            return float("inf")
        return self.gpu_busy_us / self.generated_tokens

    @property
    def graph_hit_rate(self) -> float:
        if not self.graph_lookups:
            return 0.0
        return self.graph_hits / self.graph_lookups

    def ttft_us(self, rid: int, arrival_us: float) -> float | None:
        times = self.token_times.get(rid)
        if not times:
            return None
        return times[0] - arrival_us

    def render_text(self) -> str:
        counts = self.counts()
        lines = [
            f"generation report: {len(self.outcomes)} requests, "
            f"{self.generated_tokens} tokens in {self.rounds} rounds, "
            f"makespan {self.makespan_us / 1000:.2f} ms, "
            f"GPU busy {self.gpu_busy_us / 1000:.2f} ms "
            f"({self.us_per_token:.2f} us/token)",
            "  outcomes: "
            + ", ".join(f"{k}={v}" for k, v in counts.items()),
            f"  graph cache: {self.graph_hits}/{self.graph_lookups} replays "
            f"(hit rate {self.graph_hit_rate:.2f})",
        ]
        if self.kv_stats:
            lines.append(
                "  kv arena: "
                + ", ".join(
                    f"{k}={v:g}" for k, v in sorted(self.kv_stats.items())
                )
            )
        if self.transitions:
            lines.append("  degradation transitions:")
            for t in self.transitions:
                lines.append(
                    f"    {t.time_us / 1000:10.2f} ms  "
                    f"{t.from_level} -> {t.to_level}  ({t.reason})"
                )
        else:
            lines.append("  degradation transitions: none")
        return "\n".join(lines)


class GenerationRuntime:
    """Serve autoregressive traces through mixed prefill/decode rounds.

    Parameters
    ----------
    config:
        Model shape; the decode cell weights derive from it.
    batcher:
        Round-cutting policy; a default
        :class:`~repro.workloads.batching.MixedContinuousBatcher` when
        omitted.
    retry / gateway / ladder / faults / telemetry:
        The same robustness knobs :class:`ServingRuntime` takes.  The
        default ladder is :data:`~repro.serving.degradation.DECODE_LEVELS`
        (batched paged varlen, then looped per-request pricing — same
        bits on both rungs).
    kv_capacity_tokens:
        KV arena size.  ``None`` sizes it to hold every admitted
        request's full trajectory (no eviction ever); smaller values
        exercise swap-out preemption and resume.
    kv_block_tokens:
        Tokens per KV block.
    weights:
        Decode cell weights; defaults to
        :func:`~repro.decoder.generation.init_decode_cell` at ``seed``.
    compute_outputs:
        When ``False`` the numeric plane is skipped entirely (cost-plane
        pricing only — much faster for large benches); outputs/token
        bits are then unavailable, but modelled times, outcomes and KV
        block accounting are unchanged (KV bookkeeping runs on lengths
        alone, never on the values).
    """

    def __init__(
        self,
        config: BertConfig,
        *,
        batcher: MixedContinuousBatcher | None = None,
        retry: RetryPolicy | None = None,
        gateway: AdmissionGateway | None = None,
        ladder: DegradationLadder | None = None,
        faults: FaultSpec = NO_FAULTS,
        device: DeviceSpec = A100_SPEC,
        seed: int = 0,
        use_graph: bool = True,
        kv_capacity_tokens: int | None = None,
        kv_block_tokens: int = DEFAULT_KV_BLOCK_TOKENS,
        weights: DecodeCellWeights | None = None,
        compute_outputs: bool = True,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.batcher = (
            batcher if batcher is not None else MixedContinuousBatcher()
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.gateway = gateway
        self.ladder = (
            ladder if ladder is not None else DegradationLadder(DECODE_LEVELS)
        )
        self.faults = faults
        self.device = device
        self.seed = seed
        self.graph_cache = GraphCache() if use_graph else None
        self.kv_capacity_tokens = kv_capacity_tokens
        self.kv_block_tokens = kv_block_tokens
        self.weights = (
            weights if weights is not None else init_decode_cell(config, seed)
        )
        self.compute_outputs = compute_outputs
        self.telemetry = telemetry
        #: the arena of the most recent run (inspection/tests)
        self.arena: PagedKVArena | None = None

    # ------------------------------------------------------------------

    def _new_ctx(self) -> ExecutionContext:
        return ExecutionContext(self.device)

    def prompt_for(self, request: Request) -> np.ndarray:
        """Deterministic ``[len, H]`` prompt, independent of batching."""
        rng = np.random.default_rng([self.seed, request.request_id])
        return rng.standard_normal(
            (request.seq_len, self.config.hidden_size)
        )

    def decode_steps_for(self, request: Request, max_context: int) -> int:
        """Tokens ``request`` actually gets under the context cap."""
        return max_decode_steps(
            request.seq_len,
            getattr(request, "decode_tokens", 1),
            max_context,
        )

    def estimate_service_rate(self, max_seq_len: int) -> float:
        """Modelled drain capacity in tokens/µs for the gateway DRR."""
        tile = max(self.batcher.effective_tiles())
        service = estimate_decode_round_tiled(
            self._new_ctx(),
            self.config,
            prefill_tile=tile,
            decode_batch=0,
            kv_tokens=0,
            max_seq_len=max_seq_len,
            block_tokens=self.kv_block_tokens,
        )
        return tile / service

    def _price_round(
        self,
        ctx: ExecutionContext,
        level: DegradationLevel,
        prefill_lens: list[int],
        prefill_tile: int,
        decode_contexts: list[int],
        max_seq_len: int,
    ) -> float:
        if level.decode_path == "looped":
            return estimate_decode_round_looped(
                ctx,
                self.config,
                np.asarray(prefill_lens, dtype=np.int64),
                np.asarray(decode_contexts, dtype=np.int64),
            )
        return estimate_decode_round_tiled(
            ctx,
            self.config,
            prefill_tile=prefill_tile if prefill_lens else 0,
            decode_batch=len(decode_contexts),
            kv_tokens=int(sum(decode_contexts)),
            max_seq_len=max_seq_len,
            block_tokens=self.kv_block_tokens,
            cache=self.graph_cache,
        )

    # ------------------------------------------------------------------

    def run(self, trace: ServingTrace) -> GenerationReport:
        """Replay ``trace``; every request gets exactly one outcome."""
        with use_telemetry(self.telemetry):
            return self._run(trace)

    def _run(self, trace: ServingTrace) -> GenerationReport:
        self.ladder.reset()
        config = self.config
        hidden = config.hidden_size
        heads = config.num_heads
        max_context = trace.max_seq_len
        for request in trace.requests:
            if request.seq_len > self.batcher.token_budget:
                raise TokenBudgetExceededError(
                    f"request {request.request_id} has {request.seq_len} "
                    f"prompt tokens, more than the "
                    f"{self.batcher.token_budget}-token budget"
                )
        plan_faults = FaultPlan(self.faults, seed=self.seed)
        jitter_rng = np.random.default_rng([self.seed, 0x5E])
        outcomes: dict[int, RequestOutcome] = {}
        originals: dict[int, Request] = {}
        burn_stats: dict[str, list[int]] = {}
        tel = self.telemetry
        if tel is not None and not tel.owns_current_thread():
            tel = None
        gateway = self.gateway

        # -- gateway pre-pass ------------------------------------------
        admitted: list[Request] = []
        if gateway is not None:
            if gateway.service_rate is None:
                gateway.service_rate = self.estimate_service_rate(max_context)
            gate = gateway.process(trace)
            for event in gate.rejected:
                originals[event.request.request_id] = event.request
                self._settle(
                    outcomes, originals, burn_stats, tel,
                    event.request, Outcome.REJECTED, event.reason, None, 0,
                    now_us=event.t_us,
                )
            for event in gate.shed:
                originals[event.request.request_id] = event.request
                self._settle(
                    outcomes, originals, burn_stats, tel,
                    event.request, Outcome.SHED, event.reason, None, 0,
                    now_us=event.t_us,
                )
            for sched in gate.admitted:
                orig = sched.request
                originals[orig.request_id] = orig
                wait = sched.release_us - orig.arrival_us
                deadline = orig.deadline_us
                if deadline is not None:
                    deadline = deadline - wait
                    if deadline <= 0.0:
                        self.ladder.record_deadline_miss(sched.release_us)
                        self._settle(
                            outcomes, originals, burn_stats, tel,
                            orig, Outcome.SHED, REASON_DEADLINE, None, 0,
                            now_us=sched.release_us,
                        )
                        continue
                admitted.append(
                    replace(
                        orig,
                        arrival_us=sched.release_us,
                        deadline_us=deadline,
                    )
                )
            admitted.sort(key=lambda r: (r.arrival_us, r.request_id))
        else:
            for request in trace.requests:
                originals[request.request_id] = request
                admitted.append(request)

        # -- the arena, sized to the admitted stream -------------------
        block = self.kv_block_tokens
        if self.kv_capacity_tokens is not None:
            capacity = self.kv_capacity_tokens
        else:
            # full-trajectory blocks per request: never any eviction
            capacity = max(
                block,
                sum(
                    -(
                        -(
                            r.seq_len
                            + self.decode_steps_for(r, max_context)
                            - 1
                        )
                        // block
                    )
                    * block
                    for r in admitted
                ),
            )
        arena = PagedKVArena(
            hidden, capacity, block_tokens=block, dtype=np.float64
        )
        self.arena = arena

        states: dict[int, _GenState] = {}
        for request in admitted:
            states[request.request_id] = _GenState(
                request=request,
                steps_total=self.decode_steps_for(request, max_context),
            )
            prompt_blocks = -(-request.seq_len // block)
            if prompt_blocks > arena.num_blocks:
                # the prompt alone can never fit the arena: refuse at
                # admission instead of deadlocking the eviction loop
                self._settle(
                    outcomes, originals, burn_stats, tel,
                    request, Outcome.SHED, REASON_ADMISSION, None, 0,
                    now_us=request.arrival_us,
                )
                del states[request.request_id]

        pending: deque[Request] = deque(
            s.request
            for s in sorted(
                states.values(),
                key=lambda s: (s.request.arrival_us, s.request.request_id),
            )
        )
        waiting: list[Request] = []
        active: list[int] = []
        paused: list[int] = []
        busy = 0.0
        now = 0.0
        makespan = 0.0
        rounds = 0
        generated = 0
        weights = self.weights
        null_ctx = NullContext()

        def settle_served(state: _GenState, finish: float) -> None:
            nonlocal generated
            rid = state.request.request_id
            self._settle(
                outcomes, originals, burn_stats, tel,
                state.request, Outcome.SERVED, "",
                finish - state.request.arrival_us, state.retries,
                now_us=finish, level=self.ladder.level.name,
                token_times=tuple(state.token_times),
            )
            arena.free(rid)
            if rid in active:
                active.remove(rid)

        def charge_swap(tokens: int, name: str) -> float:
            ctx = self._new_ctx()
            ctx.launch(_kv_swap_launch(tokens, hidden, name))
            return ctx.elapsed_us()

        while pending or waiting or active or paused:
            while pending and pending[0].arrival_us <= now:
                waiting.append(pending.popleft())
            alive, expired = shed_expired(waiting, now)
            for request in expired:
                self.ladder.record_deadline_miss(now)
                self._settle(
                    outcomes, originals, burn_stats, tel,
                    request, Outcome.SHED, REASON_DEADLINE, None, 0,
                    now_us=now,
                )
                states.pop(request.request_id, None)
            waiting = alive
            # resume preempted requests (oldest paused first) while their
            # blocks fit; the swap-in copy is priced, and the restored
            # K/V are bit-for-bit what was evicted
            while paused:
                rid = paused[0]
                need = -(-(states[rid].request.seq_len
                           + len(states[rid].tokens) - 1) // block)
                if need > arena.free_blocks:
                    break
                restored = arena.swap_in(rid)
                us = charge_swap(restored, "kv_swap_in")
                busy += us
                now += us
                makespan = max(makespan, now)
                paused.pop(0)
                active.append(rid)
            round_ = self.batcher.plan_round(waiting, active, now)
            if round_ is None:
                if pending:
                    now = max(now, pending[0].arrival_us)
                    continue
                if paused and not active and not waiting:
                    # can't happen with a paused-fits-alone arena (the
                    # admission check refused larger prompts), but never
                    # spin silently
                    raise RuntimeError(
                        f"paused requests {paused} can never resume"
                    )
                break
            decode_ids = list(round_.decode_ids)
            prefills = list(round_.prefills)

            # -- KV pressure: evict the youngest active streams --------
            def blocks_required() -> int:
                need = sum(arena.blocks_needed(rid, 1) for rid in decode_ids)
                need += sum(-(-r.seq_len // block) for r in prefills)
                return need

            while blocks_required() > arena.free_blocks and active:
                victim = max(
                    active,
                    key=lambda rid: (
                        states[rid].request.arrival_us,
                        rid,
                    ),
                )
                swapped = arena.swap_out(victim)
                us = charge_swap(swapped, "kv_swap_out")
                busy += us
                now += us
                makespan = max(makespan, now)
                active.remove(victim)
                paused.append(victim)
                if victim in decode_ids:
                    decode_ids.remove(victim)
                if tel is not None:
                    tel.metrics.counter(
                        metric_names.KV_EVICTIONS_TOTAL,
                        help="KV arena swap-out preemptions",
                    ).inc()
            while blocks_required() > arena.free_blocks and prefills:
                # even an empty pool can't host every prompt this round:
                # defer the least urgent admissions to a later round
                prefills.pop()
            if not decode_ids and not prefills:
                # everything this round was evicted or deferred.  The
                # eviction freed blocks (or a deferral shrank the ask),
                # so the next iteration's swap-in/plan makes progress:
                # the admission check guarantees any single prompt or
                # paused stream fits an otherwise-empty arena.
                continue

            prefill_lens = [r.seq_len for r in prefills]
            decode_contexts = [
                arena.context_len(rid) + 1 for rid in decode_ids
            ]
            rounds += 1

            # -- the attempt loop (cost plane) -------------------------
            start = now
            attempt = 0
            abandoned = False
            while True:
                level = self.ladder.level
                ctx = plan_faults.install(self._new_ctx())
                try:
                    service = self._price_round(
                        ctx, level, prefill_lens, round_.prefill_tile,
                        decode_contexts, max_context,
                    )
                except TransientFault:
                    partial = ctx.elapsed_us()
                    busy += partial
                    fault_now = start + partial
                    self.ladder.record_fault(fault_now)
                    if tel is not None:
                        tel.metrics.counter(
                            metric_names.FAULTS_TOTAL,
                            help="transient faults injected into attempts",
                        ).inc()
                    if attempt >= self.retry.max_retries:
                        for request in prefills:
                            self._settle(
                                outcomes, originals, burn_stats, tel,
                                request, Outcome.FAILED,
                                REASON_RETRY_BUDGET, None, attempt,
                                now_us=fault_now,
                            )
                            states.pop(request.request_id, None)
                            waiting = [
                                r for r in waiting
                                if r.request_id != request.request_id
                            ]
                        for rid in decode_ids:
                            self._settle(
                                outcomes, originals, burn_stats, tel,
                                states[rid].request, Outcome.FAILED,
                                REASON_RETRY_BUDGET, None,
                                states[rid].retries + attempt,
                                now_us=fault_now,
                            )
                            arena.free(rid)
                            active.remove(rid)
                            del states[rid]
                        now = fault_now
                        makespan = max(makespan, now)
                        abandoned = True
                        break
                    backoff = self.retry.backoff_us(attempt, jitter_rng)
                    if tel is not None:
                        tel.metrics.counter(
                            metric_names.RETRIES_TOTAL,
                            help="dispatch retries after transient faults",
                        ).inc()
                    start = fault_now + backoff
                    attempt += 1
                    continue
                break
            if abandoned:
                continue

            finish = start + service
            busy += service
            now = finish
            makespan = max(makespan, finish)

            # -- commit (numeric plane) --------------------------------
            # One packed QKV GEMM over every row in the round, then
            # per-request attention over arena-gathered K/V, then one
            # packed output GEMM.  KV state mutates only here — a
            # faulted attempt never touched it.
            if self.compute_outputs:
                segments = [self.prompt_for(r) for r in prefills]
                if decode_ids:
                    segments.append(
                        np.stack(
                            [states[rid].tokens[-1] for rid in decode_ids]
                        )
                    )
                packed = np.concatenate(segments) if segments else None
                qkv = gemm(
                    packed, weights.qkv_weight, bias=weights.qkv_bias,
                    ctx=null_ctx, name="decode_qkv", category="decode_gemm",
                )
                attn_rows = []
                offset = 0
                for request in prefills:
                    rid = request.request_id
                    seg = qkv[offset : offset + request.seq_len]
                    offset += request.seq_len
                    arena.append_rows(
                        rid,
                        seg[:, hidden : 2 * hidden],
                        seg[:, 2 * hidden :],
                    )
                    keys, values = arena.gathered(rid)
                    attn_rows.append(
                        attend_to_cache(
                            seg[-1, :hidden], keys, values, heads
                        )
                    )
                for rid in decode_ids:
                    row = qkv[offset]
                    offset += 1
                    arena.append_rows(
                        rid,
                        row[None, hidden : 2 * hidden],
                        row[None, 2 * hidden :],
                    )
                    keys, values = arena.gathered(rid)
                    attn_rows.append(
                        attend_to_cache(row[:hidden], keys, values, heads)
                    )
                out = gemm(
                    np.stack(attn_rows), weights.out_weight,
                    bias=weights.out_bias,
                    ctx=null_ctx, name="decode_out", category="decode_gemm",
                )
            else:
                out = None
                for request in prefills:
                    arena.append_rows(
                        request.request_id,
                        np.zeros((request.seq_len, hidden)),
                        np.zeros((request.seq_len, hidden)),
                    )
                for rid in decode_ids:
                    arena.append_rows(
                        rid, np.zeros((1, hidden)), np.zeros((1, hidden))
                    )

            for i, request in enumerate(prefills):
                rid = request.request_id
                state = states[rid]
                state.tokens.append(
                    out[i] if out is not None else np.zeros(hidden)
                )
                state.token_times.append(finish)
                state.retries += attempt
                generated += 1
                waiting = [r for r in waiting if r.request_id != rid]
                if state.done:
                    settle_served(state, finish)
                else:
                    active.append(rid)
            for j, rid in enumerate(decode_ids):
                state = states[rid]
                state.tokens.append(
                    out[len(prefills) + j]
                    if out is not None
                    else np.zeros(hidden)
                )
                state.token_times.append(finish)
                state.retries += attempt
                generated += 1
                if state.done:
                    settle_served(state, finish)
            self.ladder.record_success(finish)
            if tel is not None:
                tel.tracer.set_now(finish)
                tel.metrics.counter(
                    metric_names.DECODE_TOKENS_TOTAL,
                    help="tokens generated by decode rounds",
                ).inc(len(prefills) + len(decode_ids))
                tel.metrics.histogram(
                    metric_names.KV_BLOCK_OCCUPANCY,
                    help="valid-token fraction of live KV blocks per round",
                    buckets=RATIO_BUCKETS,
                ).observe(arena.occupancy)
                tel.metrics.histogram(
                    metric_names.US_PER_TOKEN,
                    help="modelled service time per valid token (us)",
                    buckets=COUNT_BUCKETS,
                ).observe(service / max(1, round_.total_tokens))
                tel.tracer.instant(
                    "decode.round",
                    category="dispatch",
                    t_us=finish,
                    prefills=len(prefills),
                    decode=len(decode_ids),
                    tile=round_.prefill_tile or None,
                )

        # -- end-of-run gauges & the no-silent-loss contract -----------
        if tel is not None:
            tel.tracer.set_now(makespan)
            tel.metrics.gauge(
                metric_names.KV_BYTES_LIVE,
                help="modelled KV bytes live at the end of the replay",
            ).set(arena.live_bytes)
            tel.metrics.gauge(
                metric_names.KV_BYTES_PEAK,
                help="modelled peak KV bytes over the replay",
            ).set(arena.peak_live_bytes)
            tel.metrics.gauge(
                metric_names.GPU_BUSY_US,
                help="modelled GPU busy time (us)",
            ).set(busy)
            tel.metrics.gauge(
                metric_names.MAKESPAN_US,
                help="modelled makespan of the replay (us)",
            ).set(makespan)
            if self.graph_cache is not None:
                lookups = self.graph_cache.hits + self.graph_cache.misses
                tel.metrics.gauge(
                    metric_names.GRAPH_REPLAY_HIT_RATE,
                    help="launch-graph cache hit rate over the run",
                ).set(
                    self.graph_cache.hits / lookups if lookups else 0.0
                )
        missing = [
            r.request_id
            for r in trace.requests
            if r.request_id not in outcomes
        ]
        if missing:
            raise RuntimeError(
                f"generation runtime lost requests {missing}: every "
                "request must settle as served/shed/failed/rejected"
            )
        outputs = {
            rid: np.stack(state.tokens)
            for rid, state in states.items()
            if state.tokens
            and outcomes[rid].outcome is Outcome.SERVED
            and self.compute_outputs
        }
        token_times = {
            rid: tuple(state.token_times)
            for rid, state in states.items()
            if state.token_times
        }
        return GenerationReport(
            outcomes=tuple(
                outcomes[r.request_id] for r in trace.requests
            ),
            transitions=tuple(self.ladder.transitions),
            injected_faults=tuple(plan_faults.injected),
            top_level=self.ladder.levels[0].name,
            gpu_busy_us=busy,
            makespan_us=makespan,
            outputs=outputs,
            token_times=token_times,
            generated_tokens=generated,
            rounds=rounds,
            kv_stats={
                "capacity_tokens": float(arena.capacity_tokens),
                "peak_live_bytes": float(arena.peak_live_bytes),
                "evictions": float(arena.evictions),
                "swap_ins": float(arena.swap_ins),
                "overflow_allocs": float(arena.overflow_allocs),
            },
            graph_hits=self.graph_cache.hits if self.graph_cache else 0,
            graph_lookups=(
                self.graph_cache.hits + self.graph_cache.misses
                if self.graph_cache
                else 0
            ),
        )

    # ------------------------------------------------------------------

    def _settle(
        self,
        outcomes: dict[int, RequestOutcome],
        originals: dict[int, Request],
        burn_stats: dict[str, list[int]],
        tel: Telemetry | None,
        request: Request,
        outcome: Outcome,
        reason: str,
        latency_us: float | None,
        retries: int,
        *,
        now_us: float,
        level: str | None = None,
        token_times: tuple[float, ...] = (),
    ) -> None:
        orig = originals.get(request.request_id, request)
        if latency_us is not None and orig.arrival_us != request.arrival_us:
            latency_us += request.arrival_us - orig.arrival_us
        if orig.request_id in outcomes:
            raise RuntimeError(f"request {orig.request_id} settled twice")
        outcomes[orig.request_id] = RequestOutcome(
            request_id=orig.request_id,
            outcome=outcome,
            reason=reason,
            latency_us=latency_us,
            retries=retries,
            level=level if level is not None else self.ladder.level.name,
            tenant=orig.tenant,
        )
        gateway = self.gateway
        policy = (
            gateway.policies.get(orig.tenant) if gateway is not None else None
        )
        # per-token streaming accounting: TTFT then inter-token gaps,
        # measured from the ORIGINAL arrival (gateway wait included)
        per_token: list[float] = []
        if token_times:
            gateway_wait = request.arrival_us - orig.arrival_us
            per_token.append(token_times[0] - request.arrival_us + gateway_wait)
            per_token.extend(
                b - a for a, b in zip(token_times, token_times[1:])
            )
        if tel is not None:
            tel.metrics.counter(
                metric_names.REQUESTS_TOTAL,
                help="settled requests by final outcome",
                outcome=outcome.value,
            ).inc()
            if outcome is Outcome.SHED:
                tel.metrics.counter(
                    metric_names.SHED_TOTAL,
                    help="shed requests by reason",
                    reason=reason,
                ).inc()
            if outcome is Outcome.SERVED and latency_us is not None:
                tel.metrics.histogram(
                    metric_names.REQUEST_LATENCY_US,
                    help="end-to-end latency of served requests (us)",
                    buckets=DEFAULT_LATENCY_BUCKETS_US,
                ).observe(latency_us)
            if per_token:
                tel.metrics.histogram(
                    metric_names.TTFT_US,
                    help="time to first generated token (us)",
                    buckets=DEFAULT_LATENCY_BUCKETS_US,
                ).observe(per_token[0])
                for gap in per_token[1:]:
                    tel.metrics.histogram(
                        metric_names.INTER_TOKEN_US,
                        help="gap between consecutive tokens (us)",
                        buckets=DEFAULT_LATENCY_BUCKETS_US,
                    ).observe(gap)
                if orig.tenant:
                    for value in per_token:
                        tel.metrics.histogram(
                            metric_names.TENANT_DECODE_TOKEN_LATENCY_US,
                            help="per-token latency by tenant (us)",
                            buckets=DEFAULT_LATENCY_BUCKETS_US,
                            tenant=orig.tenant,
                        ).observe(value)
            tel.tracer.add_span(
                "request",
                category=REQUEST_CATEGORY,
                start_us=orig.arrival_us,
                end_us=max(orig.arrival_us, now_us),
                request_id=orig.request_id,
                seq_len=orig.seq_len,
                outcome=outcome.value,
                reason=reason,
                retries=retries,
            )
        if policy is not None and policy.qos is QosClass.LATENCY_SLO:
            stats = burn_stats.setdefault(orig.tenant, [0, 0])
            stats[0] += 1
            bad = outcome is not Outcome.SERVED
            if not bad and policy.decode_slo_us is not None and per_token:
                # a served stream whose token cadence blew the tenant's
                # streaming SLO still burns the error budget
                late = sum(1 for v in per_token if v > policy.decode_slo_us)
                bad = late / len(per_token) > (1.0 - policy.slo_target)
            if bad:
                stats[1] += 1
            budget = 1.0 - policy.slo_target
            if budget > 0.0 and stats[1] / stats[0] > budget:
                self.ladder.record_budget_burn(now_us)


def generate_reference_outputs(
    runtime: GenerationRuntime,
    trace: ServingTrace,
) -> dict[int, np.ndarray]:
    """Looped per-request oracle outputs for every request in ``trace``.

    Each request runs alone through
    :func:`~repro.decoder.generation.generate_cell_reference` with the
    same deterministic prompt and step count the runtime uses — the
    bitwise target the batched paged path must reproduce.
    """
    from repro.decoder.generation import generate_cell_reference

    outputs: dict[int, np.ndarray] = {}
    for request in trace.requests:
        steps = runtime.decode_steps_for(request, trace.max_seq_len)
        outputs[request.request_id] = generate_cell_reference(
            runtime.weights,
            runtime.prompt_for(request),
            steps,
            runtime.config.num_heads,
        )
    return outputs
