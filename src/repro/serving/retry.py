"""Retry policy: exponential backoff with jitter on the simulated clock.

A dispatch whose kernel chain hits a transient fault is retried after a
backoff delay.  The delay grows exponentially per attempt (so a flapping
fault does not hot-loop the GPU), is capped, and is jittered so that in
a fleet the retries of co-failing replicas would not re-collide.  All
delays are simulated microseconds — nothing sleeps — and the jitter
comes from a caller-seeded RNG, keeping whole chaos replays
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry import DEFAULT_LATENCY_BUCKETS_US, current_telemetry
from repro.telemetry.slo import BACKOFF_US


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request retry budget and backoff shape."""

    #: attempts beyond the first; 0 disables retries entirely
    max_retries: int = 3
    base_backoff_us: float = 200.0
    multiplier: float = 2.0
    max_backoff_us: float = 20_000.0
    #: +/- relative jitter applied to each backoff (0 = deterministic)
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_us < 0 or self.max_backoff_us < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.max_backoff_us < self.base_backoff_us:
            raise ValueError("max_backoff_us must be >= base_backoff_us")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_us(self, attempt: int, rng: np.random.Generator) -> float:
        """Simulated delay before retrying after failed attempt ``attempt``.

        ``attempt`` is zero-based (the first failure backs off by roughly
        ``base_backoff_us``); the exponential growth is capped and then
        jittered by up to ``+/- jitter`` relative.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        raw = min(
            self.base_backoff_us * self.multiplier**attempt,
            self.max_backoff_us,
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        tel = current_telemetry()
        if tel is not None and tel.owns_current_thread():
            # observation only: the jitter draw above happened whether or
            # not telemetry is installed, so replays stay deterministic
            tel.metrics.histogram(
                BACKOFF_US,
                help="retry backoff delays (us)",
                buckets=DEFAULT_LATENCY_BUCKETS_US,
            ).observe(raw)
        return raw


#: retries disabled: the first transient fault fails the dispatch
NO_RETRIES = RetryPolicy(max_retries=0)
