"""Multi-device sharding for the serving tier.

:class:`ShardConfig` declares how the serving runtime spreads work over
an N-device cluster:

* ``"dp"`` — data parallel: every device holds the full model and the
  :class:`ShardRouter` splits the admitted request stream across
  per-device batcher plans, balanced by Σlen² (attention work), not
  request count.
* ``"tp"`` — tensor parallel: all devices cooperate on every megabatch
  (Megatron column/row sharding with two all-reduces per layer, see
  :class:`~repro.core.sharding.ShardSpec`); one logical queue.
* ``"both"`` — ``devices // tp_size`` data-parallel replicas, each a
  ``tp_size``-way tensor-parallel group.

The router balances *work*: per-segment attention cost scales with
len², so an equal-count split systematically overloads whichever device
draws the long sequences (the unpadded-BERT distributed-training
observation).  Routing is windowed and deterministic — a pure function
of ``(requests, replicas)`` — so sharded replays stay reproducible and
the bitwise-oracle contract survives re-routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.parallel import partition_weighted
from repro.core.sharding import ShardSpec
from repro.gpusim.device import DeviceSpec
from repro.gpusim.interconnect import (
    NVLINK3_LINK,
    ClusterSpec,
    LinkSpec,
    make_cluster,
)
from repro.workloads.serving import Request

#: accepted sharding modes
SHARD_MODES = ("dp", "tp", "both")


@dataclass(frozen=True)
class ShardConfig:
    """How the serving runtime spreads a trace over ``devices`` GPUs."""

    devices: int = 1
    mode: str = "dp"
    #: tensor-parallel group size; defaults to ``devices`` for ``"tp"``
    #: and is required for ``"both"``
    tp_size: int | None = None
    link: LinkSpec = NVLINK3_LINK

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.mode not in SHARD_MODES:
            raise ValueError(
                f"mode must be one of {SHARD_MODES}, got {self.mode!r}"
            )
        if self.mode == "dp":
            if self.tp_size not in (None, 1):
                raise ValueError("dp mode does not take a tp_size")
        elif self.mode == "tp":
            if self.tp_size is not None and self.tp_size != self.devices:
                raise ValueError(
                    f"tp mode uses all {self.devices} devices as one "
                    f"group, got tp_size={self.tp_size}"
                )
        else:  # both
            if self.tp_size is None:
                raise ValueError("mode='both' needs an explicit tp_size")
            if self.tp_size < 2:
                raise ValueError(
                    f"tp_size must be >= 2 for mode='both', got "
                    f"{self.tp_size}"
                )
            if self.devices % self.tp_size != 0:
                raise ValueError(
                    f"tp_size {self.tp_size} must divide devices "
                    f"{self.devices}"
                )

    @property
    def tp(self) -> int:
        """Tensor-parallel group size (1 when not tensor parallel)."""
        if self.mode == "tp":
            return self.devices
        if self.mode == "both":
            return int(self.tp_size)  # type: ignore[arg-type]
        return 1

    @property
    def replicas(self) -> int:
        """Independent data-parallel serving lanes."""
        return self.devices // self.tp

    @property
    def shard_spec(self) -> ShardSpec | None:
        """The rank-0 shard each replica prices its forwards at.

        Rank 0 holds the largest head/FFN share (remainders go low), so
        its kernel chain is the tensor-parallel group's critical path —
        pricing rank 0 prices the group.  ``None`` when not sharded.
        """
        if self.tp == 1:
            return None
        return ShardSpec(tp=self.tp, rank=0)

    def build_cluster(self, device: DeviceSpec) -> ClusterSpec | None:
        """The priced interconnect, or ``None`` on a single device."""
        if self.devices == 1:
            return None
        return make_cluster(self.devices, device=device, link=self.link)


class ShardRouter:
    """Deterministic Σlen²-balanced request routing across replicas.

    Requests are consumed in arrival order in windows of
    ``replicas * window_per_replica``; inside each window
    :func:`~repro.core.parallel.partition_weighted` (quadratic mode)
    cuts the window into contiguous chunks of near-equal attention
    work, and chunks land heaviest-first on the least-loaded replica.
    Contiguous cuts keep every replica's stream in arrival order, which
    keeps per-device batcher plans well-formed; windowing keeps the
    balance adaptive over a drifting length mix without ever looking
    ahead more than one window.
    """

    def __init__(self, replicas: int, window_per_replica: int = 8) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if window_per_replica < 1:
            raise ValueError(
                f"window_per_replica must be >= 1, got {window_per_replica}"
            )
        self.replicas = replicas
        self.window_per_replica = window_per_replica

    def route(self, requests: Sequence[Request]) -> list[list[Request]]:
        """Split ``requests`` into one arrival-ordered list per replica."""
        reqs = list(requests)
        if self.replicas == 1:
            return [reqs]
        buckets: list[list[Request]] = [[] for _ in range(self.replicas)]
        load = [0.0] * self.replicas
        window = self.replicas * self.window_per_replica
        for w0 in range(0, len(reqs), window):
            win = reqs[w0:w0 + window]
            lens = [r.seq_len for r in win]
            chunks = partition_weighted(lens, self.replicas, quadratic=True)
            work = [
                float(sum(l * l for l in lens[s:e])) for s, e in chunks
            ]
            # heaviest chunk claims the least-loaded replica first
            order = sorted(
                range(len(chunks)), key=lambda i: (-work[i], i)
            )
            assigned: list[tuple[int, int]] = []
            for ci in order:
                dev = min(
                    range(self.replicas), key=lambda d: (load[d], d)
                )
                load[dev] += work[ci]
                assigned.append((ci, dev))
            # append in chunk order so each bucket stays arrival-ordered
            # even when one replica wins several chunks of the window
            for ci, dev in sorted(assigned):
                s, e = chunks[ci]
                buckets[dev].extend(win[s:e])
        return buckets

    def routed_work(
        self, buckets: Sequence[Sequence[Request]]
    ) -> list[float]:
        """Σlen² per bucket — the balance the imbalance gauge reports."""
        return [
            float(sum(r.seq_len * r.seq_len for r in bucket))
            for bucket in buckets
        ]
