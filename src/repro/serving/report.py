"""Per-request accounting for a chaos replay.

The core robustness contract is *no silent loss*: every request that
enters the runtime leaves it with exactly one recorded outcome — served
(possibly after retries, possibly at a degraded level), shed (by
admission control or its deadline), or failed (retry budget exhausted).
:class:`ServingReport` holds those outcomes plus the degradation
transitions and the fault-injection log, and renders latency percentiles
split by how the request was handled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.serving.degradation import LadderTransition
from repro.serving.faults import InjectedFault
from repro.telemetry import DEFAULT_LATENCY_BUCKETS_US, Histogram


class Outcome(enum.Enum):
    """Final disposition of one request."""

    SERVED = "served"
    SHED = "shed"
    FAILED = "failed"
    #: turned away at the gateway with explicit backpressure (rate
    #: limit / unknown tenant) — the client was *told* to go away,
    #: distinct from shedding work that had been accepted
    REJECTED = "rejected"


#: reasons attached to non-served outcomes
REASON_ADMISSION = "admission"
REASON_DEADLINE = "deadline"
REASON_RETRY_BUDGET = "retry-budget"
#: gateway reasons (see :mod:`repro.serving.gateway`): token-bucket
#: rejection with a retry-after, bounded-queue oldest-shed overflow
REASON_RATE_LIMIT = "rate-limit"
REASON_QUEUE_OVERFLOW = "queue-overflow"


@dataclass(frozen=True)
class RequestOutcome:
    """One request's final accounting entry."""

    request_id: int
    outcome: Outcome
    #: why a non-served request ended that way; empty for served
    reason: str
    #: end-to-end latency for served requests, else ``None``
    latency_us: float | None
    #: transient-fault retries the request's dispatch went through
    retries: int
    #: degradation level the request was finally handled at
    level: str
    #: owning tenant ("" for single-tenant traces)
    tenant: str = ""


@dataclass(frozen=True)
class ServingReport:
    """Everything a chaos replay is accountable for."""

    outcomes: tuple[RequestOutcome, ...]
    transitions: tuple[LadderTransition, ...]
    injected_faults: tuple[InjectedFault, ...]
    #: name of the ladder's top rung ("not degraded")
    top_level: str
    gpu_busy_us: float
    makespan_us: float
    #: served numeric outputs by request id (empty when the runtime ran
    #: on the cost plane only); never part of equality/log comparisons
    outputs: dict[int, np.ndarray] = field(default_factory=dict, compare=False)
    #: per-device modelled busy time; ``(gpu_busy_us,)`` on one device
    device_busy_us: tuple[float, ...] = ()
    #: dispatches executed away from their routed home device
    work_steals: int = 0

    def by_outcome(self, outcome: Outcome) -> tuple[RequestOutcome, ...]:
        return tuple(o for o in self.outcomes if o.outcome is outcome)

    def by_tenant(self, tenant: str) -> tuple[RequestOutcome, ...]:
        return tuple(o for o in self.outcomes if o.tenant == tenant)

    @property
    def tenants(self) -> tuple[str, ...]:
        """Distinct tenants in outcome order (single-tenant: ``("",)``)."""
        seen: dict[str, None] = {}
        for o in self.outcomes:
            seen.setdefault(o.tenant)
        return tuple(seen)

    @property
    def served(self) -> tuple[RequestOutcome, ...]:
        return self.by_outcome(Outcome.SERVED)

    @property
    def shed(self) -> tuple[RequestOutcome, ...]:
        return self.by_outcome(Outcome.SHED)

    @property
    def failed(self) -> tuple[RequestOutcome, ...]:
        return self.by_outcome(Outcome.FAILED)

    @property
    def rejected(self) -> tuple[RequestOutcome, ...]:
        return self.by_outcome(Outcome.REJECTED)

    @property
    def num_requests(self) -> int:
        return len(self.outcomes)

    def counts(self) -> dict[str, int]:
        """Outcome tally, plus the retried/degraded served splits."""
        served = self.served
        return {
            "served": len(served),
            "served-retried": sum(1 for o in served if o.retries > 0),
            "served-degraded": sum(
                1 for o in served if o.level != self.top_level
            ),
            "shed": len(self.shed),
            "failed": len(self.failed),
            "rejected": len(self.rejected),
        }

    def latency_summary(self) -> dict[str, dict[str, float]]:
        """p50/p95/p99/mean (ms) for served requests, split by handling.

        Groups: ``all`` served requests, ``clean`` (no retries, top
        level), ``retried`` and ``degraded`` (overlapping splits).
        """
        groups = {
            "all": self.served,
            "clean": tuple(
                o
                for o in self.served
                if o.retries == 0 and o.level == self.top_level
            ),
            "retried": tuple(o for o in self.served if o.retries > 0),
            "degraded": tuple(
                o for o in self.served if o.level != self.top_level
            ),
        }
        summary: dict[str, dict[str, float]] = {}
        for name, group in groups.items():
            if not group:
                continue
            # the telemetry Histogram keeps exact samples, so its
            # percentiles match np.percentile over the raw latencies
            hist = Histogram(
                "request_latency_ms",
                labels=(("group", name),),
                buckets=[b / 1000.0 for b in DEFAULT_LATENCY_BUCKETS_US],
            )
            for o in group:
                hist.observe(o.latency_us / 1000.0)
            quantiles = hist.percentiles((50.0, 95.0, 99.0))
            summary[name] = {
                "count": float(hist.count),
                "mean_ms": hist.mean,
                "p50_ms": quantiles["p50"],
                "p95_ms": quantiles["p95"],
                "p99_ms": quantiles["p99"],
            }
        return summary

    def outcome_log(self) -> tuple[tuple, ...]:
        """Canonical, comparable form of the per-request outcomes.

        Two chaos replays of the same trace with the same fault seed must
        produce equal logs — this is what the determinism tests compare.
        """
        return tuple(
            (
                o.request_id,
                o.outcome.value,
                o.reason,
                o.retries,
                o.level,
                None if o.latency_us is None else round(o.latency_us, 6),
            )
            for o in self.outcomes
        )

    def fault_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for fault in self.injected_faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    def render_text(self) -> str:
        """Human-readable chaos replay summary."""
        lines = [
            f"serving report: {self.num_requests} requests, "
            f"makespan {self.makespan_us / 1000:.2f} ms, "
            f"GPU busy {self.gpu_busy_us / 1000:.2f} ms",
        ]
        counts = self.counts()
        lines.append(
            "  outcomes: "
            + ", ".join(f"{k}={v}" for k, v in counts.items())
        )
        faults = self.fault_counts()
        lines.append(
            "  injected faults: "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(faults.items()))
                if faults
                else "none"
            )
        )
        for name, stats in self.latency_summary().items():
            lines.append(
                f"  latency[{name}] n={int(stats['count'])}: "
                f"mean {stats['mean_ms']:.2f} ms, "
                f"p50 {stats['p50_ms']:.2f}, "
                f"p95 {stats['p95_ms']:.2f}, "
                f"p99 {stats['p99_ms']:.2f}"
            )
        if self.transitions:
            lines.append("  degradation transitions:")
            for t in self.transitions:
                lines.append(
                    f"    {t.time_us / 1000:10.2f} ms  "
                    f"{t.from_level} -> {t.to_level}  ({t.reason})"
                )
        else:
            lines.append("  degradation transitions: none")
        return "\n".join(lines)
