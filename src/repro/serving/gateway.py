"""Multi-tenant admission gateway: QoS, fairness and overload protection.

The gateway sits between open-loop traffic
(:mod:`repro.workloads.traffic`) and the
:class:`~repro.workloads.batching.ContinuousBatcher`.  Its job is the
one that actually decides whether transformer serving survives
production: converting an unbounded arrival stream into a bounded,
fairly-shared, reason-annotated admission stream.  Four mechanisms:

* **Token-bucket rate limiting** per tenant, denominated in *sequence
  tokens* (the resource the GPU actually spends), with an explicit
  ``retry_after_us`` on every rejection — backpressure the client can
  act on instead of a silent drop.
* **Bounded per-tenant queues** with an *oldest-shed* overload policy:
  when a tenant's queue is full, the oldest queued request is shed (it
  has burned the most deadline already and is the least likely to be
  worth serving) and the fresh arrival takes its place.  This bounds
  both memory and staleness.
* **Weighted-fair sharing** of the drain capacity via deficit round
  robin over Sigma-len: each round a tenant's deficit grows by
  ``weight * quantum`` tokens and it releases whole requests while the
  deficit covers them — so over any sustained-backlog interval tenant
  throughput (in tokens, the unit the GPU prices) converges to the
  configured weight ratio regardless of request sizes.
* **QoS classes with shed precedence**: a ``latency-slo`` tenant's
  requests are never shed by global overload pressure while any
  ``throughput-batch`` request is queued — batch tenants absorb the
  overload first (they have no deadline to blow), which is what keeps
  SLO attainment flat through a flash crowd.

The gateway runs as a seeded, deterministic pre-pass on the simulated
clock (the same plan-then-replay architecture the batchers use): it
walks arrivals in time order, drains a virtual server at the modelled
service rate between arrivals, and emits a :class:`GatewayResult` whose
conservation law — ``len(trace) == admitted + rejected + shed`` — the
runtime enforces on top of its own no-silent-loss contract.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

from repro.workloads.serving import Request, ServingTrace

__all__ = [
    "QosClass",
    "TokenBucket",
    "TenantPolicy",
    "AdmissionGateway",
    "GatewayResult",
    "ScheduledRequest",
    "GatewayEvent",
    "REASON_RATE_LIMIT",
    "REASON_QUEUE_OVERFLOW",
    "REASON_UNKNOWN_TENANT",
]

#: gateway-originated outcome reasons
REASON_RATE_LIMIT = "rate-limit"
REASON_QUEUE_OVERFLOW = "queue-overflow"
REASON_UNKNOWN_TENANT = "unknown-tenant"


class QosClass(enum.Enum):
    """How a tenant trades latency against throughput."""

    #: interactive traffic with a deadline SLO: protected from shedding
    #: and degradation for as long as batch traffic can absorb them
    LATENCY_SLO = "latency-slo"
    #: bulk traffic that absorbs overload: shed first, degraded first
    THROUGHPUT_BATCH = "throughput-batch"


class TokenBucket:
    """A deterministic token bucket on the simulated clock.

    Capacity ``burst`` tokens, refilled continuously at ``rate_per_us``.
    ``take`` is all-or-nothing; a failed take reports how long the
    caller must wait for the bucket to refill enough — the
    ``Retry-After`` the gateway attaches to rate-limit rejections.
    """

    def __init__(self, rate_per_us: float, burst: float) -> None:
        if rate_per_us <= 0 or burst <= 0:
            raise ValueError(
                f"rate_per_us and burst must be positive, got "
                f"{rate_per_us}, {burst}"
            )
        self.rate_per_us = rate_per_us
        self.burst = float(burst)
        self._level = float(burst)
        self._last_us = 0.0

    def _refill(self, now_us: float) -> None:
        if now_us > self._last_us:
            self._level = min(
                self.burst,
                self._level + (now_us - self._last_us) * self.rate_per_us,
            )
            self._last_us = now_us

    def level(self, now_us: float) -> float:
        self._refill(now_us)
        return self._level

    def take(self, now_us: float, amount: float) -> bool:
        """Take ``amount`` tokens at ``now_us``; False if short."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self._refill(now_us)
        if amount > self.burst:
            # can never fit: permanently over the burst capacity
            return False
        if self._level >= amount:
            self._level -= amount
            return True
        return False

    def retry_after_us(self, now_us: float, amount: float) -> float:
        """How long until ``amount`` tokens could be available.

        ``inf`` for requests larger than the burst capacity — no amount
        of waiting makes those admissible.
        """
        self._refill(now_us)
        if amount > self.burst:
            return float("inf")
        deficit = amount - self._level
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_per_us


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission contract."""

    name: str
    qos: QosClass = QosClass.LATENCY_SLO
    #: weighted-fair share of the drain capacity (relative)
    weight: float = 1.0
    #: sustained token rate (sequence tokens per second); ``None``
    #: disables rate limiting for the tenant
    rate_tokens_per_s: float | None = None
    #: burst capacity of the token bucket (tokens); defaults to one
    #: second's worth of the sustained rate
    burst_tokens: float | None = None
    #: bounded queue: most sequence tokens the tenant may have waiting
    max_queue_tokens: int = 16_384
    #: availability target the tenant's error budget is burned against
    slo_target: float = 0.99
    #: deadline-attainment floor for latency-SLO tenants (checked by
    #: ``repro loadtest --check``)
    attainment_target: float = 0.99
    #: per-generated-token latency target for decode serving: the
    #: tenant's inter-token gaps (and TTFT) should land under this.
    #: ``None`` leaves the tenant without a streaming SLO — encoder
    #: tenants and pre-decode configs are untouched.
    decode_slo_us: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant policy needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.rate_tokens_per_s is not None and self.rate_tokens_per_s <= 0:
            raise ValueError("rate_tokens_per_s must be positive")
        if self.burst_tokens is not None and self.burst_tokens <= 0:
            raise ValueError("burst_tokens must be positive")
        if self.max_queue_tokens <= 0:
            raise ValueError("max_queue_tokens must be positive")
        if not 0.0 < self.slo_target <= 1.0:
            raise ValueError(
                f"slo_target must be in (0, 1], got {self.slo_target}"
            )
        if not 0.0 < self.attainment_target <= 1.0:
            raise ValueError(
                f"attainment_target must be in (0, 1], got "
                f"{self.attainment_target}"
            )
        if self.decode_slo_us is not None and self.decode_slo_us <= 0:
            raise ValueError(
                f"decode_slo_us must be positive, got {self.decode_slo_us}"
            )

    def make_bucket(self) -> TokenBucket | None:
        if self.rate_tokens_per_s is None:
            return None
        rate_per_us = self.rate_tokens_per_s / 1e6
        burst = (
            self.burst_tokens
            if self.burst_tokens is not None
            else self.rate_tokens_per_s  # one second of sustained rate
        )
        return TokenBucket(rate_per_us, burst)


@dataclass(frozen=True)
class GatewayEvent:
    """One request the gateway turned away, with its reason."""

    request: Request
    reason: str
    t_us: float
    #: for rate-limit rejections: when the client may retry (``inf`` if
    #: the request can never fit the bucket); ``None`` otherwise
    retry_after_us: float | None = None


@dataclass(frozen=True)
class ScheduledRequest:
    """An admitted request and the instant DRR released it downstream."""

    request: Request
    release_us: float


@dataclass(frozen=True)
class GatewayResult:
    """Everything the gateway decided for one trace.

    Conservation: every trace request appears in exactly one of
    ``admitted`` / ``rejected`` / ``shed`` (checked by
    :meth:`validate_conservation`).
    """

    admitted: tuple[ScheduledRequest, ...]
    rejected: tuple[GatewayEvent, ...]
    shed: tuple[GatewayEvent, ...]

    def validate_conservation(self, trace: ServingTrace) -> None:
        settled = sorted(
            [s.request.request_id for s in self.admitted]
            + [e.request.request_id for e in self.rejected]
            + [e.request.request_id for e in self.shed]
        )
        expected = sorted(r.request_id for r in trace.requests)
        if settled != expected:
            raise AssertionError(
                "gateway lost or duplicated requests: "
                f"settled {len(settled)} of {len(expected)}"
            )

    def per_tenant_counts(self) -> dict[str, dict[str, int]]:
        counts: dict[str, dict[str, int]] = {}

        def bump(tenant: str, key: str) -> None:
            entry = counts.setdefault(
                tenant, {"admitted": 0, "rejected": 0, "shed": 0}
            )
            entry[key] += 1

        for s in self.admitted:
            bump(s.request.tenant, "admitted")
        for e in self.rejected:
            bump(e.request.tenant, "rejected")
        for e in self.shed:
            bump(e.request.tenant, "shed")
        return counts


class _TenantState:
    """Mutable per-tenant gateway state during one pre-pass."""

    def __init__(self, policy: TenantPolicy) -> None:
        self.policy = policy
        self.bucket = policy.make_bucket()
        self.queue: deque[Request] = deque()
        self.queued_tokens = 0
        self.deficit = 0.0

    def enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self.queued_tokens += request.seq_len

    def dequeue(self) -> Request:
        request = self.queue.popleft()
        self.queued_tokens -= request.seq_len
        return request

    def shed_oldest(self) -> Request:
        return self.dequeue()


class AdmissionGateway:
    """Deterministic multi-tenant admission pre-pass.

    Parameters
    ----------
    policies:
        One :class:`TenantPolicy` per tenant the gateway serves.
        Requests from unknown tenants are rejected with
        :data:`REASON_UNKNOWN_TENANT` — admission is allow-listed, the
        safe default for a multi-tenant front door.
    service_rate_tokens_per_us:
        Drain capacity of the virtual server DRR shares: modelled GPU
        throughput in sequence tokens per simulated microsecond.
        ``None`` (the default) lets the serving runtime fill it in from
        its own cost model at the start of a run (see
        ``ServingRuntime.estimate_service_rate``).
    quantum_tokens:
        DRR quantum: tokens of deficit a weight-1.0 tenant earns per
        round.  Smaller quanta interleave tenants more finely; the
        default is one typical sequence.
    max_total_queue_tokens:
        Global bound on queued tokens across every tenant.  When an
        admission pushes the total over it, the gateway sheds the
        *oldest batch-class* queued request first; latency-SLO requests
        are only ever shed by global pressure once no batch-class
        request remains queued — the class-precedence invariant the
        preemption tests pin down.  ``None`` disables the global bound.
    """

    def __init__(
        self,
        policies: list[TenantPolicy] | tuple[TenantPolicy, ...],
        *,
        service_rate_tokens_per_us: float | None = None,
        quantum_tokens: int = 256,
        max_total_queue_tokens: int | None = None,
    ) -> None:
        if not policies:
            raise ValueError("the gateway needs at least one tenant policy")
        names = [p.name for p in policies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant policies for {names}")
        if (
            service_rate_tokens_per_us is not None
            and service_rate_tokens_per_us <= 0
        ):
            raise ValueError(
                "service_rate_tokens_per_us must be positive, got "
                f"{service_rate_tokens_per_us}"
            )
        if quantum_tokens <= 0:
            raise ValueError(
                f"quantum_tokens must be positive, got {quantum_tokens}"
            )
        if max_total_queue_tokens is not None and max_total_queue_tokens <= 0:
            raise ValueError(
                "max_total_queue_tokens must be positive, got "
                f"{max_total_queue_tokens}"
            )
        self.max_total_queue_tokens = max_total_queue_tokens
        self.policies = {p.name: p for p in policies}
        self.service_rate = (
            float(service_rate_tokens_per_us)
            if service_rate_tokens_per_us is not None
            else None
        )
        self.quantum_tokens = int(quantum_tokens)

    def qos_of(self, tenant: str) -> QosClass:
        policy = self.policies.get(tenant)
        return policy.qos if policy is not None else QosClass.THROUGHPUT_BATCH

    # ------------------------------------------------------------------

    def process(self, trace: ServingTrace) -> GatewayResult:
        """Run the admission pre-pass over ``trace``.

        Walks arrivals in time order; between arrivals the virtual
        server drains queued requests at ``service_rate`` with DRR
        fairness.  Decisions depend only on ``(trace, policies,
        service_rate, quantum)`` — no randomness — so the same inputs
        always produce the same admissions, rejections and sheds.
        """
        if self.service_rate is None:
            raise ValueError(
                "gateway has no service rate; pass "
                "service_rate_tokens_per_us or run it through a "
                "ServingRuntime, which fills it in from the cost model"
            )
        states: dict[str, _TenantState] = {
            name: _TenantState(policy)
            for name, policy in self.policies.items()
        }
        order = list(states)  # DRR visit order: policy declaration order
        admitted: list[ScheduledRequest] = []
        rejected: list[GatewayEvent] = []
        shed: list[GatewayEvent] = []
        #: when the virtual drain server frees up
        server_free_us = 0.0
        #: persistent DRR cursor: which tenant's turn it is, and whether
        #: that turn has been granted its quantum yet.  The cursor MUST
        #: survive across drain calls — restarting the rotation at the
        #: first tenant every time a fresh arrival interrupts the drain
        #: would hand the whole server to the first backlogged tenant
        #: under dense arrivals (each drain window fits one turn), which
        #: is exactly the unfairness DRR exists to prevent.
        cursor = {"idx": 0, "fresh": True}

        def end_turn(state: _TenantState) -> None:
            if not state.queue:
                # an idle tenant accrues no deficit (standard DRR)
                state.deficit = 0.0
            cursor["idx"] += 1
            cursor["fresh"] = True

        def drain_until(now_us: float) -> None:
            """Release queued requests whose service fits before now."""
            nonlocal server_free_us
            while server_free_us <= now_us and any(
                states[t].queue for t in order
            ):
                tenant = order[cursor["idx"] % len(order)]
                state = states[tenant]
                if not state.queue:
                    end_turn(state)
                    continue
                if cursor["fresh"]:
                    state.deficit += self.quantum_tokens * state.policy.weight
                    cursor["fresh"] = False
                while state.queue and (
                    state.deficit >= state.queue[0].seq_len
                ):
                    head = state.queue[0]
                    start = max(server_free_us, head.arrival_us)
                    if start > now_us:
                        # head arrives later; resume this turn (deficit
                        # and cursor kept) on a later drain call
                        return
                    state.dequeue()
                    state.deficit -= head.seq_len
                    server_free_us = start + head.seq_len / self.service_rate
                    admitted.append(
                        ScheduledRequest(head, release_us=start)
                    )
                    if server_free_us > now_us:
                        if not state.queue or (
                            state.deficit < state.queue[0].seq_len
                        ):
                            end_turn(state)
                        return
                # deficit exhausted (or queue empty): next tenant's turn
                end_turn(state)

        def overflow_shed(state: _TenantState, now_us: float) -> None:
            """Oldest-shed until the tenant's queue fits its bound."""
            while (
                state.queue
                and state.queued_tokens > state.policy.max_queue_tokens
            ):
                victim = state.shed_oldest()
                shed.append(
                    GatewayEvent(
                        victim, REASON_QUEUE_OVERFLOW, t_us=now_us
                    )
                )

        def global_shed(now_us: float) -> None:
            """Class-precedence oldest-shed against the global bound.

            Victims come from batch-class queues first (oldest arrival
            across them); a latency-SLO request is only shed once no
            batch-class request remains queued anywhere.
            """
            cap = self.max_total_queue_tokens
            if cap is None:
                return
            while sum(s.queued_tokens for s in states.values()) > cap:
                for qos in (QosClass.THROUGHPUT_BATCH, QosClass.LATENCY_SLO):
                    candidates = [
                        s
                        for s in states.values()
                        if s.queue and s.policy.qos is qos
                    ]
                    if candidates:
                        victim_state = min(
                            candidates,
                            key=lambda s: (
                                s.queue[0].arrival_us,
                                s.queue[0].request_id,
                            ),
                        )
                        shed.append(
                            GatewayEvent(
                                victim_state.shed_oldest(),
                                REASON_QUEUE_OVERFLOW,
                                t_us=now_us,
                            )
                        )
                        break
                else:  # nothing queued at all
                    return

        for request in trace.requests:
            now = request.arrival_us
            drain_until(now)
            state = states.get(request.tenant)
            if state is None:
                rejected.append(
                    GatewayEvent(request, REASON_UNKNOWN_TENANT, t_us=now)
                )
                continue
            if state.bucket is not None and not state.bucket.take(
                now, request.seq_len
            ):
                rejected.append(
                    GatewayEvent(
                        request,
                        REASON_RATE_LIMIT,
                        t_us=now,
                        retry_after_us=state.bucket.retry_after_us(
                            now, request.seq_len
                        ),
                    )
                )
                continue
            if request.seq_len > state.policy.max_queue_tokens:
                # can never fit the queue bound: reject outright rather
                # than shedding the whole queue to make room
                rejected.append(
                    GatewayEvent(request, REASON_QUEUE_OVERFLOW, t_us=now)
                )
                continue
            state.enqueue(request)
            overflow_shed(state, now)
            global_shed(now)

        # close the horizon: drain whatever is still queued
        while any(states[t].queue for t in order):
            horizon = server_free_us + self.quantum_tokens / self.service_rate
            drain_until(
                max(
                    horizon,
                    max(
                        states[t].queue[0].arrival_us
                        for t in order
                        if states[t].queue
                    ),
                )
            )

        result = GatewayResult(
            admitted=tuple(admitted),
            rejected=tuple(rejected),
            shed=tuple(shed),
        )
        result.validate_conservation(trace)
        return result
