"""Fault-tolerant serving runtime.

ByteTransformer's setting is *online* inference; this package makes the
reproduction's serving emulator survive it: seeded fault injection into
the kernel-launch path (:mod:`~repro.serving.faults`), retry with
exponential backoff on the simulated clock (:mod:`~repro.serving.retry`),
deadline shedding and high-water-mark admission control
(:mod:`~repro.serving.admission`), a multi-tenant admission gateway with
QoS classes, weighted-fair sharing and overload protection
(:mod:`~repro.serving.gateway`), graceful engine degradation
(:mod:`~repro.serving.degradation`), and per-request outcome accounting
(:mod:`~repro.serving.report`), all orchestrated by
:class:`~repro.serving.runtime.ServingRuntime`.
"""

from repro.serving.admission import AdmissionController
from repro.serving.gateway import (
    AdmissionGateway,
    GatewayEvent,
    GatewayResult,
    QosClass,
    REASON_QUEUE_OVERFLOW,
    REASON_RATE_LIMIT,
    REASON_UNKNOWN_TENANT,
    ScheduledRequest,
    TenantPolicy,
    TokenBucket,
)
from repro.serving.continuous import (
    DEFAULT_TILES,
    ContinuousBatcher,
    TokenBudgetExceededError,
    build_megabatch,
    quantize_tile,
    retile,
    scatter_outputs,
)
from repro.serving.degradation import (
    DEFAULT_LEVELS,
    DegradationLadder,
    DegradationLevel,
    LadderTransition,
)
from repro.serving.faults import (
    LAUNCH_FAILURE,
    NO_FAULTS,
    SLOW_KERNEL,
    TRANSIENT_OOM,
    WORKER_HANG,
    WORKER_KILL,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.serving.report import (
    Outcome,
    REASON_ADMISSION,
    REASON_DEADLINE,
    REASON_RETRY_BUDGET,
    RequestOutcome,
    ServingReport,
)
from repro.serving.retry import NO_RETRIES, RetryPolicy
from repro.serving.runtime import ServingRuntime

__all__ = [
    "AdmissionController",
    "AdmissionGateway",
    "GatewayEvent",
    "GatewayResult",
    "QosClass",
    "REASON_QUEUE_OVERFLOW",
    "REASON_RATE_LIMIT",
    "REASON_UNKNOWN_TENANT",
    "ScheduledRequest",
    "TenantPolicy",
    "TokenBucket",
    "WORKER_HANG",
    "WORKER_KILL",
    "DEFAULT_TILES",
    "ContinuousBatcher",
    "TokenBudgetExceededError",
    "build_megabatch",
    "quantize_tile",
    "retile",
    "scatter_outputs",
    "DEFAULT_LEVELS",
    "DegradationLadder",
    "DegradationLevel",
    "LadderTransition",
    "LAUNCH_FAILURE",
    "NO_FAULTS",
    "SLOW_KERNEL",
    "TRANSIENT_OOM",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "Outcome",
    "REASON_ADMISSION",
    "REASON_DEADLINE",
    "REASON_RETRY_BUDGET",
    "RequestOutcome",
    "ServingReport",
    "NO_RETRIES",
    "RetryPolicy",
    "ServingRuntime",
]
