"""The fault-tolerant serving runtime: chaos-replay a request trace.

:class:`ServingRuntime` layers the robustness machinery over the
existing trace replay: a seeded :class:`~repro.serving.faults.FaultPlan`
injects transient kernel faults into the dispatch pricing path, a
:class:`~repro.serving.retry.RetryPolicy` re-issues faulted dispatches
with exponential backoff on the simulated clock, deadline shedding and
:class:`~repro.serving.admission.AdmissionController` keep overload from
turning into late timeouts, and a
:class:`~repro.serving.degradation.DegradationLadder` steps the engine
onto conservative paths under pressure and back up after a cool-down.

Two planes, one contract
------------------------
Latency lives on the *cost plane*: each dispatch's service time is the
modelled time of the kernel chain the active degradation level implies
(fused / zeropad / unfused attention), and faults strike that chain.
Served bits live on the *numeric plane*: outputs are computed
per-request by the numeric model under the active host engine.  All
engines and attention fallbacks compute the same function — and the
``vectorized``/``looped`` engines are bit-identical by construction —
so a chaos replay must serve outputs bit-identical to a fault-free
replay of the same requests.  The chaos test suite asserts exactly that.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import replace

import numpy as np

from repro.attention.dispatch import force_mha_path
from repro.core.config import FUSED_MHA, BertConfig, OptimizationConfig
from repro.core.engine import use_engine
from repro.core.estimator import estimate_model_graphed, estimate_model_tiled
from repro.core.model import BertEncoderModel
from repro.core.parallel import ProcessExecutor, make_executor, use_executor
from repro.gpusim.graph import GraphCache
from repro.kernels.activation import force_gelu_variant
from repro.gpusim.device import A100_SPEC, DeviceSpec
from repro.gpusim.errors import TransientFault
from repro.gpusim.stream import ExecutionContext, NullContext
from repro.serving.continuous import (
    ContinuousBatcher,
    build_megabatch,
    retile,
    scatter_outputs,
)
from repro.serving.admission import AdmissionController
from repro.serving.degradation import DegradationLadder, DegradationLevel
from repro.serving.faults import NO_FAULTS, FaultPlan, FaultSpec
from repro.serving.gateway import AdmissionGateway, QosClass
from repro.serving.report import (
    Outcome,
    REASON_ADMISSION,
    REASON_DEADLINE,
    REASON_RETRY_BUDGET,
    RequestOutcome,
    ServingReport,
)
from repro.serving.retry import RetryPolicy
from repro.serving.sharded import ShardConfig, ShardRouter
from repro.telemetry import (
    COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS_US,
    RATIO_BUCKETS,
    REQUEST_CATEGORY,
    Telemetry,
    use_telemetry,
)
from repro.telemetry import slo as metric_names
from repro.workloads.batching import (
    Batcher,
    Dispatch,
    TimeoutBatcher,
    dispatch_padded_len,
    shed_expired,
)
from repro.workloads.serving import Request, ServingTrace


class ServingRuntime:
    """Replay traces through the fault-tolerant serving stack.

    Parameters
    ----------
    config:
        Model architecture served (drives the cost model).
    batcher:
        Batching policy; defaults to :class:`TimeoutBatcher`.
    retry:
        Transient-fault retry policy.
    admission:
        High-water-mark admission controller; ``None`` admits everything.
    gateway:
        Optional multi-tenant :class:`~repro.serving.gateway.AdmissionGateway`.
        When set it *replaces* the single-tenant admission pre-pass:
        requests are rate-limited, queued and released per tenant with
        weighted fairness, then batched per QoS class so every dispatch
        is class-pure.  Latency-SLO dispatches replay with priority and
        are always priced at the ladder's top rung; throughput-batch
        dispatches take the ladder's current rung, so degradation (and
        error-budget-burn pressure from SLO tenants) slows batch
        traffic first.  All rungs compute bitwise-identical outputs, so
        the class split never changes served bits.  If the gateway has
        no ``service_rate`` yet the runtime fills it in from the cost
        model (:meth:`estimate_service_rate`) at the start of the run.
    ladder:
        Degradation ladder; a fresh default ladder when omitted.  The
        ladder is reset at the start of every :meth:`run`.
    faults:
        Fault mix to inject; :data:`~repro.serving.faults.NO_FAULTS`
        replays cleanly.
    numerics:
        Optional numeric model; when given, every served request's
        output tensor is computed (per request, deterministic in
        ``(seed, request_id)``) and returned in the report.  ``None``
        serves on the cost plane only — much faster for large traces.
    use_graph:
        Route admission/dispatch pricing through a launch-graph cache
        (:func:`~repro.core.estimator.estimate_model_graphed`): repeat
        shapes replay the captured stream instead of re-pricing it.
        Fault hooks fire per replayed launch exactly as per eager one,
        and a mid-replay fault never touches the (immutable) cached
        graph, so chaos replays are unchanged bit for bit.
    workers:
        Worker count for computing served requests' numeric outputs in
        parallel.  ``1`` (default) is strictly serial.
    executor:
        How ``workers`` fan out: ``"thread"`` (default), ``"process"``
        (forked workers — pair with a shared-memory arena so megabatch
        segment chunks write one buffer), or ``"serial"``.  Executor
        choice never changes served bits, the outcome log or the
        modelled timeline — only host wall-clock.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` to observe the run:
        request/stage spans on the simulated clock, the serving metrics
        registry and the kernel segments the Chrome exporter nests the
        spans above.  Telemetry is strictly observational — enabling it
        is bitwise-neutral to outputs, the outcome log and the modelled
        timeline (the neutrality regression test asserts this).
    sharding:
        Multi-device :class:`~repro.serving.sharded.ShardConfig`.  Data
        parallel replicas each run the plan of their Σlen²-routed slice
        of the admitted stream (work stealing moves a ready dispatch to
        an idle device; faulted retries stay on the device that ran the
        attempt).  Tensor-parallel groups price every dispatch at rank
        0's sharded kernel chain, all-reduces included.  The numeric
        plane is untouched in every mode — outputs stay bitwise equal
        to the single-device per-request oracle (see DESIGN.md §14).
        The default single-device config reproduces the unsharded
        runtime exactly.
    """

    def __init__(
        self,
        config: BertConfig,
        *,
        batcher: Batcher | None = None,
        retry: RetryPolicy | None = None,
        admission: AdmissionController | None = None,
        gateway: AdmissionGateway | None = None,
        ladder: DegradationLadder | None = None,
        faults: FaultSpec = NO_FAULTS,
        opt: OptimizationConfig = FUSED_MHA,
        device: DeviceSpec = A100_SPEC,
        numerics: BertEncoderModel | None = None,
        seed: int = 0,
        use_graph: bool = True,
        workers: int = 1,
        executor: str = "thread",
        telemetry: Telemetry | None = None,
        sharding: ShardConfig | None = None,
    ) -> None:
        self.config = config
        self.batcher = batcher if batcher is not None else TimeoutBatcher()
        self.retry = retry if retry is not None else RetryPolicy()
        self.admission = admission
        self.gateway = gateway
        self.ladder = ladder if ladder is not None else DegradationLadder()
        self.faults = faults
        self.opt = opt
        self.device = device
        self.numerics = numerics
        self.seed = seed
        self.graph_cache = GraphCache() if use_graph else None
        self.workers = workers
        self.telemetry = telemetry
        self._executor = make_executor(executor, workers)
        self._single_estimates: dict[int, float] = {}
        self.sharding = sharding if sharding is not None else ShardConfig()
        #: the priced interconnect (None on a single device)
        self.cluster = self.sharding.build_cluster(device)
        #: rank-0 tensor-parallel shard every dispatch is priced at
        self.shard = self.sharding.shard_spec
        #: independent data-parallel serving lanes
        self.replicas = self.sharding.replicas
        self._router = ShardRouter(self.replicas)

    def _new_ctx(self) -> ExecutionContext:
        """A pricing context on this runtime's device and interconnect."""
        return ExecutionContext(self.device, cluster=self.cluster)

    # ------------------------------------------------------------------
    # pricing helpers (cost plane)

    def _price(
        self,
        ctx: ExecutionContext,
        seq_lens: np.ndarray,
        padded_len: int,
        level: DegradationLevel,
    ) -> float:
        with use_engine(level.engine), force_mha_path(level.mha_path):
            return estimate_model_graphed(
                ctx, self.config, self.opt, seq_lens, padded_len,
                shard=self.shard, cache=self.graph_cache,
            )

    def _price_tile(
        self,
        ctx: ExecutionContext,
        tile: int,
        max_seq_len: int,
        level: DegradationLevel,
    ) -> float:
        """Price a continuous megabatch: the tile's canonical launch
        chain, graph-cached by ``(device, cluster, config, preset, path,
        shard, tile)`` so identical tiles replay regardless of their
        composition."""
        with use_engine(level.engine), force_mha_path(level.mha_path):
            return estimate_model_tiled(
                ctx, self.config, self.opt, tile, max_seq_len,
                shard=self.shard, cache=self.graph_cache,
            )

    def _estimate_service(
        self,
        requests: list[Request],
        max_seq_len: int,
        level: DegradationLevel,
        tile: int | None = None,
    ) -> float:
        """Fault-free service estimate for a group at the given level."""
        if tile is not None:
            return self._price_tile(
                self._new_ctx(), tile, max_seq_len, level
            )
        dispatch = Dispatch(requests=tuple(requests), ready_us=0.0)
        return self._price(
            self._new_ctx(),
            dispatch.seq_lens,
            dispatch_padded_len(dispatch, max_seq_len),
            level,
        )

    def estimate_service_rate(self, max_seq_len: int) -> float:
        """Modelled drain capacity in sequence tokens per simulated µs.

        Prices one full top-rung tile (the continuous batcher's budget
        tile when one is configured, else a 512-token tile capped at
        the trace shape) and divides tokens by modelled time — the rate
        the gateway's virtual DRR drain server runs at, derived from
        the same cost model the dispatches are priced with.
        """
        if isinstance(self.batcher, ContinuousBatcher):
            tile = max(self.batcher.effective_tiles())
        else:
            tile = max(64, min(512, max_seq_len))
        service = self._price_tile(
            self._new_ctx(), tile, max_seq_len,
            self.ladder.levels[0],
        )
        # data-parallel replicas drain independently: aggregate capacity
        # scales with the lane count (tp groups are one lane — their
        # speedup is already in the sharded chain's modelled time)
        return tile / service * self.replicas

    def _single_estimate(self, seq_len: int, max_seq_len: int) -> float:
        """Cached one-request service estimate at the top level."""
        cached = self._single_estimates.get(seq_len)
        if cached is None:
            cached = self._price(
                self._new_ctx(),
                np.asarray([seq_len], dtype=np.int64),
                min(max_seq_len, seq_len),
                self.ladder.levels[0],
            )
            self._single_estimates[seq_len] = cached
        return cached

    # ------------------------------------------------------------------
    # numeric plane

    def _request_input(self, request: Request) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic per-request input, independent of batching."""
        rng = np.random.default_rng([self.seed, request.request_id])
        hidden = self.config.hidden_size
        x = rng.standard_normal((1, request.seq_len, hidden))
        mask = np.ones((1, request.seq_len))
        return x, mask

    def _compute_output(
        self, request: Request, level: DegradationLevel
    ) -> np.ndarray:
        x, mask = self._request_input(request)
        with use_engine(level.engine):
            out = self.numerics.forward(x, mask)
        if self.numerics.arena is not None:
            # arena-backed outputs are views valid only until the next
            # forward; the report keeps them past that
            return out[0].copy()
        return out[0]

    def _compute_batch_outputs(
        self,
        requests: list[Request],
        level: DegradationLevel,
        *,
        max_seq_len: int | None = None,
        tile: int | None = None,
    ) -> list[np.ndarray]:
        """Outputs of one dispatch's served requests, possibly in parallel.

        With a ``tile`` (continuous megabatch), all requests merge into
        one cross-request packed forward and the packed output is
        scattered back per request — bitwise what each request would get
        through its own single-request forward, because the numeric
        plane runs over the real segments only and attention respects
        per-request segment boundaries.

        Otherwise requests are independent (disjoint inputs, disjoint
        outputs), so they fan out across the worker pool: threads need a
        non-arena numerics model (scratch buffers must not be shared
        across concurrent forwards); forked process workers each run on
        a copy-on-write snapshot, so they tolerate an arena.

        Degraded rungs with ``exact_gelu`` pin the GELU formula for the
        whole computation — identity under exact presets, the
        conservative fallback under ``fast-gelu``.
        """
        pin_gelu = (
            force_gelu_variant("exact")
            if level.exact_gelu
            else contextlib.nullcontext()
        )
        if tile is not None and self.numerics.opt.remove_padding:
            # cross-request packing is a packed-pipeline concept; a
            # padded-preset numerics model serves per request below
            # (same bits — every pipeline computes the same function).
            # forward_packed consults the current executor: with workers
            # it fans contiguous segment chunks out (bitwise-equal to
            # serial by the deterministic-assignment contract).
            x_tile, mega = build_megabatch(
                requests,
                lambda r: self._request_input(r)[0][0],
                max_seq_len,
                tile,
            )
            with pin_gelu, use_engine(level.engine), \
                    use_executor(self._executor):
                out_tile = self.numerics.forward_packed(
                    x_tile, mega, ctx=NullContext()
                )
            return scatter_outputs(out_tile, mega)
        if self._executor.workers > 1 and (
            self.numerics.arena is None
            or self._executor.needs_shared_memory
        ):
            with pin_gelu, use_engine(level.engine):
                return self._executor.map(
                    lambda r: np.array(
                        self.numerics.forward(*self._request_input(r))[0]
                    ),
                    requests,
                )
        with pin_gelu:
            return [self._compute_output(r, level) for r in requests]

    # ------------------------------------------------------------------

    def generate(self, trace: ServingTrace, **kwargs):
        """Serve an autoregressive trace through the decode stack.

        Convenience delegate: builds a
        :class:`~repro.serving.generation.GenerationRuntime` sharing
        this runtime's config, device, seed, fault spec, retry policy
        and gateway, and replays ``trace`` through mixed prefill/decode
        rounds.  Keyword arguments are forwarded (e.g.
        ``kv_capacity_tokens=...``, ``batcher=...``).
        """
        from repro.serving.generation import GenerationRuntime

        kwargs.setdefault("retry", self.retry)
        kwargs.setdefault("gateway", self.gateway)
        kwargs.setdefault("faults", self.faults)
        kwargs.setdefault("device", self.device)
        kwargs.setdefault("seed", self.seed)
        kwargs.setdefault("telemetry", self.telemetry)
        runtime = GenerationRuntime(self.config, **kwargs)
        return runtime.run(trace)

    def run(self, trace: ServingTrace) -> ServingReport:
        """Chaos-replay ``trace``; every request gets exactly one outcome.

        With :attr:`telemetry` set, the whole replay runs under
        :func:`~repro.telemetry.use_telemetry`, so instrumented library
        code (batch cuts, cross-request packing, graph capture/replay,
        ladder steps) records into the same tracer and registry.
        """
        with use_telemetry(self.telemetry):
            return self._run(trace)

    def _record_settle(
        self,
        tel: Telemetry,
        request: Request,
        outcome: Outcome,
        reason: str,
        latency_us: float | None,
        retries: int,
    ) -> None:
        """Metrics + the request-root span for one settled request."""
        metrics = tel.metrics
        metrics.counter(
            metric_names.REQUESTS_TOTAL,
            help="settled requests by final outcome",
            outcome=outcome.value,
        ).inc()
        if outcome is Outcome.SHED:
            metrics.counter(
                metric_names.SHED_TOTAL,
                help="shed requests by reason",
                reason=reason,
            ).inc()
        metrics.histogram(
            metric_names.REQUEST_RETRIES,
            help="transient-fault retries per request",
            buckets=COUNT_BUCKETS,
        ).observe(retries)
        end_us = max(request.arrival_us, tel.tracer.now_us)
        if outcome is Outcome.SERVED and latency_us is not None:
            metrics.histogram(
                metric_names.REQUEST_LATENCY_US,
                help="end-to-end latency of served requests (us)",
                buckets=DEFAULT_LATENCY_BUCKETS_US,
            ).observe(latency_us)
            end_us = request.arrival_us + latency_us
        if request.deadline_us is not None:
            metrics.counter(
                metric_names.DEADLINE_REQUESTS_TOTAL,
                help="settled requests that carried a deadline",
            ).inc()
            if (
                outcome is Outcome.SERVED
                and latency_us is not None
                and latency_us <= request.deadline_us
            ):
                metrics.counter(
                    metric_names.DEADLINE_MET_TOTAL,
                    help="deadline-carrying requests served in time",
                ).inc()
        if request.tenant:
            # tenant-labelled mirrors of the serving series; new metric
            # names so the un-labelled global series (and everything
            # reading them) stay exactly as before
            metrics.counter(
                metric_names.TENANT_REQUESTS_TOTAL,
                help="settled requests by tenant and final outcome",
                tenant=request.tenant,
                outcome=outcome.value,
            ).inc()
            if outcome is Outcome.SHED:
                metrics.counter(
                    metric_names.TENANT_SHED_TOTAL,
                    help="shed requests by tenant and reason",
                    tenant=request.tenant,
                    reason=reason,
                ).inc()
            if outcome is Outcome.SERVED and latency_us is not None:
                metrics.histogram(
                    metric_names.TENANT_REQUEST_LATENCY_US,
                    help="end-to-end served latency by tenant (us)",
                    buckets=DEFAULT_LATENCY_BUCKETS_US,
                    tenant=request.tenant,
                ).observe(latency_us)
            if request.deadline_us is not None:
                metrics.counter(
                    metric_names.TENANT_DEADLINE_REQUESTS_TOTAL,
                    help="deadline-carrying settled requests by tenant",
                    tenant=request.tenant,
                ).inc()
                if (
                    outcome is Outcome.SERVED
                    and latency_us is not None
                    and latency_us <= request.deadline_us
                ):
                    metrics.counter(
                        metric_names.TENANT_DEADLINE_MET_TOTAL,
                        help="deadline-carrying requests served in time, "
                        "by tenant",
                        tenant=request.tenant,
                    ).inc()
        root_attrs: dict = {}
        if request.tenant:
            # only multi-tenant traces grow the attr, so single-tenant
            # span dumps stay byte-identical to earlier releases
            root_attrs["tenant"] = request.tenant
        tel.tracer.add_span(
            "request",
            category=REQUEST_CATEGORY,
            start_us=request.arrival_us,
            end_us=end_us,
            request_id=request.request_id,
            seq_len=request.seq_len,
            outcome=outcome.value,
            reason=reason,
            retries=retries,
            **root_attrs,
        )

    def _run(self, trace: ServingTrace) -> ServingReport:
        self.ladder.reset()
        if self.numerics is not None and isinstance(
            self.batcher, ContinuousBatcher
        ):
            # size the arena for every tile the batcher can emit before
            # the first dispatch: steady-state serving then never pays a
            # warm-up overflow alloc (and a shared arena is immediately
            # usable by process workers)
            self.numerics.prereserve_tiles(
                self.batcher.effective_tiles(), trace.max_seq_len
            )
        plan_faults = FaultPlan(self.faults, seed=self.seed)
        if isinstance(self._executor, ProcessExecutor):
            # worker chaos rides the same seeded plan as kernel chaos;
            # re-arming resets the chunk-ordinal stream per run
            self._executor.arm_chaos(
                plan_faults.worker_verdict
                if (
                    self.faults.worker_kill_rate > 0.0
                    or self.faults.worker_hang_rate > 0.0
                )
                else None
            )
        jitter_rng = np.random.default_rng([self.seed, 0x5E])
        outcomes: dict[int, RequestOutcome] = {}
        outputs: dict[int, np.ndarray] = {}
        gateway = self.gateway
        #: gateway-admitted requests by id, keyed to the *original*
        #: (pre-re-anchoring) request — settling always accounts against
        #: the original arrival and deadline
        originals: dict[int, Request] = {}
        #: per-SLO-tenant running [settled, bad] counts for budget burn
        burn_stats: dict[str, list[int]] = {}
        tel = self.telemetry
        if tel is not None and not tel.owns_current_thread():
            tel = None

        def settle(
            request: Request,
            outcome: Outcome,
            reason: str,
            latency_us: float | None,
            retries: int,
            *,
            now_us: float | None = None,
            level: str | None = None,
        ) -> None:
            orig = originals.get(request.request_id, request)
            if (
                latency_us is not None
                and orig.arrival_us != request.arrival_us
            ):
                # dispatches hold gateway-re-anchored requests; fold the
                # gateway queue wait back in so the recorded latency is
                # end-to-end from the original arrival
                latency_us += request.arrival_us - orig.arrival_us
            if orig.request_id in outcomes:
                raise RuntimeError(
                    f"request {orig.request_id} settled twice"
                )
            outcomes[orig.request_id] = RequestOutcome(
                request_id=orig.request_id,
                outcome=outcome,
                reason=reason,
                latency_us=latency_us,
                retries=retries,
                level=level if level is not None else self.ladder.level.name,
                tenant=orig.tenant,
            )
            if gateway is not None:
                policy = gateway.policies.get(orig.tenant)
                if policy is not None and policy.qos is QosClass.LATENCY_SLO:
                    stats = burn_stats.setdefault(orig.tenant, [0, 0])
                    stats[0] += 1
                    if outcome is not Outcome.SERVED:
                        stats[1] += 1
                    budget = 1.0 - policy.slo_target
                    if budget > 0.0 and stats[1] / stats[0] > budget:
                        # the tenant's error budget is burning: pressure
                        # the ladder so *batch-class* dispatches degrade
                        # (SLO dispatches stay pinned to the top rung)
                        t = now_us
                        if t is None:
                            t = orig.arrival_us + (latency_us or 0.0)
                        self.ladder.record_budget_burn(t)
            if tel is not None:
                self._record_settle(
                    tel, orig, outcome, reason, latency_us, retries
                )

        #: (qos, home device, pending dispatches) in replay-priority
        #: order; qos is None on the single-tenant path.  Each entry is
        #: one data-parallel replica's plan over its Σlen²-routed slice
        #: of a class — a single queue on device 0 when unsharded.
        queues: list[tuple[QosClass | None, int, deque[Dispatch]]] = []

        def plan_routed(
            qos: QosClass | None, requests: list[Request]
        ) -> None:
            """Route a class across replicas and plan each slice."""
            for dev, bucket in enumerate(self._router.route(requests)):
                if not bucket:
                    continue
                sub_trace = ServingTrace(
                    requests=tuple(bucket), max_seq_len=trace.max_seq_len
                )
                routed_plan = sorted(
                    self.batcher.plan(sub_trace), key=lambda d: d.ready_us
                )
                queues.append((qos, dev, deque(routed_plan)))

        if gateway is not None:
            # -- multi-tenant gateway pre-pass --------------------------
            if gateway.service_rate is None:
                gateway.service_rate = self.estimate_service_rate(
                    trace.max_seq_len
                )
            gate = gateway.process(trace)
            for event in gate.rejected:
                if tel is not None:
                    tel.tracer.set_now(event.t_us)
                    tel.metrics.counter(
                        metric_names.GATEWAY_REJECTED_TOTAL,
                        help="gateway rejections by tenant and reason",
                        tenant=event.request.tenant,
                        reason=event.reason,
                    ).inc()
                    if event.retry_after_us is not None and np.isfinite(
                        event.retry_after_us
                    ):
                        tel.metrics.histogram(
                            metric_names.GATEWAY_RETRY_AFTER_US,
                            help="retry-after attached to rate-limit "
                            "rejections (us)",
                            buckets=DEFAULT_LATENCY_BUCKETS_US,
                        ).observe(event.retry_after_us)
                    tel.tracer.instant(
                        "gateway.reject",
                        category="gateway",
                        t_us=event.t_us,
                        request_id=event.request.request_id,
                        tenant=event.request.tenant,
                        reason=event.reason,
                    )
                settle(
                    event.request, Outcome.REJECTED, event.reason, None, 0,
                    now_us=event.t_us,
                )
            for event in gate.shed:
                if tel is not None:
                    tel.tracer.set_now(event.t_us)
                    tel.tracer.instant(
                        "gateway.shed",
                        category="gateway",
                        t_us=event.t_us,
                        request_id=event.request.request_id,
                        tenant=event.request.tenant,
                        reason=event.reason,
                    )
                settle(
                    event.request, Outcome.SHED, event.reason, None, 0,
                    now_us=event.t_us,
                )
            by_class: dict[QosClass, list[Request]] = {
                QosClass.LATENCY_SLO: [],
                QosClass.THROUGHPUT_BATCH: [],
            }
            for sched in gate.admitted:
                orig = sched.request
                originals[orig.request_id] = orig
                wait = sched.release_us - orig.arrival_us
                if tel is not None:
                    tel.tracer.set_now(sched.release_us)
                    tel.metrics.histogram(
                        metric_names.GATEWAY_RELEASE_WAIT_US,
                        help="gateway queue wait of admitted requests (us)",
                        buckets=DEFAULT_LATENCY_BUCKETS_US,
                    ).observe(wait)
                deadline = orig.deadline_us
                if deadline is not None:
                    deadline = deadline - wait
                    if deadline <= 0.0:
                        # the deadline expired while queued at the gateway
                        self.ladder.record_deadline_miss(sched.release_us)
                        settle(
                            orig, Outcome.SHED, REASON_DEADLINE, None, 0,
                            now_us=sched.release_us,
                        )
                        continue
                by_class[gateway.qos_of(orig.tenant)].append(
                    replace(
                        orig,
                        arrival_us=sched.release_us,
                        deadline_us=deadline,
                    )
                )
            # class-pure plans: each QoS class is batched on its own, so
            # a dispatch is degradable (batch) or protected (SLO) as a
            # whole; SLO before batch is the replay priority order, and
            # each class is Σlen²-routed across the replicas on its own
            for qos in (QosClass.LATENCY_SLO, QosClass.THROUGHPUT_BATCH):
                if by_class[qos]:
                    plan_routed(qos, by_class[qos])
        else:
            # -- admission: reject early under overload -----------------
            admitted: list[Request] = []
            committed_until = 0.0
            for request in trace.requests:
                backlog = max(0.0, committed_until - request.arrival_us)
                if tel is not None:
                    tel.tracer.set_now(request.arrival_us)
                    tel.metrics.histogram(
                        metric_names.ADMISSION_BACKLOG_US,
                        help="committed backlog seen at each arrival (us)",
                        buckets=DEFAULT_LATENCY_BUCKETS_US,
                    ).observe(backlog)
                if self.admission is not None and not self.admission.admit(
                    backlog
                ):
                    if tel is not None:
                        tel.tracer.instant(
                            "admission.shed",
                            category="admission",
                            t_us=request.arrival_us,
                            request_id=request.request_id,
                            backlog_us=backlog,
                        )
                    settle(request, Outcome.SHED, REASON_ADMISSION, None, 0)
                    continue
                if tel is not None:
                    tel.tracer.instant(
                        "admission.admit",
                        category="admission",
                        t_us=request.arrival_us,
                        request_id=request.request_id,
                        backlog_us=backlog,
                    )
                admitted.append(request)
                # replicas drain the backlog in parallel, so each
                # admitted request commits 1/replicas of its estimate
                committed_until = max(
                    committed_until, request.arrival_us
                ) + self._single_estimate(
                    request.seq_len, trace.max_seq_len
                ) / self.replicas

            # -- batch plan over the admitted sub-trace -----------------
            if admitted:
                plan_routed(None, admitted)

        def dispatch_level(qos: QosClass | None) -> DegradationLevel:
            """Rung a dispatch of the given class is priced/served at:
            latency-SLO dispatches are pinned to the top rung; batch
            (and single-tenant) dispatches ride the ladder."""
            if qos is QosClass.LATENCY_SLO:
                return self.ladder.levels[0]
            return self.ladder.level

        free = [0.0] * self.replicas
        busy = [0.0] * self.replicas
        steals = 0
        batch_id = -1

        while any(q for _, _, q in queues):
            qos: QosClass | None = None
            home = 0
            picked: deque[Dispatch] | None = None
            for cls, dev, q in queues:
                # queues are priority-ordered (SLO before batch): the
                # first class with a head ready on its free home device
                # runs next
                if q and q[0].ready_us <= free[dev]:
                    qos, home, picked = cls, dev, q
                    break
            if picked is None:
                # nothing ready on its home device yet: take the head
                # that can start earliest (ready time vs device free
                # time; on one device this is exactly the earliest head)
                qos, home, picked = min(
                    ((cls, dev, q) for cls, dev, q in queues if q),
                    key=lambda item: max(
                        item[2][0].ready_us, free[item[1]]
                    ),
                )
            dispatch = picked.popleft()
            batch_id += 1
            # work stealing: a routed dispatch runs on whichever device
            # can start it soonest; ties stay home, so the single-device
            # runtime never "steals" from itself
            exec_dev = home
            if self.replicas > 1:
                best = min(
                    range(self.replicas),
                    key=lambda d: (max(dispatch.ready_us, free[d]), d),
                )
                if max(dispatch.ready_us, free[best]) < max(
                    dispatch.ready_us, free[home]
                ):
                    exec_dev = best
                    steals += 1
                    if tel is not None:
                        tel.tracer.instant(
                            "dispatch.steal",
                            category="dispatch",
                            t_us=max(dispatch.ready_us, free[best]),
                            batch_id=batch_id,
                            home=home,
                            device=best,
                        )
            start = max(dispatch.ready_us, free[exec_dev])
            if tel is not None:
                tel.tracer.set_now(start)
                tel.tracer.begin(
                    "dispatch.megabatch"
                    if dispatch.tile is not None
                    else "dispatch.batch",
                    category="dispatch",
                    start_us=start,
                    batch_id=batch_id,
                    request_ids=[r.request_id for r in dispatch.requests],
                    tile=dispatch.tile,
                    ready_us=dispatch.ready_us,
                )
            alive, expired = shed_expired(list(dispatch.requests), start)
            for request in expired:
                self.ladder.record_deadline_miss(start)
                settle(
                    request, Outcome.SHED, REASON_DEADLINE, None, 0,
                    now_us=start,
                )
            if alive:
                # shed members that cannot finish inside their budget even
                # if the dispatch started right now
                est = self._estimate_service(
                    alive, trace.max_seq_len, dispatch_level(qos),
                    tile=dispatch.tile,
                )
                still_alive = []
                for request in alive:
                    limit = request.absolute_deadline_us
                    if limit is not None and start + est > limit:
                        self.ladder.record_deadline_miss(start)
                        settle(
                            request, Outcome.SHED, REASON_DEADLINE, None, 0,
                            now_us=start,
                        )
                    else:
                        still_alive.append(request)
                alive = still_alive

            attempt = 0
            while alive:
                level = dispatch_level(qos)
                ctx = plan_faults.install(self._new_ctx())
                lens = np.asarray(
                    [r.seq_len for r in alive], dtype=np.int64
                )
                tile = None
                padded = None
                if tel is not None:
                    tel.tracer.set_now(start)
                    tel.tracer.begin(
                        "attempt",
                        category="attempt",
                        start_us=start,
                        attempt=attempt,
                        level=level.name,
                        batch=len(alive),
                        device=exec_dev,
                    )
                try:
                    if dispatch.tile is not None:
                        # megabatch: survivors of a faulted attempt were
                        # re-shed above, so this attempt covers only the
                        # still-affected segments — re-quantized, usually
                        # onto a smaller (still graph-cached) tile
                        tile = retile(
                            int(lens.sum()), self.batcher, dispatch.tile
                        )
                        service = self._price_tile(
                            ctx, tile, trace.max_seq_len, level
                        )
                    else:
                        padded = dispatch_padded_len(
                            Dispatch(requests=tuple(alive), ready_us=start),
                            trace.max_seq_len,
                        )
                        service = self._price(ctx, lens, padded, level)
                except TransientFault:
                    # the chain ran up to the faulted kernel: that time is
                    # burnt on the device that ran the attempt, and the
                    # retry stays on that same device (segment-scoped,
                    # device-local — no cross-device re-route mid-request)
                    partial = ctx.elapsed_us()
                    busy[exec_dev] += partial
                    now = start + partial
                    if tel is not None:
                        tel.tracer.set_now(now)
                        tel.tracer.end(fault=True)  # the attempt span
                        tel.add_kernel_segment(
                            start, ctx.records, device=exec_dev
                        )
                        tel.metrics.counter(
                            metric_names.FAULTS_TOTAL,
                            help="transient faults injected into attempts",
                        ).inc()
                        tel.tracer.instant(
                            "fault", category="fault", t_us=now,
                            attempt=attempt,
                        )
                    self.ladder.record_fault(now)
                    if attempt >= self.retry.max_retries:
                        free[exec_dev] = now
                        for request in alive:
                            settle(
                                request,
                                Outcome.FAILED,
                                REASON_RETRY_BUDGET,
                                None,
                                attempt,
                                now_us=now,
                            )
                        alive = []
                        break
                    backoff = self.retry.backoff_us(attempt, jitter_rng)
                    start = now + backoff
                    if tel is not None:
                        tel.metrics.counter(
                            metric_names.RETRIES_TOTAL,
                            help="dispatch retries after transient faults",
                        ).inc()
                        tel.tracer.begin(
                            "retry.backoff",
                            category="retry",
                            start_us=now,
                            attempt=attempt,
                            backoff_us=backoff,
                        )
                        tel.tracer.set_now(start)
                        tel.tracer.end()
                    attempt += 1
                    # deadlines keep ticking during backoff
                    alive, expired = shed_expired(alive, start)
                    for request in expired:
                        self.ladder.record_deadline_miss(start)
                        settle(
                            request, Outcome.SHED, REASON_DEADLINE, None,
                            attempt, now_us=start,
                        )
                    continue
                finish = start + service
                busy[exec_dev] += service
                free[exec_dev] = finish
                if tel is not None:
                    tel.tracer.set_now(finish)
                    tel.add_kernel_segment(
                        start, ctx.records, device=exec_dev
                    )
                    valid = int(lens.sum())
                    capacity = (
                        tile if tile is not None else len(alive) * padded
                    )
                    tel.metrics.histogram(
                        metric_names.VALID_TOKEN_UTILIZATION,
                        help="valid tokens over dispatch capacity",
                        buckets=RATIO_BUCKETS,
                    ).observe(valid / capacity)
                    tel.metrics.histogram(
                        metric_names.US_PER_TOKEN,
                        help="modelled service time per valid token (us)",
                        buckets=COUNT_BUCKETS,
                    ).observe(service / valid)
                if self.numerics is not None:
                    for request, output in zip(
                        alive,
                        self._compute_batch_outputs(
                            alive, level,
                            max_seq_len=trace.max_seq_len, tile=tile,
                        ),
                    ):
                        outputs[request.request_id] = output
                for request in alive:
                    settle(
                        request,
                        Outcome.SERVED,
                        "",
                        finish - request.arrival_us,
                        attempt,
                        now_us=finish,
                        level=level.name,
                    )
                self.ladder.record_success(finish)
                if tel is not None:
                    top = self.ladder.levels[0]
                    attempt_attrs: dict = {"served": len(alive)}
                    if level is not top:
                        # ladder-penalty baseline for the critical-path
                        # walker: the same group priced at the top rung.
                        # Priced on a hook-free context, so the fault
                        # plan's ordinal and the replay's launch stream
                        # are untouched — observation only.
                        attempt_attrs["service_top_us"] = (
                            self._estimate_service(
                                alive, trace.max_seq_len, top,
                                tile=tile,
                            )
                        )
                    tel.tracer.end(**attempt_attrs)  # the attempt span
                alive = []
            if tel is not None:
                tel.tracer.end()  # the dispatch span

        busy_us = sum(busy)
        makespan_us = max(free)
        if tel is not None:
            tel.tracer.set_now(makespan_us)
            gauges = tel.metrics
            gauges.gauge(
                metric_names.GPU_BUSY_US,
                help="modelled GPU busy time (us)",
            ).set(busy_us)
            gauges.gauge(
                metric_names.MAKESPAN_US,
                help="modelled makespan of the replay (us)",
            ).set(makespan_us)
            gauges.gauge(
                metric_names.GPU_UTILIZATION,
                help="busy time over makespan, across all replicas",
            ).set(
                busy_us / (makespan_us * self.replicas)
                if makespan_us
                else 0.0
            )
            if self.replicas > 1:
                # per-device series only exist on multi-device runs, so
                # a single-device registry is unchanged byte for byte
                for dev, dev_busy in enumerate(busy):
                    gauges.gauge(
                        metric_names.DEVICE_BUSY_US,
                        help="modelled busy time per device (us)",
                        device=str(dev),
                    ).set(dev_busy)
                mean_busy = busy_us / self.replicas
                gauges.gauge(
                    metric_names.DEVICE_IMBALANCE,
                    help="max over mean per-device busy time",
                ).set(max(busy) / mean_busy if mean_busy else 0.0)
                gauges.counter(
                    metric_names.STEALS_TOTAL,
                    help="dispatches run away from their routed device",
                ).inc(steals)
            if self.graph_cache is not None:
                lookups = self.graph_cache.hits + self.graph_cache.misses
                gauges.gauge(
                    metric_names.GRAPH_REPLAY_HIT_RATE,
                    help="launch-graph cache hit rate over the run",
                ).set(self.graph_cache.hits / lookups if lookups else 0.0)

        # -- the no-silent-loss contract, enforced ----------------------
        missing = [
            r.request_id
            for r in trace.requests
            if r.request_id not in outcomes
        ]
        if missing:
            raise RuntimeError(
                f"serving runtime lost requests {missing}: every request "
                "must settle as served/shed/failed/rejected"
            )

        return ServingReport(
            outcomes=tuple(
                outcomes[r.request_id] for r in trace.requests
            ),
            transitions=tuple(self.ladder.transitions),
            injected_faults=tuple(plan_faults.injected),
            top_level=self.ladder.levels[0].name,
            gpu_busy_us=busy_us,
            makespan_us=makespan_us,
            outputs=outputs,
            device_busy_us=tuple(busy),
            work_steals=steals,
        )
