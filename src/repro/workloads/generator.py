"""Synthetic variable-length batches.

The paper evaluates with "average sequence length = 0.6 * max sequence
length" (Figures 11-14); :func:`paper_lengths` reproduces exactly that
setting (uniform lengths whose mean is α·max).  Other distributions are
provided for sensitivity studies: production traffic is rarely uniform.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.padding import PackedSeqs, packing_from_lengths


class LengthDistribution(enum.Enum):
    """Shape of the sequence-length distribution to sample."""
    UNIFORM = "uniform"
    NORMAL = "normal"
    ZIPF = "zipf"
    FIXED = "fixed"


@dataclass(frozen=True)
class VariableLengthBatch:
    """A padded input batch with its mask and packing metadata."""

    x: np.ndarray  # [B, S, H]
    mask: np.ndarray  # [B, S], 0/1
    seq_lens: np.ndarray  # [B]
    max_seq_len: int

    @property
    def batch(self) -> int:
        return self.x.shape[0]

    @property
    def hidden(self) -> int:
        return self.x.shape[2]

    @property
    def alpha(self) -> float:
        """Average/maximum length ratio of this concrete batch."""
        return float(self.seq_lens.mean()) / self.max_seq_len

    def packing(self) -> PackedSeqs:
        return packing_from_lengths(self.seq_lens, self.max_seq_len)


def _clip_lengths(lens: np.ndarray, max_seq_len: int) -> np.ndarray:
    return np.clip(np.round(lens).astype(np.int64), 1, max_seq_len)


def uniform_lengths(
    batch: int, max_seq_len: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform lengths over ``[2*alpha - 1, 1] * max`` (mean = alpha·max).

    For alpha <= 0.5 the lower bound clips at 1 token and the empirical
    mean drifts above alpha; the paper's setting alpha = 0.6 is exact.
    """
    if not (0.0 < alpha <= 1.0):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    low = max(1.0, (2.0 * alpha - 1.0) * max_seq_len)
    lens = rng.uniform(low, max_seq_len, size=batch)
    return _clip_lengths(lens, max_seq_len)


def normal_lengths(
    batch: int,
    max_seq_len: int,
    alpha: float,
    rng: np.random.Generator,
    spread: float = 0.15,
) -> np.ndarray:
    """Clipped-normal lengths centred at alpha·max."""
    lens = rng.normal(alpha * max_seq_len, spread * max_seq_len, size=batch)
    return _clip_lengths(lens, max_seq_len)


def zipf_lengths(
    batch: int,
    max_seq_len: int,
    rng: np.random.Generator,
    exponent: float = 1.2,
) -> np.ndarray:
    """Heavy-tailed lengths: many short sentences, few near the max."""
    ranks = rng.zipf(exponent, size=batch).astype(np.float64)
    lens = max_seq_len / ranks
    return _clip_lengths(lens, max_seq_len)


def fixed_lengths(batch: int, max_seq_len: int) -> np.ndarray:
    """Every sequence at the maximum — the no-padding-waste case."""
    return np.full(batch, max_seq_len, dtype=np.int64)


def paper_lengths(
    batch: int, max_seq_len: int, rng: np.random.Generator
) -> np.ndarray:
    """The paper's evaluation setting: average length = 0.6 * max."""
    return uniform_lengths(batch, max_seq_len, 0.6, rng)


def make_batch(
    batch: int,
    max_seq_len: int,
    hidden: int,
    *,
    alpha: float = 0.6,
    distribution: LengthDistribution = LengthDistribution.UNIFORM,
    seed: int = 0,
) -> VariableLengthBatch:
    """Generate a seeded variable-length input batch.

    ``x`` is Gaussian input (padding rows zeroed); ``mask`` marks valid
    tokens, left-aligned as the serving path expects.
    """
    if batch <= 0 or max_seq_len <= 0 or hidden <= 0:
        raise ValueError("batch, max_seq_len and hidden must be positive")
    rng = np.random.default_rng(seed)
    if distribution is LengthDistribution.UNIFORM:
        lens = uniform_lengths(batch, max_seq_len, alpha, rng)
    elif distribution is LengthDistribution.NORMAL:
        lens = normal_lengths(batch, max_seq_len, alpha, rng)
    elif distribution is LengthDistribution.ZIPF:
        lens = zipf_lengths(batch, max_seq_len, rng)
    elif distribution is LengthDistribution.FIXED:
        lens = fixed_lengths(batch, max_seq_len)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown distribution {distribution!r}")

    mask = np.zeros((batch, max_seq_len), dtype=np.int64)
    for b, length in enumerate(lens):
        mask[b, :length] = 1
    x = rng.normal(0.0, 1.0, size=(batch, max_seq_len, hidden)).astype(np.float32)
    x *= mask[:, :, None]
    return VariableLengthBatch(
        x=x, mask=mask, seq_lens=lens, max_seq_len=max_seq_len
    )
