"""Online batching policies for the serving emulator.

ByteTransformer's setting is online inference: requests with different
lengths arrive continuously.  *How* they are grouped into GPU batches is
a serving-side policy, orthogonal to the engine — and it interacts with
the padding story: a FIFO batcher mixes long and short sentences (worst
padding for a padded engine, irrelevant for a packed one), while a
length-bucketed batcher trades queueing delay for tighter batches.

Three policies are provided, each a generator of dispatch decisions over
a :class:`~repro.workloads.serving.ServingTrace`:

* :class:`FifoBatcher` — dispatch in arrival order once ``batch_size``
  requests are waiting (or the horizon ends);
* :class:`TimeoutBatcher` — dispatch when the batch fills *or* the oldest
  waiting request has waited ``timeout_us``;
* :class:`BucketBatcher` — like TimeoutBatcher, but requests are queued
  into length buckets and each dispatch drains one bucket — the serving-
  side analogue of TurboTransformer's smart batching.

:func:`replay` runs a policy against a framework cost model on a single
simulated GPU and returns per-request latencies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks.base import Framework
from repro.workloads.serving import Request, ServingTrace


@dataclass(frozen=True)
class Dispatch:
    """One batch handed to the GPU."""

    requests: tuple[Request, ...]
    #: time at which the batch became eligible to start
    ready_us: float

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a dispatch needs at least one request")

    @property
    def seq_lens(self) -> np.ndarray:
        return np.asarray([r.seq_len for r in self.requests], dtype=np.int64)


class Batcher(abc.ABC):
    """A batching policy: trace in, dispatches out."""

    name: str = "batcher"

    @abc.abstractmethod
    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        """Partition the trace into dispatches with readiness times."""

    @staticmethod
    def _validate_cover(trace: ServingTrace, plan: list[Dispatch]) -> None:
        planned = sorted(
            r.request_id for d in plan for r in d.requests
        )
        expected = sorted(r.request_id for r in trace.requests)
        if planned != expected:
            raise AssertionError("batching plan lost or duplicated requests")


@dataclass
class FifoBatcher(Batcher):
    """Arrival-order batches of exactly ``batch_size`` (last one ragged)."""

    batch_size: int = 8
    name: str = "fifo"

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        plan = []
        for group in trace.batches(self.batch_size):
            plan.append(
                Dispatch(
                    requests=tuple(group),
                    ready_us=max(r.arrival_us for r in group),
                )
            )
        self._validate_cover(trace, plan)
        return plan


@dataclass
class TimeoutBatcher(Batcher):
    """Dispatch on full batch or when the head request ages out."""

    batch_size: int = 8
    timeout_us: float = 2000.0
    name: str = "timeout"

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if self.batch_size <= 0 or self.timeout_us < 0:
            raise ValueError("invalid batcher parameters")
        plan: list[Dispatch] = []
        waiting: list[Request] = []
        for request in trace.requests:
            # before accepting this arrival, flush any group whose head
            # would exceed its deadline by then
            while waiting and (
                request.arrival_us
                > waiting[0].arrival_us + self.timeout_us
            ):
                cut = waiting[: self.batch_size]
                waiting = waiting[self.batch_size :]
                plan.append(
                    Dispatch(
                        requests=tuple(cut),
                        ready_us=cut[0].arrival_us + self.timeout_us,
                    )
                )
            waiting.append(request)
            if len(waiting) >= self.batch_size:
                cut = waiting[: self.batch_size]
                waiting = waiting[self.batch_size :]
                plan.append(
                    Dispatch(
                        requests=tuple(cut),
                        ready_us=cut[-1].arrival_us,
                    )
                )
        while waiting:
            cut = waiting[: self.batch_size]
            waiting = waiting[self.batch_size :]
            plan.append(
                Dispatch(
                    requests=tuple(cut),
                    ready_us=cut[0].arrival_us + self.timeout_us,
                )
            )
        self._validate_cover(trace, plan)
        return plan


@dataclass
class BucketBatcher(Batcher):
    """Length-bucketed batching (serving-side smart batching).

    Requests are queued per length bucket (bucket ``i`` holds lengths in
    ``(i*width, (i+1)*width]``); a bucket dispatches when it has
    ``batch_size`` requests or its oldest member ages out.
    """

    batch_size: int = 8
    timeout_us: float = 2000.0
    bucket_width: int = 128
    name: str = "bucket"

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if min(self.batch_size, self.bucket_width) <= 0 or self.timeout_us < 0:
            raise ValueError("invalid batcher parameters")
        buckets: dict[int, list[Request]] = {}
        plan: list[Dispatch] = []

        def flush(bucket: list[Request], ready: float) -> None:
            plan.append(Dispatch(requests=tuple(bucket), ready_us=ready))

        for request in trace.requests:
            # age out any bucket head older than the timeout at this time
            for key in list(buckets):
                queue = buckets[key]
                if (
                    queue
                    and request.arrival_us
                    > queue[0].arrival_us + self.timeout_us
                ):
                    flush(queue, queue[0].arrival_us + self.timeout_us)
                    buckets[key] = []
            key = (request.seq_len - 1) // self.bucket_width
            queue = buckets.setdefault(key, [])
            queue.append(request)
            if len(queue) >= self.batch_size:
                flush(queue, request.arrival_us)
                buckets[key] = []
        for queue in buckets.values():
            if queue:
                flush(queue, queue[0].arrival_us + self.timeout_us)
        plan.sort(key=lambda d: d.ready_us)
        self._validate_cover(trace, plan)
        return plan


@dataclass(frozen=True)
class ReplayResult:
    """Per-request latencies of one (policy, framework) replay."""

    policy: str
    framework: str
    latencies_us: np.ndarray
    gpu_busy_us: float
    makespan_us: float

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_us.mean()) / 1000.0

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.latencies_us, 99)) / 1000.0

    @property
    def utilisation(self) -> float:
        return self.gpu_busy_us / self.makespan_us if self.makespan_us else 0.0


def shed_expired(
    requests: Sequence[Request], now_us: float
) -> tuple[list[Request], list[Request]]:
    """Split ``requests`` into ``(alive, expired)`` at simulated ``now_us``.

    A request whose absolute deadline is at or before ``now_us`` can no
    longer be served in time (any service takes strictly positive time),
    so the batcher sheds it instead of burning GPU time on a response
    nobody will wait for.  Deadline-free requests are always alive.
    """
    alive: list[Request] = []
    expired: list[Request] = []
    for request in requests:
        limit = request.absolute_deadline_us
        if limit is not None and limit <= now_us:
            expired.append(request)
        else:
            alive.append(request)
    return alive, expired


#: per-dispatch padded shapes are rounded up to this granularity, the
#: way serving deployments keep a small set of compiled shapes
SHAPE_GRANULARITY = 64


def dispatch_padded_len(dispatch: Dispatch, cap: int) -> int:
    """Padded sequence length a serving system would use for this batch:
    the batch maximum rounded up to :data:`SHAPE_GRANULARITY`, capped at
    the model's maximum."""
    longest = int(dispatch.seq_lens.max())
    rounded = -(-longest // SHAPE_GRANULARITY) * SHAPE_GRANULARITY
    return min(cap, rounded)


def replay(
    trace: ServingTrace,
    batcher: Batcher,
    framework: Framework,
    config: BertConfig,
) -> ReplayResult:
    """Run a batching policy against a framework on one simulated GPU.

    Batches execute serially in readiness order.  Each batch is padded to
    its own rounded maximum (see :func:`dispatch_padded_len`) — so a
    length-homogeneous policy directly shrinks the padded engines' work,
    while packed engines only ever pay for valid tokens.
    """
    plan = sorted(batcher.plan(trace), key=lambda d: d.ready_us)
    latencies = np.empty(trace.num_requests)
    gpu_free_at = 0.0
    busy = 0.0
    for dispatch in plan:
        start = max(dispatch.ready_us, gpu_free_at)
        service = framework.latency_us(
            config,
            dispatch.seq_lens,
            dispatch_padded_len(dispatch, trace.max_seq_len),
        )
        finish = start + service
        gpu_free_at = finish
        busy += service
        for request in dispatch.requests:
            latencies[request.request_id] = finish - request.arrival_us
    return ReplayResult(
        policy=batcher.name,
        framework=framework.name,
        latencies_us=latencies,
        gpu_busy_us=busy,
        makespan_us=gpu_free_at,
    )
