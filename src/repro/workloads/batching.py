"""Online batching policies for the serving emulator.

ByteTransformer's setting is online inference: requests with different
lengths arrive continuously.  *How* they are grouped into GPU batches is
a serving-side policy, orthogonal to the engine — and it interacts with
the padding story: a FIFO batcher mixes long and short sentences (worst
padding for a padded engine, irrelevant for a packed one), while a
length-bucketed batcher trades queueing delay for tighter batches.

Four policies are provided, each a generator of dispatch decisions over
a :class:`~repro.workloads.serving.ServingTrace`:

* :class:`FifoBatcher` — dispatch in arrival order once ``batch_size``
  requests are waiting (or the horizon ends);
* :class:`TimeoutBatcher` — dispatch when the batch fills *or* the oldest
  waiting request has waited ``timeout_us``;
* :class:`BucketBatcher` — like TimeoutBatcher, but requests are queued
  into length buckets and each dispatch drains one bucket — the serving-
  side analogue of TurboTransformer's smart batching;
* :class:`ContinuousBatcher` — token-budget megabatching: requests of
  any length are merged into one packed dispatch bounded by a *token*
  budget rather than a request count, and the packed shape is quantized
  to a small set of tiles (:data:`DEFAULT_TILES`) so the launch-graph
  cache key recurs under live traffic.

:func:`replay` runs a policy against a framework cost model on a single
simulated GPU and returns per-request latencies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import BertConfig
from repro.frameworks.base import Framework
from repro.telemetry import COUNT_BUCKETS, RATIO_BUCKETS, current_telemetry
from repro.telemetry.slo import BATCH_FILL_RATIO, QUEUE_DEPTH
from repro.workloads.serving import Request, ServingTrace


def _observe_cut(
    queue_depth: int,
    cut: Sequence[Request],
    ready_us: float,
    *,
    tile: int | None = None,
    fill: float | None = None,
) -> None:
    """Record one batch cut into the installed telemetry (if any).

    Observation only: called after the cut is decided, never influencing
    which requests ship.  ``queue_depth`` is the waiting-pool size
    *before* the cut — the queue-pressure signal.
    """
    tel = current_telemetry()
    if tel is None or not tel.owns_current_thread():
        return
    tel.metrics.histogram(
        QUEUE_DEPTH,
        help="waiting requests when a batch was cut",
        buckets=COUNT_BUCKETS,
    ).observe(queue_depth)
    if fill is not None:
        tel.metrics.histogram(
            BATCH_FILL_RATIO,
            help="filled fraction of the batch budget at each cut",
            buckets=RATIO_BUCKETS,
        ).observe(fill)
    tel.tracer.instant(
        "batch.cut",
        category="batcher",
        t_us=ready_us,
        segments=len(cut),
        tokens=int(sum(r.seq_len for r in cut)),
        tile=tile,
    )


class TokenBudgetExceededError(ValueError):
    """A single request carries more valid tokens than the token budget.

    An encoder request is a single sequence: its tokens attend to each
    other, so it cannot be split across megabatches the way a decoder
    prompt can be chunked.  The batcher rejects it with this typed error
    instead of silently dropping or deadlocking on it.
    """


@dataclass(frozen=True)
class Dispatch:
    """One batch handed to the GPU.

    ``tile`` is ``None`` for the per-request batchers (FIFO / timeout /
    bucket).  A continuous megabatch sets it to the quantized token
    budget the packed buffer is shaped to; segment metadata
    (:attr:`segment_offsets`) then locates each request's rows inside
    the packed tensor so results can be scattered back to their owners.
    """

    requests: tuple[Request, ...]
    #: time at which the batch became eligible to start
    ready_us: float
    #: quantized token-budget tile for megabatch dispatches, else None
    tile: int | None = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a dispatch needs at least one request")
        if self.tile is not None and self.tile < self.total_tokens:
            raise ValueError(
                f"tile {self.tile} cannot hold {self.total_tokens} "
                "merged tokens"
            )

    @property
    def seq_lens(self) -> np.ndarray:
        return np.asarray([r.seq_len for r in self.requests], dtype=np.int64)

    @property
    def total_tokens(self) -> int:
        return int(sum(r.seq_len for r in self.requests))

    @property
    def segment_offsets(self) -> np.ndarray:
        """Row offsets of each request's segment in the packed buffer:
        ``offsets[i]:offsets[i+1]`` are request ``i``'s valid tokens."""
        offsets = np.zeros(len(self.requests) + 1, dtype=np.int64)
        np.cumsum(self.seq_lens, out=offsets[1:])
        return offsets


class Batcher(abc.ABC):
    """A batching policy: trace in, dispatches out."""

    name: str = "batcher"

    @abc.abstractmethod
    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        """Partition the trace into dispatches with readiness times."""

    @staticmethod
    def _validate_cover(trace: ServingTrace, plan: list[Dispatch]) -> None:
        planned = sorted(
            r.request_id for d in plan for r in d.requests
        )
        expected = sorted(r.request_id for r in trace.requests)
        if planned != expected:
            raise AssertionError("batching plan lost or duplicated requests")


@dataclass
class FifoBatcher(Batcher):
    """Arrival-order batches of exactly ``batch_size`` (last one ragged)."""

    batch_size: int = 8
    name: str = "fifo"

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        plan = []
        for group in trace.batches(self.batch_size):
            plan.append(
                Dispatch(
                    requests=tuple(group),
                    ready_us=max(r.arrival_us for r in group),
                )
            )
        self._validate_cover(trace, plan)
        return plan


@dataclass
class TimeoutBatcher(Batcher):
    """Dispatch on full batch or when the head request ages out."""

    batch_size: int = 8
    timeout_us: float = 2000.0
    name: str = "timeout"

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if self.batch_size <= 0 or self.timeout_us < 0:
            raise ValueError("invalid batcher parameters")
        plan: list[Dispatch] = []
        waiting: list[Request] = []
        for request in trace.requests:
            # before accepting this arrival, flush any group whose head
            # would exceed its deadline by then
            while waiting and (
                request.arrival_us
                > waiting[0].arrival_us + self.timeout_us
            ):
                depth = len(waiting)
                cut = waiting[: self.batch_size]
                waiting = waiting[self.batch_size :]
                ready = cut[0].arrival_us + self.timeout_us
                _observe_cut(
                    depth, cut, ready, fill=len(cut) / self.batch_size
                )
                plan.append(
                    Dispatch(requests=tuple(cut), ready_us=ready)
                )
            waiting.append(request)
            if len(waiting) >= self.batch_size:
                depth = len(waiting)
                cut = waiting[: self.batch_size]
                waiting = waiting[self.batch_size :]
                ready = cut[-1].arrival_us
                _observe_cut(
                    depth, cut, ready, fill=len(cut) / self.batch_size
                )
                plan.append(
                    Dispatch(requests=tuple(cut), ready_us=ready)
                )
        while waiting:
            depth = len(waiting)
            cut = waiting[: self.batch_size]
            waiting = waiting[self.batch_size :]
            ready = cut[0].arrival_us + self.timeout_us
            _observe_cut(
                depth, cut, ready, fill=len(cut) / self.batch_size
            )
            plan.append(
                Dispatch(requests=tuple(cut), ready_us=ready)
            )
        self._validate_cover(trace, plan)
        return plan


@dataclass
class BucketBatcher(Batcher):
    """Length-bucketed batching (serving-side smart batching).

    Requests are queued per length bucket (bucket ``i`` holds lengths in
    ``(i*width, (i+1)*width]``); a bucket dispatches when it has
    ``batch_size`` requests or its oldest member ages out.
    """

    batch_size: int = 8
    timeout_us: float = 2000.0
    bucket_width: int = 128
    name: str = "bucket"

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if min(self.batch_size, self.bucket_width) <= 0 or self.timeout_us < 0:
            raise ValueError("invalid batcher parameters")
        buckets: dict[int, list[Request]] = {}
        plan: list[Dispatch] = []

        def flush(bucket: list[Request], ready: float) -> None:
            plan.append(Dispatch(requests=tuple(bucket), ready_us=ready))

        for request in trace.requests:
            # age out any bucket head older than the timeout at this time
            for key in list(buckets):
                queue = buckets[key]
                if (
                    queue
                    and request.arrival_us
                    > queue[0].arrival_us + self.timeout_us
                ):
                    flush(queue, queue[0].arrival_us + self.timeout_us)
                    buckets[key] = []
            key = (request.seq_len - 1) // self.bucket_width
            queue = buckets.setdefault(key, [])
            queue.append(request)
            if len(queue) >= self.batch_size:
                flush(queue, request.arrival_us)
                buckets[key] = []
        for queue in buckets.values():
            if queue:
                flush(queue, queue[0].arrival_us + self.timeout_us)
        plan.sort(key=lambda d: d.ready_us)
        self._validate_cover(trace, plan)
        return plan


#: default token-budget tiles the continuous batcher quantizes to — a
#: handful of compiled shapes, the CUDA-graph analogue of
#: :data:`SHAPE_GRANULARITY` for padded engines
DEFAULT_TILES = (512, 1024, 2048)


def quantize_tile(total_tokens: int, tiles: Sequence[int]) -> int:
    """Smallest tile that holds ``total_tokens`` valid tokens.

    Quantization padding is therefore bounded by ``tile - 1`` tokens per
    megabatch (one token over the next-smaller tile is the worst case).
    """
    if total_tokens <= 0:
        raise ValueError(f"total_tokens must be positive, got {total_tokens}")
    for tile in sorted(tiles):
        if total_tokens <= tile:
            return int(tile)
    raise TokenBudgetExceededError(
        f"{total_tokens} tokens exceed the largest tile {max(tiles)}"
    )


@dataclass
class ContinuousBatcher(Batcher):
    """Token-budget megabatching with shape-quantized dispatches.

    Requests are admitted into a rolling megabatch bounded by
    ``token_budget`` *valid tokens* (not a request count): a dispatch
    cuts when the waiting pool reaches the budget or the oldest waiting
    request ages past ``timeout_us``.  The fill is deadline-aware —
    requests with the earliest absolute deadlines are packed first, so a
    tight-deadline straggler is not starved by later bulk arrivals — but
    the oldest request is always included, which bounds head-of-line
    wait and guarantees the planner makes progress.

    Each dispatch is quantized to the smallest tile in ``tiles`` that
    holds its merged tokens (tiles above ``token_budget`` are never
    used; the budget itself is always available as the largest tile), so
    the (device, config, preset, tile) launch-graph key recurs and
    steady-state serving replays captured graphs instead of dispatching
    eagerly.  A request longer than the budget raises
    :class:`TokenBudgetExceededError`: an encoder sequence cannot be
    split across megabatches.
    """

    token_budget: int = 2048
    timeout_us: float = 2000.0
    tiles: tuple[int, ...] = DEFAULT_TILES
    #: fraction of the head request's deadline budget it may spend
    #: waiting in the queue before the megabatch is cut regardless of
    #: fill.  Under sustained arrivals the budget cut keeps firing and
    #: the plain head timeout never does — without this bound a head
    #: request with a deadline tighter than ``timeout_us`` would sit
    #: behind deadline-sorted later arrivals until it could only be
    #: shed (the head-timeout starvation bug).
    deadline_slack: float = 0.5
    name: str = "continuous"

    def effective_tiles(self) -> tuple[int, ...]:
        """Tiles actually used: those under the budget, plus the budget."""
        under = sorted(t for t in self.tiles if t < self.token_budget)
        return tuple(under) + (self.token_budget,)

    def _head_due_us(self, head: Request) -> float:
        """Latest instant the head may still be waiting uncut.

        The plain policy is ``arrival + timeout_us``; a head carrying a
        deadline must ship earlier — after ``deadline_slack`` of its
        budget — so the dispatch still has the remaining
        ``(1 - deadline_slack)`` of the budget to actually run in.
        """
        due = head.arrival_us + self.timeout_us
        if head.deadline_us is not None:
            due = min(
                due, head.arrival_us + self.deadline_slack * head.deadline_us
            )
        return due

    def plan(self, trace: ServingTrace) -> list[Dispatch]:
        if self.token_budget <= 0 or self.timeout_us < 0:
            raise ValueError("invalid batcher parameters")
        if not 0.0 < self.deadline_slack <= 1.0:
            raise ValueError(
                f"deadline_slack must be in (0, 1], got {self.deadline_slack}"
            )
        if self.tiles and min(self.tiles) <= 0:
            raise ValueError("tiles must be positive")
        for request in trace.requests:
            if request.seq_len > self.token_budget:
                raise TokenBudgetExceededError(
                    f"request {request.request_id} has {request.seq_len} "
                    f"tokens, more than the {self.token_budget}-token "
                    "budget; an encoder sequence cannot be split"
                )
        tel = current_telemetry()
        if tel is not None and not tel.owns_current_thread():
            tel = None
        plan: list[Dispatch] = []
        waiting: list[Request] = []
        for request in trace.requests:
            # flush any megabatch whose head ages out — or would burn
            # too much of its deadline budget — before this arrival
            while waiting and (
                request.arrival_us > self._head_due_us(waiting[0])
            ):
                plan.append(
                    self._cut(waiting, self._head_due_us(waiting[0]))
                )
            waiting.append(request)
            if tel is not None:
                tel.metrics.counter(
                    "batcher_admitted_total",
                    help="requests admitted into the rolling megabatch",
                ).inc()
            while (
                sum(r.seq_len for r in waiting) >= self.token_budget
            ):
                plan.append(self._cut(waiting, request.arrival_us))
        while waiting:
            plan.append(self._cut(waiting, self._head_due_us(waiting[0])))
        plan.sort(key=lambda d: d.ready_us)
        self._validate_cover(trace, plan)
        return plan

    def _cut(self, waiting: list[Request], ready_us: float) -> Dispatch:
        """Fill one megabatch from ``waiting`` (mutating it) and tile it."""
        # the head always ships (progress guarantee); the rest of the
        # budget goes to the tightest deadlines first, among requests
        # that have actually arrived by the cut instant (a timeout cut
        # fires before later queue members exist)
        chosen = {0}
        used = waiting[0].seq_len
        by_deadline = sorted(
            (
                i
                for i in range(1, len(waiting))
                if waiting[i].arrival_us <= ready_us
            ),
            key=lambda i: (
                waiting[i].absolute_deadline_us is None,
                waiting[i].absolute_deadline_us or 0.0,
                waiting[i].arrival_us,
                waiting[i].request_id,
            ),
        )
        for i in by_deadline:
            if used + waiting[i].seq_len <= self.token_budget:
                chosen.add(i)
                used += waiting[i].seq_len
        depth = len(waiting)
        cut = [r for i, r in enumerate(waiting) if i in chosen]
        waiting[:] = [r for i, r in enumerate(waiting) if i not in chosen]
        tile = quantize_tile(used, self.effective_tiles())
        _observe_cut(
            depth, cut, ready_us, tile=tile, fill=used / self.token_budget
        )
        return Dispatch(requests=tuple(cut), ready_us=ready_us, tile=tile)


@dataclass(frozen=True)
class DecodeRound:
    """One mixed prefill/decode megabatch cut by the mixed batcher.

    ``decode_ids`` are in-flight requests stepping one token each this
    round; ``prefills`` are newly admitted prompts prefilled in the same
    packed dispatch.  The total valid-token load of the round is
    ``prefill_tokens + decode_batch`` (one QKV row per decode step).
    ``prefill_tile`` is the quantized tile the prefill segment is priced
    at (0 when the round carries no prefills).
    """

    decode_ids: tuple[int, ...]
    prefills: tuple[Request, ...]
    ready_us: float
    prefill_tile: int = 0

    def __post_init__(self) -> None:
        if not self.decode_ids and not self.prefills:
            raise ValueError("a decode round needs prefill or decode work")
        if self.prefills and self.prefill_tile < self.prefill_tokens:
            raise ValueError(
                f"prefill tile {self.prefill_tile} cannot hold "
                f"{self.prefill_tokens} prompt tokens"
            )

    @property
    def prefill_tokens(self) -> int:
        return int(sum(r.seq_len for r in self.prefills))

    @property
    def decode_batch(self) -> int:
        return len(self.decode_ids)

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.decode_batch


@dataclass
class MixedContinuousBatcher:
    """Continuous batching with prefills and decode steps in one budget.

    Each round spends the same ``token_budget`` the encoder megabatcher
    uses, but on two kinds of work: every in-flight request contributes
    one decode-step row, and the residual budget admits waiting prompts
    (tightest deadline first, head-of-queue always eligible).  The
    ``decode_priority`` knob caps how much of the budget decode steps
    may claim while prompts are waiting — at 1.0 in-flight streams are
    never slowed by new arrivals (maximum streaming smoothness, worst
    prompt queueing); lower values admit prompts sooner at the cost of
    skipped decode steps for some streams.  With nothing waiting, decode
    always gets the whole budget.

    Unlike the encoder batchers this is not a trace-in/plan-out policy:
    decode rounds depend on runtime state (which requests are still
    generating), so the serving runtime calls :meth:`plan_round` once
    per round with the live picture.
    """

    token_budget: int = 2048
    tiles: tuple[int, ...] = DEFAULT_TILES
    #: budget fraction decode steps may claim while prompts are waiting
    decode_priority: float = 0.75
    name: str = "mixed"

    def __post_init__(self) -> None:
        if self.token_budget <= 0:
            raise ValueError("token_budget must be positive")
        if not 0.0 < self.decode_priority <= 1.0:
            raise ValueError(
                f"decode_priority must be in (0, 1], got "
                f"{self.decode_priority}"
            )
        if self.tiles and min(self.tiles) <= 0:
            raise ValueError("tiles must be positive")

    def effective_tiles(self) -> tuple[int, ...]:
        """Tiles actually used: those under the budget, plus the budget."""
        under = sorted(t for t in self.tiles if t < self.token_budget)
        return tuple(under) + (self.token_budget,)

    def plan_round(
        self,
        waiting: Sequence[Request],
        active_decode_ids: Sequence[int],
        now_us: float,
    ) -> DecodeRound | None:
        """Cut one mixed round from the live serving state.

        ``waiting`` are admitted-but-unprefilled requests (any order;
        arrivals after ``now_us`` are ignored); ``active_decode_ids``
        are in-flight request ids in activation order — the order is the
        fairness policy when the decode cap bites.  Returns ``None``
        when there is nothing to do this round (the empty-round case:
        the runtime advances its clock to the next arrival instead).
        """
        arrived = [r for r in waiting if r.arrival_us <= now_us]
        for request in arrived:
            if request.seq_len > self.token_budget:
                raise TokenBudgetExceededError(
                    f"request {request.request_id} has {request.seq_len} "
                    f"prompt tokens, more than the {self.token_budget}-"
                    "token budget; a prompt cannot be split"
                )
        cap = (
            self.token_budget
            if not arrived
            else max(1, round(self.token_budget * self.decode_priority))
        )
        decode_ids = tuple(active_decode_ids[:cap])
        residual = self.token_budget - len(decode_ids)
        by_deadline = sorted(
            range(len(arrived)),
            key=lambda i: (
                arrived[i].absolute_deadline_us is None,
                arrived[i].absolute_deadline_us or 0.0,
                arrived[i].arrival_us,
                arrived[i].request_id,
            ),
        )
        chosen: list[Request] = []
        used = 0
        for i in by_deadline:
            if used + arrived[i].seq_len <= residual:
                chosen.append(arrived[i])
                used += arrived[i].seq_len
        if not decode_ids and not chosen:
            return None
        tile = (
            quantize_tile(used, self.effective_tiles()) if chosen else 0
        )
        round_ = DecodeRound(
            decode_ids=decode_ids,
            prefills=tuple(chosen),
            ready_us=now_us,
            prefill_tile=tile,
        )
        _observe_cut(
            len(waiting),
            chosen,
            now_us,
            tile=tile or None,
            fill=round_.total_tokens / self.token_budget,
        )
        return round_


@dataclass(frozen=True)
class ReplayResult:
    """Per-request latencies of one (policy, framework) replay."""

    policy: str
    framework: str
    latencies_us: np.ndarray
    gpu_busy_us: float
    makespan_us: float

    @property
    def mean_ms(self) -> float:
        return float(self.latencies_us.mean()) / 1000.0

    @property
    def p99_ms(self) -> float:
        return float(np.percentile(self.latencies_us, 99)) / 1000.0

    @property
    def utilisation(self) -> float:
        return self.gpu_busy_us / self.makespan_us if self.makespan_us else 0.0


def shed_expired(
    requests: Sequence[Request], now_us: float
) -> tuple[list[Request], list[Request]]:
    """Split ``requests`` into ``(alive, expired)`` at simulated ``now_us``.

    A request whose absolute deadline is at or before ``now_us`` can no
    longer be served in time (any service takes strictly positive time),
    so the batcher sheds it instead of burning GPU time on a response
    nobody will wait for.  Deadline-free requests are always alive.
    """
    alive: list[Request] = []
    expired: list[Request] = []
    for request in requests:
        limit = request.absolute_deadline_us
        if limit is not None and limit <= now_us:
            expired.append(request)
        else:
            alive.append(request)
    return alive, expired


#: per-dispatch padded shapes are rounded up to this granularity, the
#: way serving deployments keep a small set of compiled shapes
SHAPE_GRANULARITY = 64


def dispatch_padded_len(dispatch: Dispatch, cap: int) -> int:
    """Padded sequence length a serving system would use for this batch:
    the batch maximum rounded up to :data:`SHAPE_GRANULARITY`, capped at
    the model's maximum."""
    longest = int(dispatch.seq_lens.max())
    rounded = -(-longest // SHAPE_GRANULARITY) * SHAPE_GRANULARITY
    return min(cap, rounded)


def replay(
    trace: ServingTrace,
    batcher: Batcher,
    framework: Framework,
    config: BertConfig,
) -> ReplayResult:
    """Run a batching policy against a framework on one simulated GPU.

    Batches execute serially in readiness order.  Each batch is padded to
    its own rounded maximum (see :func:`dispatch_padded_len`) — so a
    length-homogeneous policy directly shrinks the padded engines' work,
    while packed engines only ever pay for valid tokens.
    """
    plan = sorted(batcher.plan(trace), key=lambda d: d.ready_us)
    latencies = np.empty(trace.num_requests)
    gpu_free_at = 0.0
    busy = 0.0
    for dispatch in plan:
        start = max(dispatch.ready_us, gpu_free_at)
        service = framework.latency_us(
            config,
            dispatch.seq_lens,
            dispatch_padded_len(dispatch, trace.max_seq_len),
        )
        finish = start + service
        gpu_free_at = finish
        busy += service
        for request in dispatch.requests:
            latencies[request.request_id] = finish - request.arrival_us
    return ReplayResult(
        policy=batcher.name,
        framework=framework.name,
        latencies_us=latencies,
        gpu_busy_us=busy,
        makespan_us=gpu_free_at,
    )
