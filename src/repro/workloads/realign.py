"""Mask realignment: make arbitrary masks left-aligned.

The zero-padding algorithm (and the serving path generally) assumes each
sentence's valid tokens occupy positions ``0..len-1``.  Real pipelines
can violate that — token pruning, span masking, or middle-truncation
leave *interior* holes.  :func:`realign` compacts each row's valid tokens
to the front, returning the permutation needed to scatter results back,
so any masked batch can enter the packed pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Realignment:
    """Result of compacting a mask's valid tokens to the left.

    ``source_index[b, s]`` is the original position whose token now sits
    at (row ``b``, slot ``s``) — only meaningful for ``s < lengths[b]``.
    """

    mask: np.ndarray  # left-aligned 0/1 mask, same shape as the input
    lengths: np.ndarray  # [B] valid counts
    source_index: np.ndarray  # [B, S] gather positions

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Reorder a padded ``[B, S, ...]`` tensor to the aligned layout.

        Slots beyond each row's length are zero-filled.
        """
        if x.shape[:2] != self.mask.shape:
            raise ValueError(
                f"tensor layout {x.shape[:2]} != mask {self.mask.shape}"
            )
        out = np.zeros_like(x)
        for b, length in enumerate(self.lengths):
            out[b, :length] = x[b, self.source_index[b, :length]]
        return out

    def restore(self, y: np.ndarray) -> np.ndarray:
        """Scatter an aligned ``[B, S, ...]`` tensor back to the original
        positions (holes zero-filled)."""
        if y.shape[:2] != self.mask.shape:
            raise ValueError(
                f"tensor layout {y.shape[:2]} != mask {self.mask.shape}"
            )
        out = np.zeros_like(y)
        for b, length in enumerate(self.lengths):
            out[b, self.source_index[b, :length]] = y[b, :length]
        return out


def realign(mask: np.ndarray) -> Realignment:
    """Compact an arbitrary ``[B, S]`` 0/1 mask to left-aligned form.

    Token order within each sentence is preserved (stable compaction).
    Rows with zero valid tokens are rejected, matching
    :func:`repro.core.padding.packing_from_mask`.
    """
    if mask.ndim != 2:
        raise ValueError(f"expected a [B, S] mask, got {mask.shape}")
    if not np.isin(mask, (0, 1)).all():
        raise ValueError("mask must contain only 0s and 1s")
    batch, seq = mask.shape
    lengths = mask.sum(axis=1).astype(np.int64)
    if (lengths == 0).any():
        raise ValueError("every sentence needs at least one valid token")

    aligned = np.zeros_like(mask)
    source = np.zeros((batch, seq), dtype=np.int64)
    for b in range(batch):
        positions = np.flatnonzero(mask[b])
        aligned[b, : lengths[b]] = 1
        source[b, : lengths[b]] = positions
    return Realignment(mask=aligned, lengths=lengths, source_index=source)
