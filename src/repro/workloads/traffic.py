"""Open-loop multi-tenant traffic generation on the simulated clock.

Every trace the stack has replayed so far was a fixed request list with
one length distribution and memoryless arrivals — fine for engine
benchmarks, useless for overload behaviour, which is driven by *how*
traffic arrives: bursts, diurnal swings and flash crowds.  This module
generates open-loop traffic (arrivals never wait for service — the
defining property of real overload) from composable pieces:

* arrival processes — :class:`PoissonArrivals` (memoryless),
  :class:`MmppArrivals` (two-state Markov-modulated Poisson: a bursty
  process that alternates between a quiet and a hot rate with seeded
  dwell times) and :class:`DiurnalArrivals` (sinusoidal rate over a
  configurable period, sampled by thinning);
* :class:`FlashCrowd` — a seeded, reproducible spike window that
  superposes extra Poisson arrivals at ``(multiplier - 1)`` times the
  tenant's steady rate, so a 3x flash crowd means 3x the steady arrival
  rate inside the window;
* :class:`LengthProfile` — a Zipf-mixed sequence-length sampler: a
  weighted mixture of the :mod:`repro.workloads.generator` component
  distributions, because production tenants are rarely one clean
  distribution (a chat tenant is mostly-short-zipf with a uniform tail
  of long prompts);
* :class:`TenantTraffic` — one tenant's (arrival process x length
  profile x deadline x flash crowds) bundle;
* :func:`generate_traffic` — merge every tenant's seeded substream into
  one :class:`~repro.workloads.serving.ServingTrace`, requests tagged
  with their tenant and globally sorted by arrival.

Determinism contract: every sampler draws from a generator seeded by
``(seed, tenant_index, stream_tag)`` only, so the same ``(tenants,
horizon, seed)`` triple always produces the identical trace — the
property the ``repro loadtest`` CI gate and the rate-limit determinism
tests rest on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.workloads.generator import (
    LengthDistribution,
    fixed_lengths,
    normal_lengths,
    uniform_lengths,
    zipf_lengths,
)
from repro.workloads.serving import Request, ServingTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MmppArrivals",
    "DiurnalArrivals",
    "FlashCrowd",
    "LengthComponent",
    "LengthProfile",
    "TenantTraffic",
    "generate_traffic",
]

# stream tags: independent seeded substreams per tenant
_ARRIVALS = 0xA1
_LENGTHS = 0x1E
_CROWD = 0xFC


class ArrivalProcess(abc.ABC):
    """A seeded point process of arrival times over a horizon."""

    @property
    @abc.abstractmethod
    def mean_rate_per_us(self) -> float:
        """Long-run mean arrival rate (events per simulated us)."""

    @abc.abstractmethod
    def sample(
        self, horizon_us: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sorted arrival times in ``(0, horizon_us]``."""

    @staticmethod
    def _validate_horizon(horizon_us: float) -> None:
        if horizon_us <= 0:
            raise ValueError(f"horizon_us must be positive, got {horizon_us}")


def _poisson_times(
    rate_per_us: float, horizon_us: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrival times over ``(0, horizon_us]``."""
    if rate_per_us <= 0.0:
        return np.empty(0, dtype=np.float64)
    # draw in blocks of the expected count (+ slack) until past horizon
    times: list[np.ndarray] = []
    t = 0.0
    block = max(16, int(rate_per_us * horizon_us * 1.2) + 8)
    while t <= horizon_us:
        gaps = rng.exponential(1.0 / rate_per_us, size=block)
        chunk = t + np.cumsum(gaps)
        times.append(chunk)
        t = float(chunk[-1])
    all_times = np.concatenate(times)
    return all_times[all_times <= horizon_us]


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant mean rate."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(
                f"rate_per_s must be positive, got {self.rate_per_s}"
            )

    @property
    def mean_rate_per_us(self) -> float:
        return self.rate_per_s / 1e6

    def sample(
        self, horizon_us: float, rng: np.random.Generator
    ) -> np.ndarray:
        self._validate_horizon(horizon_us)
        return _poisson_times(self.mean_rate_per_us, horizon_us, rng)


@dataclass(frozen=True)
class MmppArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *quiet* state at ``rate_per_s`` and
    a *hot* state at ``burst_factor * rate_per_s``; dwell times in each
    state are exponential with the given means.  This is the standard
    minimal model for bursty request traffic: the marginal rate matches
    a Poisson process of the same mean, but arrivals clump, which is
    exactly what stresses a token-budget batcher's head-of-line logic.
    """

    rate_per_s: float
    burst_factor: float = 4.0
    mean_quiet_us: float = 50_000.0
    mean_burst_us: float = 10_000.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(
                f"rate_per_s must be positive, got {self.rate_per_s}"
            )
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if min(self.mean_quiet_us, self.mean_burst_us) <= 0:
            raise ValueError("state dwell means must be positive")

    @property
    def mean_rate_per_us(self) -> float:
        # time-weighted average of the two state rates
        quiet_w = self.mean_quiet_us
        burst_w = self.mean_burst_us
        base = self.rate_per_s / 1e6
        return base * (
            (quiet_w + self.burst_factor * burst_w) / (quiet_w + burst_w)
        )

    def sample(
        self, horizon_us: float, rng: np.random.Generator
    ) -> np.ndarray:
        self._validate_horizon(horizon_us)
        base = self.rate_per_s / 1e6
        times: list[np.ndarray] = []
        t = 0.0
        hot = False  # always start quiet: deterministic phase
        while t < horizon_us:
            dwell = float(
                rng.exponential(
                    self.mean_burst_us if hot else self.mean_quiet_us
                )
            )
            end = min(t + dwell, horizon_us)
            rate = base * (self.burst_factor if hot else 1.0)
            seg = _poisson_times(rate, end - t, rng) if end > t else None
            if seg is not None and seg.size:
                times.append(t + seg)
            t = end
            hot = not hot
        if not times:
            return np.empty(0, dtype=np.float64)
        return np.sort(np.concatenate(times))


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal-rate arrivals: rate(t) = mean * (1 + depth*sin(...)).

    ``period_us`` is the full cycle ("a day" on the simulated clock —
    hours of wall time compress into milliseconds of simulated time);
    ``depth`` in [0, 1) scales the swing.  Sampling is by thinning
    against the peak rate, which is exact for an inhomogeneous Poisson
    process.
    """

    rate_per_s: float
    period_us: float = 1_000_000.0
    depth: float = 0.5
    #: phase offset as a fraction of the period (0 starts at the mean,
    #: rising — i.e. "morning")
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0 or self.period_us <= 0:
            raise ValueError("rate_per_s and period_us must be positive")
        if not 0.0 <= self.depth < 1.0:
            raise ValueError(f"depth must be in [0, 1), got {self.depth}")

    @property
    def mean_rate_per_us(self) -> float:
        return self.rate_per_s / 1e6

    def rate_at(self, t_us: float) -> float:
        """Instantaneous rate (per us) at simulated time ``t_us``."""
        angle = 2.0 * np.pi * (t_us / self.period_us + self.phase)
        return self.mean_rate_per_us * (1.0 + self.depth * np.sin(angle))

    def sample(
        self, horizon_us: float, rng: np.random.Generator
    ) -> np.ndarray:
        self._validate_horizon(horizon_us)
        peak = self.mean_rate_per_us * (1.0 + self.depth)
        candidates = _poisson_times(peak, horizon_us, rng)
        if not candidates.size:
            return candidates
        keep = rng.random(candidates.size) * peak
        rates = np.asarray([self.rate_at(t) for t in candidates])
        return candidates[keep < rates]


@dataclass(frozen=True)
class FlashCrowd:
    """A seeded arrival spike: ``multiplier``x the steady rate in a window.

    Implemented by superposing an extra Poisson stream at
    ``(multiplier - 1) * steady_rate`` inside ``[start_us, start_us +
    duration_us)`` — the superposition of Poisson processes is Poisson,
    so inside the window the tenant genuinely arrives at ``multiplier``
    times its steady rate, and the spike is reproducible from the seed
    alone.
    """

    start_us: float
    duration_us: float
    multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.start_us < 0 or self.duration_us <= 0:
            raise ValueError(
                "start_us must be >= 0 and duration_us positive"
            )
        if self.multiplier <= 1.0:
            raise ValueError(
                f"multiplier must be > 1, got {self.multiplier}"
            )

    def extra_arrivals(
        self,
        steady_rate_per_us: float,
        horizon_us: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        end = min(self.start_us + self.duration_us, horizon_us)
        if end <= self.start_us:
            return np.empty(0, dtype=np.float64)
        extra_rate = (self.multiplier - 1.0) * steady_rate_per_us
        return self.start_us + _poisson_times(
            extra_rate, end - self.start_us, rng
        )


@dataclass(frozen=True)
class LengthComponent:
    """One weighted component of a mixed length profile."""

    weight: float
    distribution: LengthDistribution
    #: mean/max ratio for uniform and normal components (ignored by
    #: zipf, whose shape is fixed, and fixed, which pins the max)
    alpha: float = 0.6

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    def sample(
        self, n: int, max_seq_len: int, rng: np.random.Generator
    ) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.distribution is LengthDistribution.UNIFORM:
            return uniform_lengths(n, max_seq_len, self.alpha, rng)
        if self.distribution is LengthDistribution.NORMAL:
            return normal_lengths(n, max_seq_len, self.alpha, rng)
        if self.distribution is LengthDistribution.ZIPF:
            return zipf_lengths(n, max_seq_len, rng)
        if self.distribution is LengthDistribution.FIXED:
            return fixed_lengths(n, max_seq_len)
        raise ValueError(f"unknown distribution {self.distribution!r}")


@dataclass(frozen=True)
class LengthProfile:
    """A weighted mixture of length distributions for one tenant.

    Each request independently picks a component with probability
    proportional to its weight, then samples its length from it.  The
    canonical production shape is :meth:`zipf_mixed`: a heavy-tailed
    zipf body (most requests short) with a uniform long-prompt tail.
    """

    max_seq_len: int
    components: tuple[LengthComponent, ...]

    def __post_init__(self) -> None:
        if self.max_seq_len < 1:
            raise ValueError("max_seq_len must be >= 1")
        if not self.components:
            raise ValueError("a length profile needs >= 1 component")

    @classmethod
    def zipf_mixed(
        cls, max_seq_len: int, *, long_tail_weight: float = 0.2,
        tail_alpha: float = 0.8,
    ) -> "LengthProfile":
        """Zipf body + a ``long_tail_weight`` uniform long-prompt tail."""
        if not 0.0 <= long_tail_weight < 1.0:
            raise ValueError(
                f"long_tail_weight must be in [0, 1), got {long_tail_weight}"
            )
        components = [
            LengthComponent(1.0 - long_tail_weight, LengthDistribution.ZIPF)
        ]
        if long_tail_weight > 0:
            components.append(
                LengthComponent(
                    long_tail_weight, LengthDistribution.UNIFORM, tail_alpha
                )
            )
        return cls(max_seq_len=max_seq_len, components=tuple(components))

    @classmethod
    def single(
        cls,
        max_seq_len: int,
        distribution: LengthDistribution = LengthDistribution.UNIFORM,
        alpha: float = 0.6,
    ) -> "LengthProfile":
        return cls(
            max_seq_len=max_seq_len,
            components=(LengthComponent(1.0, distribution, alpha),),
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` lengths from the mixture, in draw order."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        weights = np.asarray([c.weight for c in self.components])
        probs = weights / weights.sum()
        choice = rng.choice(len(self.components), size=n, p=probs)
        lens = np.empty(n, dtype=np.int64)
        for idx, component in enumerate(self.components):
            sel = choice == idx
            count = int(sel.sum())
            if count:
                lens[sel] = component.sample(count, self.max_seq_len, rng)
        return lens


@dataclass(frozen=True)
class TenantTraffic:
    """One tenant's traffic shape: arrivals, lengths, deadline, spikes."""

    name: str
    arrivals: ArrivalProcess
    lengths: LengthProfile
    #: relative latency budget attached to every request (``None`` =
    #: deadline-free, the usual throughput-batch posture)
    deadline_us: float | None = None
    flash_crowds: tuple[FlashCrowd, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError(
                f"deadline_us must be positive, got {self.deadline_us}"
            )

    def sample_arrivals(
        self, horizon_us: float, rng: np.random.Generator,
        crowd_rng: np.random.Generator,
    ) -> np.ndarray:
        """Steady arrivals plus every flash crowd's extra stream, sorted."""
        streams = [self.arrivals.sample(horizon_us, rng)]
        steady = self.arrivals.mean_rate_per_us
        for crowd in self.flash_crowds:
            streams.append(
                crowd.extra_arrivals(steady, horizon_us, crowd_rng)
            )
        merged = np.concatenate(streams)
        return np.sort(merged)


def generate_traffic(
    tenants: list[TenantTraffic] | tuple[TenantTraffic, ...],
    horizon_us: float,
    *,
    seed: int = 0,
) -> ServingTrace:
    """Generate one merged multi-tenant trace over ``horizon_us``.

    Each tenant draws from three independent substreams seeded by
    ``(seed, tenant_index, tag)`` — arrivals, lengths, flash crowds — so
    adding a flash crowd to one tenant never perturbs another tenant's
    requests (or even that tenant's steady arrivals).  Request ids are
    assigned in global arrival order; ties break by tenant order, then
    per-tenant sequence.  The trace's ``max_seq_len`` is the maximum of
    the tenants' profile maxima.
    """
    if not tenants:
        raise ValueError("generate_traffic needs at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in {names}")
    ArrivalProcess._validate_horizon(horizon_us)
    max_seq_len = max(t.lengths.max_seq_len for t in tenants)
    # (arrival_us, tenant_idx, per_tenant_seq) triples for a stable sort
    entries: list[tuple[float, int, int, int, TenantTraffic]] = []
    for idx, tenant in enumerate(tenants):
        arr_rng = np.random.default_rng([seed, idx, _ARRIVALS])
        crowd_rng = np.random.default_rng([seed, idx, _CROWD])
        len_rng = np.random.default_rng([seed, idx, _LENGTHS])
        arrivals = tenant.sample_arrivals(horizon_us, arr_rng, crowd_rng)
        lens = tenant.lengths.sample(arrivals.size, len_rng)
        for k in range(arrivals.size):
            entries.append(
                (float(arrivals[k]), idx, k, int(lens[k]), tenant)
            )
    if not entries:
        raise ValueError(
            "no arrivals in the horizon; raise rates or the horizon"
        )
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    requests = tuple(
        Request(
            request_id=rid,
            arrival_us=arrival,
            seq_len=length,
            deadline_us=tenant.deadline_us,
            tenant=tenant.name,
        )
        for rid, (arrival, _, _, length, tenant) in enumerate(entries)
    )
    return ServingTrace(requests=requests, max_seq_len=max_seq_len)
