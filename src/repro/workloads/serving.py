"""A minimal online-serving trace emulator.

ByteTransformer's motivation is *online inference*: requests with
different sentence lengths arrive continuously and must be answered with
low latency.  A :class:`ServingTrace` is a seeded stream of requests with
Poisson arrivals and configurable length distribution; the serving example
replays it against each framework model and reports latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.generator import LengthDistribution, normal_lengths, uniform_lengths, zipf_lengths


@dataclass(frozen=True)
class Request:
    """One inference request."""

    request_id: int
    arrival_us: float
    seq_len: int
    #: relative latency budget: the request must *finish* within this many
    #: microseconds of arriving, or the serving runtime sheds it.
    #: ``None`` means the request waits forever (the pre-SLO behaviour).
    deadline_us: float | None = None
    #: owning tenant for multi-tenant serving; ``""`` is the anonymous
    #: single-tenant default every pre-gateway trace uses.
    tenant: str = ""

    @property
    def absolute_deadline_us(self) -> float | None:
        """The wall-clock (simulated) instant the deadline expires."""
        if self.deadline_us is None:
            return None
        return self.arrival_us + self.deadline_us


@dataclass(frozen=True)
class GenerationRequest(Request):
    """A request that decodes tokens after its prompt is prefilled.

    ``seq_len`` is the prompt length; ``decode_tokens`` is how many
    tokens the client asked for.  The decode runtime may truncate the
    stream earlier when the context window fills (see
    :func:`repro.decoder.generation.max_decode_steps`).  Being a frozen
    subclass keeps every ``Request`` consumer working unchanged —
    ``dataclasses.replace`` (gateway re-anchoring) preserves the
    subclass and the extra field.
    """

    decode_tokens: int = 1

    def __post_init__(self) -> None:
        if self.decode_tokens < 1:
            raise ValueError(
                f"request {self.request_id} asks for {self.decode_tokens} "
                "decode tokens; generation needs at least 1"
            )


@dataclass(frozen=True)
class ServingTrace:
    """A stream of requests plus the padded shape they are served with."""

    requests: tuple[Request, ...]
    max_seq_len: int

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a trace needs at least one request")
        arrivals = [r.arrival_us for r in self.requests]
        if any(b < a for a, b in zip(arrivals, arrivals[1:])):
            raise ValueError("requests must be sorted by arrival time")
        for request in self.requests:
            if request.seq_len < 1:
                raise ValueError(
                    f"request {request.request_id} has seq_len "
                    f"{request.seq_len}; lengths must be >= 1"
                )
            if request.seq_len > self.max_seq_len:
                raise ValueError(
                    f"request {request.request_id} has seq_len "
                    f"{request.seq_len} > trace max_seq_len {self.max_seq_len}"
                )
            if request.deadline_us is not None and request.deadline_us <= 0:
                raise ValueError(
                    f"request {request.request_id} has non-positive "
                    f"deadline_us {request.deadline_us}"
                )

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    def batches(self, batch_size: int) -> list[list[Request]]:
        """Greedy arrival-order batching into groups of ``batch_size``."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        groups = []
        for start in range(0, len(self.requests), batch_size):
            groups.append(list(self.requests[start : start + batch_size]))
        return groups


def make_trace(
    num_requests: int,
    max_seq_len: int,
    *,
    alpha: float = 0.6,
    mean_interarrival_us: float = 500.0,
    distribution: LengthDistribution = LengthDistribution.UNIFORM,
    seed: int = 0,
    deadline_us: float | None = None,
) -> ServingTrace:
    """Generate a seeded Poisson-arrival request trace.

    ``deadline_us`` attaches the same relative latency budget to every
    request (``None`` keeps requests deadline-free).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    if distribution is LengthDistribution.UNIFORM:
        lens = uniform_lengths(num_requests, max_seq_len, alpha, rng)
    elif distribution is LengthDistribution.NORMAL:
        lens = normal_lengths(num_requests, max_seq_len, alpha, rng)
    elif distribution is LengthDistribution.ZIPF:
        lens = zipf_lengths(num_requests, max_seq_len, rng)
    else:
        raise ValueError(f"unsupported trace distribution {distribution!r}")

    gaps = rng.exponential(mean_interarrival_us, size=num_requests)
    arrivals = np.cumsum(gaps)
    requests = tuple(
        Request(
            request_id=i,
            arrival_us=float(arrivals[i]),
            seq_len=int(lens[i]),
            deadline_us=deadline_us,
        )
        for i in range(num_requests)
    )
    return ServingTrace(requests=requests, max_seq_len=max_seq_len)


def make_generation_trace(
    num_requests: int,
    max_seq_len: int,
    *,
    decode_tokens: int = 16,
    alpha: float = 0.6,
    mean_interarrival_us: float = 500.0,
    distribution: LengthDistribution = LengthDistribution.UNIFORM,
    seed: int = 0,
    deadline_us: float | None = None,
    tenant: str = "",
) -> ServingTrace:
    """Generation analogue of :func:`make_trace`.

    Prompt lengths follow the same seeded distributions; each request
    additionally asks for ``1 + Poisson(decode_tokens - 1)`` output
    tokens so decode demand is ragged the way prompt lengths are.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if decode_tokens < 1:
        raise ValueError(f"decode_tokens must be >= 1, got {decode_tokens}")
    rng = np.random.default_rng(seed)
    if distribution is LengthDistribution.UNIFORM:
        lens = uniform_lengths(num_requests, max_seq_len, alpha, rng)
    elif distribution is LengthDistribution.NORMAL:
        lens = normal_lengths(num_requests, max_seq_len, alpha, rng)
    elif distribution is LengthDistribution.ZIPF:
        lens = zipf_lengths(num_requests, max_seq_len, rng)
    else:
        raise ValueError(f"unsupported trace distribution {distribution!r}")
    steps = 1 + rng.poisson(decode_tokens - 1, size=num_requests)
    gaps = rng.exponential(mean_interarrival_us, size=num_requests)
    arrivals = np.cumsum(gaps)
    requests = tuple(
        GenerationRequest(
            request_id=i,
            arrival_us=float(arrivals[i]),
            seq_len=int(lens[i]),
            deadline_us=deadline_us,
            tenant=tenant,
            decode_tokens=int(steps[i]),
        )
        for i in range(num_requests)
    )
    return ServingTrace(requests=requests, max_seq_len=max_seq_len)
