"""Variable-length workload generators."""

from repro.workloads.generator import (
    LengthDistribution,
    VariableLengthBatch,
    fixed_lengths,
    make_batch,
    normal_lengths,
    paper_lengths,
    uniform_lengths,
    zipf_lengths,
)
from repro.workloads.serving import Request, ServingTrace, make_trace
from repro.workloads.traffic import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowd,
    LengthComponent,
    LengthProfile,
    MmppArrivals,
    PoissonArrivals,
    TenantTraffic,
    generate_traffic,
)

__all__ = [
    "LengthDistribution",
    "VariableLengthBatch",
    "fixed_lengths",
    "make_batch",
    "normal_lengths",
    "paper_lengths",
    "uniform_lengths",
    "zipf_lengths",
    "Request",
    "ServingTrace",
    "make_trace",
    "ArrivalProcess",
    "DiurnalArrivals",
    "FlashCrowd",
    "LengthComponent",
    "LengthProfile",
    "MmppArrivals",
    "PoissonArrivals",
    "TenantTraffic",
    "generate_traffic",
]
