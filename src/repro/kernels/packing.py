"""Pack/unpack kernels for the zero-padding algorithm (§III-D, Figure 4).

``pack`` gathers the valid rows of a padded ``[B*S, H]`` tensor into a
condensed ``[T, H]`` tensor (``T`` = total valid tokens) using the gather
indices produced by the mask prefix sum; ``unpack`` scatters a packed
tensor back to padded layout, zero-filling the padding.  Standalone
kernels are provided here; the *fused* pack/unpack variants (folded into
add-bias and head-transpose footprints, as the paper does to hide their
cost) live in :mod:`repro.kernels.transpose`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_FP32, tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context

_ROWS_PER_BLOCK = 4


def _check_gather(gather_idx: np.ndarray, padded_rows: int) -> None:
    if gather_idx.ndim != 1:
        raise ValueError(f"gather_idx must be 1-D, got {gather_idx.shape}")
    if gather_idx.size == 0:
        raise ValueError("gather_idx must contain at least one token")
    if gather_idx.min() < 0 or gather_idx.max() >= padded_rows:
        raise ValueError(
            f"gather indices out of range [0, {padded_rows}) "
            f"(min {gather_idx.min()}, max {gather_idx.max()})"
        )


def pack_launch(
    tokens: int, hidden: int, category: str = "packing"
) -> KernelLaunch:
    """Cost descriptor of the standalone pack (gather) kernel."""
    return KernelLaunch(
        name="pack_tokens",
        category=category,
        grid=max(1, math.ceil(tokens / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=0.0,
        dram_bytes=2.0 * tensor_bytes(tokens, hidden)
        + tokens * BYTES_PER_FP32,
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=24,
    )


def unpack_launch(
    tokens: int, padded_rows: int, hidden: int, category: str = "packing"
) -> KernelLaunch:
    """Cost descriptor of the standalone unpack (scatter) kernel."""
    return KernelLaunch(
        name="unpack_tokens",
        category=category,
        grid=max(1, math.ceil(padded_rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=0.0,
        dram_bytes=tensor_bytes(padded_rows, hidden)
        + tokens * BYTES_PER_FP32,
        hot_bytes=tensor_bytes(tokens, hidden),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=24,
    )


def pack_tokens(
    x_padded: np.ndarray,
    gather_idx: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "packing",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Gather valid rows: ``[B*S, H]`` + indices ``[T]`` → ``[T, H]``.

    ``out`` receives the gather without allocating (``np.take`` with
    ``out=`` — the same element selection as fancy indexing).
    """
    if x_padded.ndim != 2:
        raise ValueError(f"expected [rows, H], got {x_padded.shape}")
    _check_gather(gather_idx, x_padded.shape[0])
    tokens = gather_idx.shape[0]
    hidden = x_padded.shape[1]
    resolve_context(ctx).launch(pack_launch(tokens, hidden, category))
    if out is None:
        return x_padded[gather_idx]
    np.take(x_padded, gather_idx, axis=0, out=out)
    return out


def unpack_tokens(
    x_packed: np.ndarray,
    gather_idx: np.ndarray,
    padded_rows: int,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "packing",
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Scatter packed rows back to padded layout, zero-filling padding.

    Writes the whole padded tensor (real kernels memset + scatter), so its
    cost scales with ``B*S`` — which is exactly why the paper fuses unpack
    into neighbouring kernels rather than paying for it standalone.
    ``out`` receives the scatter without allocating (memset + scatter).
    """
    if x_packed.ndim != 2:
        raise ValueError(f"expected [T, H], got {x_packed.shape}")
    _check_gather(gather_idx, padded_rows)
    if gather_idx.shape[0] != x_packed.shape[0]:
        raise ValueError(
            f"{gather_idx.shape[0]} indices for {x_packed.shape[0]} rows"
        )
    tokens, hidden = x_packed.shape
    resolve_context(ctx).launch(
        unpack_launch(tokens, padded_rows, hidden, category)
    )
    if out is None:
        out = np.zeros((padded_rows, hidden), dtype=x_packed.dtype)
    else:
        out.fill(0)
    out[gather_idx] = x_packed
    return out
