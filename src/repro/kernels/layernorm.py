"""Layer normalisation kernels, fused and unfused (§III-C.1, Figure 9).

After MHA-projection and after the FFN, BERT computes
``LayerNorm(x + residual + bias)``.  The unfused pipeline launches two
kernels (add-bias-and-residual, then layernorm) and round-trips the
intermediate through DRAM — five tensor passes in total.  The fused kernel
does everything in one pass pair (read ``x`` and ``residual``, write the
normalised output — three passes), which is where the paper's ~61-69%
kernel-level win comes from.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context

#: default normalisation epsilon (matches BERT)
LAYERNORM_EPS = 1e-12
#: rows handled per thread block (one warp per row, 8 warps per block)
_ROWS_PER_BLOCK = 8


def layernorm_reference(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = LAYERNORM_EPS,
) -> np.ndarray:
    """Row-wise layer normalisation oracle."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def _ln_launch(
    rows: int, cols: int, name: str, category: str, tensor_passes: float
) -> KernelLaunch:
    grid = max(1, math.ceil(rows / _ROWS_PER_BLOCK))
    # ~10 flops/element: two reduction passes plus the normalisation math.
    # One read pass is hot (the tensor the previous kernel just wrote).
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=256,
        flops=10.0 * rows * cols,
        dram_bytes=(tensor_passes - 1.0) * tensor_bytes(rows, cols)
        + 2 * tensor_bytes(cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=40,
    )


def layernorm_launch(rows: int, cols: int, category: str = "layernorm") -> KernelLaunch:
    """Cost descriptor of the standalone layernorm kernel."""
    return _ln_launch(rows, cols, "layernorm", category, 2.0)


def fused_layernorm_launch(
    rows: int, cols: int, category: str = "layernorm"
) -> KernelLaunch:
    """Cost descriptor of the fused add-bias + residual + layernorm kernel."""
    return _ln_launch(
        rows, cols, "fused_add_bias_residual_layernorm", category, 3.0
    )


def add_bias_residual_launch(
    rows: int, cols: int, category: str = "layernorm"
) -> KernelLaunch:
    """Cost descriptor of the standalone add-bias-and-residual kernel."""
    return KernelLaunch(
        name="add_bias_residual",
        category=category,
        grid=max(1, math.ceil(rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=2.0 * rows * cols,
        dram_bytes=2.0 * tensor_bytes(rows, cols) + tensor_bytes(cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=32,
    )


def layernorm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
) -> np.ndarray:
    """Standalone layernorm kernel: read tensor, normalise, write."""
    if x.ndim != 2:
        raise ValueError(f"layernorm expects a 2-D tensor, got {x.shape}")
    rows, cols = x.shape
    if gamma.shape != (cols,) or beta.shape != (cols,):
        raise ValueError("gamma/beta must match the hidden dimension")
    resolve_context(ctx).launch(layernorm_launch(rows, cols, category))
    return layernorm_reference(x, gamma, beta, eps)


def add_bias_residual(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
) -> np.ndarray:
    """Standalone kernel computing ``x + bias + residual``.

    Reads two tensors and the bias vector, writes one tensor (three tensor
    passes).  Part of the *unfused* layernorm pipeline.
    """
    if x.shape != residual.shape:
        raise ValueError(
            f"residual shape {residual.shape} != input shape {x.shape}"
        )
    if bias.shape != (x.shape[-1],):
        raise ValueError(f"bias shape {bias.shape} != ({x.shape[-1]},)")
    rows, cols = x.shape
    resolve_context(ctx).launch(
        add_bias_residual_launch(rows, cols, category)
    )
    return x + bias + residual


def add_bias_residual_layernorm_unfused(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
) -> np.ndarray:
    """Two-kernel baseline: add-bias-and-residual, then layernorm."""
    tmp = add_bias_residual(x, bias, residual, ctx=ctx, category=category)
    return layernorm(tmp, gamma, beta, eps=eps, ctx=ctx, category=category)


def add_bias_residual_layernorm(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
) -> np.ndarray:
    """Fused kernel: ``LayerNorm(x + bias + residual)`` in one launch.

    Reads ``x`` and ``residual`` once, keeps the sum in registers through
    both reduction rounds (FP16 SIMD2 in the paper's kernel), writes the
    output once — three tensor passes instead of five.
    """
    if x.shape != residual.shape:
        raise ValueError(
            f"residual shape {residual.shape} != input shape {x.shape}"
        )
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D tensor, got {x.shape}")
    rows, cols = x.shape
    if bias.shape != (cols,):
        raise ValueError(f"bias shape {bias.shape} != ({cols},)")
    if gamma.shape != (cols,) or beta.shape != (cols,):
        raise ValueError("gamma/beta must match the hidden dimension")
    resolve_context(ctx).launch(fused_layernorm_launch(rows, cols, category))
    return layernorm_reference(x + bias + residual, gamma, beta, eps)
