"""Layer normalisation kernels, fused and unfused (§III-C.1, Figure 9).

After MHA-projection and after the FFN, BERT computes
``LayerNorm(x + residual + bias)``.  The unfused pipeline launches two
kernels (add-bias-and-residual, then layernorm) and round-trips the
intermediate through DRAM — five tensor passes in total.  The fused kernel
does everything in one pass pair (read ``x`` and ``residual``, write the
normalised output — three passes), which is where the paper's ~61-69%
kernel-level win comes from.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context

#: default normalisation epsilon (matches BERT)
LAYERNORM_EPS = 1e-12
#: rows handled per thread block (one warp per row, 8 warps per block)
_ROWS_PER_BLOCK = 8


def layernorm_reference(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = LAYERNORM_EPS,
) -> np.ndarray:
    """Row-wise layer normalisation oracle."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def layernorm_into(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    out: np.ndarray,
    tmp: np.ndarray,
) -> np.ndarray:
    """:func:`layernorm_reference` into caller storage, bit for bit.

    Replicates NumPy's ``mean``/``var`` internals step by step (pairwise
    ``np.sum`` is the same reduction ``ndarray.mean`` uses; ``var`` squares
    the centred values with a self-multiply) so the result is bitwise
    identical to the reference while only the tiny ``[rows, 1]`` reduction
    vectors are allocated.  ``tmp`` may alias ``x`` (``x`` is consumed
    once ``out`` holds the centred values); ``out`` must alias neither.
    """
    n = x.shape[-1]
    mean = np.sum(x, axis=-1, keepdims=True)
    mean /= n
    np.subtract(x, mean, out=out)
    np.multiply(out, out, out=tmp)
    var = np.sum(tmp, axis=-1, keepdims=True)
    var /= n
    np.add(var, eps, out=var)
    np.sqrt(var, out=var)
    np.divide(out, var, out=out)
    np.multiply(out, gamma, out=out)
    np.add(out, beta, out=out)
    return out


def _ln_launch(
    rows: int, cols: int, name: str, category: str, tensor_passes: float
) -> KernelLaunch:
    grid = max(1, math.ceil(rows / _ROWS_PER_BLOCK))
    # ~10 flops/element: two reduction passes plus the normalisation math.
    # One read pass is hot (the tensor the previous kernel just wrote).
    return KernelLaunch(
        name=name,
        category=category,
        grid=grid,
        block_threads=256,
        flops=10.0 * rows * cols,
        dram_bytes=(tensor_passes - 1.0) * tensor_bytes(rows, cols)
        + 2 * tensor_bytes(cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=40,
    )


def layernorm_launch(rows: int, cols: int, category: str = "layernorm") -> KernelLaunch:
    """Cost descriptor of the standalone layernorm kernel."""
    return _ln_launch(rows, cols, "layernorm", category, 2.0)


def fused_layernorm_launch(
    rows: int, cols: int, category: str = "layernorm"
) -> KernelLaunch:
    """Cost descriptor of the fused add-bias + residual + layernorm kernel."""
    return _ln_launch(
        rows, cols, "fused_add_bias_residual_layernorm", category, 3.0
    )


def add_bias_residual_launch(
    rows: int, cols: int, category: str = "layernorm"
) -> KernelLaunch:
    """Cost descriptor of the standalone add-bias-and-residual kernel."""
    return KernelLaunch(
        name="add_bias_residual",
        category=category,
        grid=max(1, math.ceil(rows / _ROWS_PER_BLOCK)),
        block_threads=256,
        flops=2.0 * rows * cols,
        dram_bytes=2.0 * tensor_bytes(rows, cols) + tensor_bytes(cols),
        hot_bytes=tensor_bytes(rows, cols),
        compute_unit=ComputeUnit.FP16,
        compute_efficiency=0.5,
        regs_per_thread=32,
    )


def layernorm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
) -> np.ndarray:
    """Standalone layernorm kernel: read tensor, normalise, write."""
    if x.ndim != 2:
        raise ValueError(f"layernorm expects a 2-D tensor, got {x.shape}")
    rows, cols = x.shape
    if gamma.shape != (cols,) or beta.shape != (cols,):
        raise ValueError("gamma/beta must match the hidden dimension")
    resolve_context(ctx).launch(layernorm_launch(rows, cols, category))
    return layernorm_reference(x, gamma, beta, eps)


def add_bias_residual(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
) -> np.ndarray:
    """Standalone kernel computing ``x + bias + residual``.

    Reads two tensors and the bias vector, writes one tensor (three tensor
    passes).  Part of the *unfused* layernorm pipeline.
    """
    if x.shape != residual.shape:
        raise ValueError(
            f"residual shape {residual.shape} != input shape {x.shape}"
        )
    if bias.shape != (x.shape[-1],):
        raise ValueError(f"bias shape {bias.shape} != ({x.shape[-1]},)")
    rows, cols = x.shape
    resolve_context(ctx).launch(
        add_bias_residual_launch(rows, cols, category)
    )
    return x + bias + residual


def add_bias_residual_layernorm_unfused(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """Two-kernel baseline: add-bias-and-residual, then layernorm.

    With ``out``/``tmp`` (both or neither) the intermediate lives in
    ``tmp`` and the result in ``out`` — same two launches, zero tensor
    allocations, bit-identical values.
    """
    if out is None:
        inter = add_bias_residual(x, bias, residual, ctx=ctx, category=category)
        return layernorm(inter, gamma, beta, eps=eps, ctx=ctx, category=category)
    if tmp is None:
        raise ValueError("out= requires a tmp= buffer of the same shape")
    rows, cols = x.shape
    context = resolve_context(ctx)
    context.launch(add_bias_residual_launch(rows, cols, category))
    np.add(x, bias, out=tmp)
    np.add(tmp, residual, out=tmp)
    context.launch(layernorm_launch(rows, cols, category))
    return layernorm_into(tmp, gamma, beta, eps=eps, out=out, tmp=tmp)


def add_bias_residual_layernorm(
    x: np.ndarray,
    bias: np.ndarray,
    residual: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    *,
    eps: float = LAYERNORM_EPS,
    ctx: ExecutionContext | None = None,
    category: str = "layernorm",
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """Fused kernel: ``LayerNorm(x + bias + residual)`` in one launch.

    Reads ``x`` and ``residual`` once, keeps the sum in registers through
    both reduction rounds (FP16 SIMD2 in the paper's kernel), writes the
    output once — three tensor passes instead of five.  With ``out``/
    ``tmp`` (both or neither) the sum is built in ``tmp`` and normalised
    into ``out``: one launch, zero tensor allocations, identical bits.
    """
    if x.shape != residual.shape:
        raise ValueError(
            f"residual shape {residual.shape} != input shape {x.shape}"
        )
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D tensor, got {x.shape}")
    rows, cols = x.shape
    if bias.shape != (cols,):
        raise ValueError(f"bias shape {bias.shape} != ({cols},)")
    if gamma.shape != (cols,) or beta.shape != (cols,):
        raise ValueError("gamma/beta must match the hidden dimension")
    resolve_context(ctx).launch(fused_layernorm_launch(rows, cols, category))
    if out is None:
        return layernorm_reference(x + bias + residual, gamma, beta, eps)
    if tmp is None:
        raise ValueError("out= requires a tmp= buffer of the same shape")
    np.add(x, bias, out=tmp)
    np.add(tmp, residual, out=tmp)
    return layernorm_into(tmp, gamma, beta, eps=eps, out=out, tmp=tmp)
