"""Two-phase softmax reduction for the grouped-GEMM fused MHA (Figure 8).

Cross-CTA communication is impractical inside one kernel, so the paper
splits the softmax reduction:

1. **partial reduction** — fused into the first grouped GEMM's epilogue:
   each CTA reduces its ``128``-column tile of the score matrix to one
   per-row partial max and one per-row partial sum of
   ``exp(x - partial_max)``, stored to global memory
   (``seq_len x seq_len/128`` per attention unit);
2. **full reduction** — a separate lightweight kernel combines the
   partials into per-row max/sum vectors.  Combining sums requires
   rescaling each partial sum by ``exp(partial_max - full_max)``.  Its
   workload is ~1/128 of the partials', which is why the paper measures it
   at ~2% of fused-MHA time;
3. the element-wise transform ``exp(x - max) / sum`` is then fused into
   the second grouped GEMM's *mainloop* (Algorithm III.2) — zero extra
   kernels and zero extra traffic.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context

#: epilogue tile width over which a CTA can reduce locally (N_C in Fig. 8)
EPILOGUE_TILE_N = 128


def partial_softmax_stats(
    scores: np.ndarray, tile_n: int = EPILOGUE_TILE_N
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row partial max and partial exp-sum over ``tile_n``-wide blocks.

    ``scores`` is one attention unit's ``[m, n]`` score matrix; returns
    ``(partial_max, partial_sum)`` of shape ``[m, ceil(n / tile_n)]``.
    This is what the first grouped GEMM's epilogue writes to global memory.
    """
    if scores.ndim != 2:
        raise ValueError(f"expected [m, n] scores, got {scores.shape}")
    m, n = scores.shape
    blocks = math.ceil(n / tile_n)
    partial_max = np.full((m, blocks), -np.inf)
    partial_sum = np.zeros((m, blocks))
    for blk in range(blocks):
        chunk = scores[:, blk * tile_n : (blk + 1) * tile_n]
        pmax = chunk.max(axis=1)
        partial_max[:, blk] = pmax
        partial_sum[:, blk] = np.exp(chunk - pmax[:, None]).sum(axis=1)
    return partial_max, partial_sum


def full_reduce_stats(
    partial_max: np.ndarray, partial_sum: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Combine per-block partials into per-row max and sum.

    ``sum_row = sum_blk partial_sum[blk] * exp(partial_max[blk] - max_row)``
    — the rescaling keeps the result identical to a direct single-pass
    reduction (verified by tests).
    """
    if partial_max.shape != partial_sum.shape:
        raise ValueError(
            f"partial shapes differ: {partial_max.shape} vs "
            f"{partial_sum.shape}"
        )
    row_max = partial_max.max(axis=1)
    scale = np.exp(partial_max - row_max[:, None])
    row_sum = (partial_sum * scale).sum(axis=1)
    return row_max, row_sum


def apply_softmax_transform(
    scores: np.ndarray, row_max: np.ndarray, row_sum: np.ndarray
) -> np.ndarray:
    """Element-wise ``exp(x - max) / sum`` given fully-reduced statistics.

    Numerics of the transform Algorithm III.2 fuses into the second GEMM's
    mainloop; when fused it contributes no kernel launch of its own.
    """
    if scores.shape[0] != row_max.shape[0] or row_max.shape != row_sum.shape:
        raise ValueError(
            f"stat shapes {row_max.shape}/{row_sum.shape} do not match "
            f"scores {scores.shape}"
        )
    return np.exp(scores - row_max[:, None]) / row_sum[:, None]


def full_reduction_launch(
    seq_lens: Sequence[int],
    heads: int,
    category: str = "attention",
    tile_n: int = EPILOGUE_TILE_N,
) -> KernelLaunch:
    """Cost descriptor of the full-reduction kernel for a length vector."""
    total_rows = sum(heads * int(l) for l in seq_lens)
    total_elems = sum(
        heads * int(l) * math.ceil(int(l) / tile_n) for l in seq_lens
    )
    return KernelLaunch(
        name="softmax_full_reduction",
        category=category,
        grid=max(1, math.ceil(total_rows / 32)),
        block_threads=256,
        flops=4.0 * total_elems,
        dram_bytes=(2.0 * total_elems + 2.0 * total_rows) * BYTES_PER_FP32,
        compute_unit=ComputeUnit.FP32,
        compute_efficiency=0.4,
        regs_per_thread=32,
    )


def full_reduction_kernel(
    partials: Sequence[tuple[np.ndarray, np.ndarray]],
    *,
    ctx: ExecutionContext | None = None,
    category: str = "attention",
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The separate lightweight full-reduction launch over all units.

    ``partials`` holds ``(partial_max, partial_sum)`` for every attention
    unit of the grouped MHA; one kernel reduces them all.
    """
    if not partials:
        raise ValueError("full reduction needs at least one attention unit")
    results = []
    seq_lens = []
    for partial_max, partial_sum in partials:
        results.append(full_reduce_stats(partial_max, partial_sum))
        seq_lens.append(partial_max.shape[0])
    resolve_context(ctx).launch(
        full_reduction_launch(seq_lens, heads=1, category=category)
    )
    return results


def partial_stats_store_bytes(seq_lens: Sequence[int], heads: int) -> float:
    """Bytes the GEMM1 epilogue stores for partial max+sum (all units)."""
    total = 0
    for length in seq_lens:
        blocks = math.ceil(length / EPILOGUE_TILE_N)
        total += heads * length * blocks * 2  # max and sum
    return float(total) * BYTES_PER_FP32


def partial_stats_flops(seq_lens: Sequence[int], heads: int) -> float:
    """Extra epilogue FLOPs for the intra-thread/intra-warp reductions."""
    total = 0
    for length in seq_lens:
        total += heads * length * length * 3  # max cmp, exp, add per elem
    return float(total)
