"""Grouped GEMM: variable-shape sub-problems in one kernel (§III-E.2).

Grouped GEMM lifts batched GEMM's identical-shape restriction: a built-in
scheduler hands out fixed-size CTA tiles of *all* sub-problems to a
persistent grid of CTAs in a round-robin manner (Figure 5).  We reproduce
the scheduler at tile granularity: the tile-to-CTA assignment, the
per-CTA work accumulation that yields the kernel's makespan, and the
scheduler-visit overhead that the paper's *warp prefetch* optimisation
divides by 32 (Figure 7, ~10% end-to-end on BERT shapes).

The numerical result of every scheduling strategy is identical (each tile
is computed exactly once); only the modelled time differs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from typing import Sequence

import numpy as np

from repro.core.engine import is_vectorized
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.occupancy import blocks_per_sm
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.gpusim.timing import expected_utilisation
from repro.kernels.gemm import BASE_TC_EFFICIENCY, K_RAMP, TileConfig, select_tile

#: modelled cost of one scheduler visit by the baseline per-thread
#: problem visitor (one thread serially computes the next tile's metadata)
VISIT_COST_US = 1.8
#: fan-out of the warp-prefetch visitor: 32 lanes compute 32 upcoming
#: tile assignments in one visit
WARP_PREFETCH_FANOUT = 32


class SchedulerKind(enum.Enum):
    """Grouped-GEMM problem-visitor strategy."""

    #: CUTLASS's original visitor: one scheduler visit per tile per CTA
    PER_THREAD = "per_thread"
    #: the paper's optimisation: a warp computes 32 assignments at once
    WARP_PREFETCH = "warp_prefetch"


@dataclass(frozen=True)
class GemmProblem:
    """Shape of one grouped-GEMM sub-problem."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    def tiles(self, tile: TileConfig) -> int:
        return math.ceil(self.m / tile.tile_m) * math.ceil(self.n / tile.tile_n)


@dataclass(frozen=True)
class GroupedSchedule:
    """Outcome of simulating the tile scheduler for one grouped GEMM."""

    n_ctas: int
    total_tiles: int
    tiles_per_cta_max: int
    visits_per_cta: int
    compute_makespan_us: float
    visit_overhead_us: float
    useful_flops: float
    computed_flops: float

    @property
    def makespan_us(self) -> float:
        return self.compute_makespan_us + self.visit_overhead_us

    @property
    def load_balance(self) -> float:
        """Average tiles per CTA over the maximum (1.0 = perfectly even)."""
        return min(
            1.0,
            (self.total_tiles / self.n_ctas) / max(1, self.tiles_per_cta_max),
        )

    @property
    def quantisation_waste(self) -> float:
        """Fraction of computed FLOPs that are padded-tile waste."""
        if self.computed_flops == 0:
            return 0.0
        return 1.0 - self.useful_flops / self.computed_flops


def _tile_assignment(
    problems: Sequence[GemmProblem], tile: TileConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten every sub-problem into a tile list (problem id, tile k-depth).

    Returns ``(tile_problem, tile_k)`` arrays, ordered exactly as the
    round-robin visitor walks them: problem 0's tiles first, row-major,
    then problem 1's, etc.
    """
    counts = np.array([p.tiles(tile) for p in problems], dtype=np.int64)
    ks = np.array([p.k for p in problems], dtype=np.float64)
    tile_problem = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
    tile_k = np.repeat(ks, counts)
    return tile_problem, tile_k


def select_group_tile(
    problems: Sequence[GemmProblem], device: DeviceSpec
) -> TileConfig:
    """Pick one CTA tile for the whole group (grouped GEMM compiles a
    single tile shape), stepping down until it fits the device's
    shared-memory-per-block limit."""
    largest = max(problems, key=lambda p: p.m * p.n)
    tile = select_tile(largest.m, largest.n)
    while tile.smem_bytes > device.max_shared_mem_per_block:
        if tile.tile_m <= 32:
            raise ValueError(
                f"no grouped-GEMM tile fits {device.name}'s "
                f"{device.max_shared_mem_per_block} B shared-memory limit"
            )
        tile = select_tile(tile.tile_m // 2, tile.tile_n // 2)
    return tile


def simulate_schedule(
    problems: Sequence[GemmProblem],
    device: DeviceSpec,
    *,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    tile: TileConfig | None = None,
    base_efficiency: float = BASE_TC_EFFICIENCY,
) -> GroupedSchedule:
    """Simulate the round-robin tile scheduler and return its makespan.

    CTA ``j`` of ``N`` processes tiles ``j, j+N, j+2N, ...`` (Figure 5).
    Each tile's compute time is its padded-tile FLOPs at one CTA's share of
    the device's sustained tensor-core throughput; the makespan is the
    maximum per-CTA busy time plus that CTA's scheduler-visit overhead.
    """
    if not problems:
        raise ValueError("grouped GEMM needs at least one problem")
    if tile is None:
        tile = select_group_tile(problems, device)

    probe = KernelLaunch(
        name="grouped_gemm_probe",
        category="probe",
        grid=1,
        block_threads=tile.block_threads,
        shared_mem_per_block=tile.smem_bytes,
        regs_per_thread=tile.regs_per_thread,
        flops=1.0,
    )
    occ = blocks_per_sm(probe, device)
    concurrent = occ.blocks_per_sm * device.num_sms

    tile_problem, tile_k = _tile_assignment(problems, tile)
    total_tiles = tile_problem.shape[0]
    n_ctas = min(concurrent, total_tiles)

    # sustained throughput of one CTA: the device peak is shared by the
    # resident CTAs, but a grid too small to saturate the SMs does not
    # speed its CTAs up beyond one SM's share
    k_typical = float(np.mean(tile_k))
    eff = base_efficiency * (k_typical / (k_typical + K_RAMP))
    saturation = min(
        concurrent,
        device.num_sms * max(1, math.ceil(256 / tile.block_threads)),
    )
    sharing_ctas = max(n_ctas, saturation)
    cta_flops_per_us = (
        device.tensor_fp16_tflops * 1e12 * eff / sharing_ctas / 1e6
    )

    # per-tile compute time: padded tile area times its k depth
    tile_flops = 2.0 * tile.tile_m * tile.tile_n * tile_k
    tile_time_us = tile_flops / cta_flops_per_us

    # round-robin accumulation: CTA j owns tiles j, j+n, ...  The strided
    # per-CTA sum is kept as-is: a reshape-and-reduce would change the
    # floating-point association and shift the makespan by ulps, and the
    # modelled times must stay bit-stable across engines and releases.
    cta_time = np.zeros(n_ctas)
    for j in range(n_ctas):
        cta_time[j] = tile_time_us[j::n_ctas].sum()
    tiles_per_cta_max = int(math.ceil(total_tiles / n_ctas))

    if scheduler is SchedulerKind.PER_THREAD:
        visits = tiles_per_cta_max
    elif scheduler is SchedulerKind.WARP_PREFETCH:
        visits = math.ceil(tiles_per_cta_max / WARP_PREFETCH_FANOUT)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown scheduler {scheduler!r}")

    useful = float(sum(p.flops for p in problems))
    computed = float(tile_flops.sum())
    return GroupedSchedule(
        n_ctas=n_ctas,
        total_tiles=total_tiles,
        tiles_per_cta_max=tiles_per_cta_max,
        visits_per_cta=visits,
        compute_makespan_us=float(cta_time.max()),
        visit_overhead_us=visits * VISIT_COST_US,
        useful_flops=useful,
        computed_flops=computed,
    )


def grouped_gemm_launch(
    problems: Sequence[GemmProblem],
    device: DeviceSpec,
    *,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    name: str = "grouped_gemm",
    category: str = "attention",
    extra_bytes: float = 0.0,
    extra_flops: float = 0.0,
    base_efficiency: float = BASE_TC_EFFICIENCY,
) -> KernelLaunch:
    """Build the launch descriptor whose modelled time equals the simulated
    schedule's makespan.

    The launch carries the *useful* FLOPs (so Table II metering stays
    honest) and encodes load imbalance, tile quantisation and the k-ramp in
    its ``compute_efficiency``; scheduler visits appear as
    ``extra_overhead_us``.  ``extra_bytes``/``extra_flops`` account for a
    fused epilogue (e.g. the softmax partial reduction of Figure 8).
    """
    schedule = simulate_schedule(
        problems, device, scheduler=scheduler, base_efficiency=base_efficiency
    )
    useful = schedule.useful_flops + extra_flops

    # efficiency that makes the roofline's compute time reproduce the
    # simulated makespan, pre-compensating the utilisation division the
    # timing model will apply to this launch
    peak_flops_per_us = device.tensor_fp16_tflops * 1e12 / 1e6
    eff = useful / (peak_flops_per_us * schedule.compute_makespan_us)
    eff = min(1.0, max(1e-6, eff))

    bytes_moved = extra_bytes
    for p in problems:
        bytes_moved += (
            tensor_bytes(p.m, p.k) + tensor_bytes(p.k, p.n) + tensor_bytes(p.m, p.n)
        )

    tile = select_group_tile(problems, device)
    launch = KernelLaunch(
        name=name,
        category=category,
        grid=schedule.n_ctas,
        block_threads=tile.block_threads,
        flops=useful,
        dram_bytes=bytes_moved,
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=eff,
        shared_mem_per_block=tile.smem_bytes,
        regs_per_thread=tile.regs_per_thread,
        extra_overhead_us=schedule.visit_overhead_us,
        tags=(f"scheduler={scheduler.value}",),
    )
    util = expected_utilisation(launch, device)
    if util < 1.0:
        # the persistent grid's makespan already accounts for idle SMs;
        # undo the utilisation division the timing model will apply, so
        # the launch's modelled compute time equals the makespan
        launch = _dc_replace(
            launch, compute_efficiency=min(1.0, eff / util)
        )
    return launch


def grouped_gemm(
    a_list: Sequence[np.ndarray],
    b_list: Sequence[np.ndarray],
    *,
    transpose_b: bool = False,
    scheduler: SchedulerKind = SchedulerKind.WARP_PREFETCH,
    ctx: ExecutionContext | None = None,
    name: str = "grouped_gemm",
    category: str = "attention",
) -> list[np.ndarray]:
    """Compute ``a_i @ b_i`` for every sub-problem in one simulated kernel.

    Shapes may differ arbitrarily between sub-problems; that is the whole
    point of grouped GEMM.
    """
    if len(a_list) != len(b_list):
        raise ValueError(
            f"{len(a_list)} A operands vs {len(b_list)} B operands"
        )
    if not a_list:
        raise ValueError("grouped GEMM needs at least one problem")

    problems = []
    for a, b in zip(a_list, b_list):
        b_eff = b.T if transpose_b else b
        if a.ndim != 2 or b_eff.ndim != 2 or a.shape[1] != b_eff.shape[0]:
            raise ValueError(f"bad sub-problem shapes {a.shape} @ {b_eff.shape}")
        problems.append(
            GemmProblem(m=a.shape[0], n=b_eff.shape[1], k=a.shape[1])
        )

    if is_vectorized():
        # shape-bucket the sub-problems: identical (m, n, k) groups run as
        # one stacked batched matmul, mirroring how the simulated kernel
        # batches them on the GPU.  Stacking copies operand values
        # unchanged, so each slice's BLAS result is bit-identical to the
        # per-pair product.
        outputs: list[np.ndarray | None] = [None] * len(a_list)
        groups: dict[tuple, list[int]] = {}
        for i, (a, b) in enumerate(zip(a_list, b_list)):
            key = (a.shape, b.shape, a.dtype.str, b.dtype.str)
            groups.setdefault(key, []).append(i)
        for idxs in groups.values():
            if len(idxs) == 1:
                i = idxs[0]
                b_eff = b_list[i].T if transpose_b else b_list[i]
                outputs[i] = a_list[i] @ b_eff
                continue
            stacked_a = np.stack([a_list[i] for i in idxs])
            stacked_b = np.stack([b_list[i] for i in idxs])
            if transpose_b:
                stacked_b = stacked_b.swapaxes(-1, -2)
            stacked_out = np.matmul(stacked_a, stacked_b)
            for j, i in enumerate(idxs):
                outputs[i] = stacked_out[j]
    else:
        outputs = [
            a @ (b.T if transpose_b else b) for a, b in zip(a_list, b_list)
        ]

    context = resolve_context(ctx)
    context.launch(
        grouped_gemm_launch(
            problems,
            context.device,
            scheduler=scheduler,
            name=name,
            category=category,
        )
    )
    return outputs
