"""Warp-level prefix sum over the input mask (§III-D).

The paper computes the packing offsets with one CUDA kernel: each *warp*
scans the mask of one sentence (32 tokens at a time with a running carry,
using shuffle-based Hillis–Steele steps), and ``batch_size`` warps run per
thread block.  We emulate the warp scan at lane granularity so the
algorithm — not just its result — is reproduced, and verify it against
``np.cumsum`` in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.engine import is_vectorized
from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import BYTES_PER_FP32
from repro.gpusim.stream import ExecutionContext, resolve_context

WARP_SIZE = 32


def warp_inclusive_scan(lane_values: np.ndarray) -> np.ndarray:
    """Hillis–Steele inclusive scan over one warp's 32 lanes.

    Emulates ``__shfl_up_sync``: at step ``d`` every lane ``i >= d`` adds
    the value held by lane ``i - d``.  ``lane_values`` must have exactly
    :data:`WARP_SIZE` entries.
    """
    if lane_values.shape != (WARP_SIZE,):
        raise ValueError(
            f"warp scan needs exactly {WARP_SIZE} lanes, got "
            f"{lane_values.shape}"
        )
    values = lane_values.astype(np.int64).copy()
    step = 1
    while step < WARP_SIZE:
        shifted = np.zeros_like(values)
        shifted[step:] = values[:-step]
        values += shifted
        step *= 2
    return values


def warp_scan_sequence(tokens: np.ndarray) -> np.ndarray:
    """Inclusive scan of an arbitrary-length vector by a single warp.

    The warp processes the vector in :data:`WARP_SIZE`-wide chunks,
    carrying the running total (held by the last lane) into the next
    chunk — exactly the loop structure of the paper's kernel.
    """
    if tokens.ndim != 1:
        raise ValueError(f"expected a 1-D token vector, got {tokens.shape}")
    n = tokens.shape[0]
    out = np.zeros(n, dtype=np.int64)
    carry = 0
    for start in range(0, n, WARP_SIZE):
        chunk = np.zeros(WARP_SIZE, dtype=np.int64)
        width = min(WARP_SIZE, n - start)
        chunk[:width] = tokens[start : start + width]
        scanned = warp_inclusive_scan(chunk) + carry
        out[start : start + width] = scanned[:width]
        carry = scanned[WARP_SIZE - 1]
    return out


def prefix_sum_launch(
    batch: int, seq: int, category: str = "packing"
) -> KernelLaunch:
    """Cost descriptor of the mask prefix-sum kernel (one warp/sentence)."""
    warps_per_block = batch
    threads = min(1024, warps_per_block * WARP_SIZE)
    grid = max(1, math.ceil(warps_per_block * WARP_SIZE / threads))
    return KernelLaunch(
        name="mask_prefix_sum",
        category=category,
        grid=grid,
        block_threads=threads,
        flops=float(batch) * seq * math.ceil(math.log2(WARP_SIZE)),
        dram_bytes=2.0 * batch * seq * BYTES_PER_FP32,
        compute_unit=ComputeUnit.FP32,
        compute_efficiency=0.3,
        regs_per_thread=24,
    )


def mask_prefix_sum(
    mask: np.ndarray,
    *,
    ctx: ExecutionContext | None = None,
    category: str = "packing",
) -> np.ndarray:
    """Per-sentence inclusive prefix sum of a ``[B, S]`` 0/1 mask.

    Returns an int64 ``[B, S]`` array where entry ``[b, s]`` is the number
    of valid tokens in sentence ``b`` up to and including position ``s``.
    One warp per sentence, ``batch_size`` warps per block (one block for
    the whole grid at BERT-scale batch sizes).
    """
    if mask.ndim != 2:
        raise ValueError(f"expected a [B, S] mask, got {mask.shape}")
    if not ((mask == 0) | (mask == 1)).all():
        raise ValueError("mask must contain only 0s and 1s")
    batch, seq = mask.shape

    if is_vectorized():
        # One cumsum over the whole mask: integer adds are associative,
        # so this is exactly the warp scan's result for 0/1 inputs.
        out = np.cumsum(mask, axis=1, dtype=np.int64)
    else:
        out = np.empty((batch, seq), dtype=np.int64)
        for b in range(batch):
            out[b] = warp_scan_sequence(mask[b])

    resolve_context(ctx).launch(prefix_sum_launch(batch, seq, category))
    return out
