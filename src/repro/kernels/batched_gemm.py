"""Batched GEMM with identical sub-problem shapes (cuBLAS-style).

This is the primitive conventional MHA implementations rely on — and the
reason they cannot exploit variable lengths: every sub-problem in the
batch must share one ``(m, n, k)`` shape, so inputs are padded to the
longest sequence and the padded FLOPs are burned for real (§III-D).
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpusim.kernel import ComputeUnit, KernelLaunch
from repro.gpusim.memory import tensor_bytes
from repro.gpusim.stream import ExecutionContext, resolve_context
from repro.kernels.gemm import gemm_efficiency, select_tile


def batched_gemm_launch(
    batch_count: int,
    m: int,
    n: int,
    k: int,
    *,
    name: str = "batched_gemm",
    category: str = "attention",
) -> KernelLaunch:
    """Cost descriptor for ``batch_count`` identical ``m x n x k`` GEMMs."""
    if batch_count <= 0:
        raise ValueError(f"batch_count must be positive, got {batch_count}")
    tile = select_tile(m, n)
    tiles = math.ceil(m / tile.tile_m) * math.ceil(n / tile.tile_n)
    return KernelLaunch(
        name=name,
        category=category,
        grid=batch_count * tiles,
        block_threads=tile.block_threads,
        flops=2.0 * batch_count * m * n * k,
        dram_bytes=batch_count * tensor_bytes(m, n),
        hot_bytes=batch_count * (tensor_bytes(m, k) + tensor_bytes(k, n)),
        compute_unit=ComputeUnit.TENSOR_FP16,
        compute_efficiency=gemm_efficiency(m, n, k, tile),
        shared_mem_per_block=tile.smem_bytes,
        regs_per_thread=tile.regs_per_thread,
    )


def batched_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    transpose_b: bool = False,
    ctx: ExecutionContext | None = None,
    name: str = "batched_gemm",
    category: str = "attention",
) -> np.ndarray:
    """Compute ``a @ b`` (or ``a @ b.T``) over leading batch axes.

    ``a`` and ``b`` are ``[..., m, k]`` and ``[..., k, n]`` (or
    ``[..., n, k]`` with ``transpose_b``); leading axes must match and are
    flattened into the cuBLAS batch count.
    """
    if a.ndim < 3 or b.ndim < 3:
        raise ValueError(
            f"batched gemm expects >=3-D operands, got {a.shape}, {b.shape}"
        )
    if a.shape[:-2] != b.shape[:-2]:
        raise ValueError(
            f"batch axes mismatch: {a.shape[:-2]} vs {b.shape[:-2]}"
        )
    b_eff = np.swapaxes(b, -1, -2) if transpose_b else b
    if a.shape[-1] != b_eff.shape[-2]:
        raise ValueError(f"inner dims mismatch: {a.shape} @ {b_eff.shape}")

    batch_count = int(np.prod(a.shape[:-2]))
    m, k = a.shape[-2], a.shape[-1]
    n = b_eff.shape[-1]

    resolve_context(ctx).launch(
        batched_gemm_launch(batch_count, m, n, k, name=name, category=category)
    )
    return a @ b_eff
